// Command experiment is the repository's end-to-end scenario: it generates
// a synthetic correlated relation, builds a MaxEnt summary plus the
// sampling baselines, runs a mixed counting/group-by workload through
// every strategy behind the shared core.Estimator interface, and prints
// the machine-readable accuracy/latency report as JSON on stdout.
//
// Two alternative scenarios replace the static report: -stream N runs the
// streaming-drift comparison (stale vs per-batch-refreshed summaries
// under drifting appends), and -branch N runs the branch-compare scenario
// (two lineages forked from one summary, diverging independently, scored
// with per-attribute drift diffs — the offline twin of the server's
// /branch and /diff endpoints).
//
// All randomness is seeded, so two runs with the same flags produce the
// same report (modulo latency fields).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/sampling"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/summary"
)

func main() {
	var (
		rows          = flag.Int("rows", 20000, "synthetic relation cardinality")
		queries       = flag.Int("queries", 40, "workload size")
		seed          = flag.Int64("seed", 1, "seed for data, samples, and workload")
		rate          = flag.Float64("rate", 0.01, "sampling rate of the baselines")
		pairBudget    = flag.Int("pairs", 2, "attribute pairs receiving 2D statistics (B_a)")
		perPair       = flag.Int("per-pair", 8, "2D statistics per pair (B_s)")
		heuristic     = flag.String("heuristic", "COMPOSITE", "bucket heuristic: LARGE, ZERO, or COMPOSITE")
		sweeps        = flag.Int("sweeps", 200, "solver sweep budget")
		relax         = flag.Float64("relax", 1, "solver over-relaxation exponent ω in (0,2); 0 selects the default plain update (ω=1)")
		solverWork    = flag.Int("solver-workers", 1, "worker-pool size for the solver's derivative batches")
		partitions    = flag.Int("partitions", 0, "when > 0, also build a K-way partitioned summary (built concurrently)")
		storeDir      = flag.String("store", "", "when set, snapshot the built summaries into this store directory (created if missing)")
		dataset       = flag.String("dataset", "demo", "dataset name snapshots are stored under (with -store)")
		streamBatches = flag.Int("stream", 0, "when > 0, run the streaming-drift scenario with this many append batches instead of the static report")
		streamRows    = flag.Int("stream-rows", 1000, "rows per streaming batch (with -stream)")
		branchBatches = flag.Int("branch", 0, "when > 0, run the branch-compare scenario: fork two lineages and diverge them over this many batches each")
	)
	flag.Parse()

	if err := validate(*rows, *queries, *rate, *partitions, *sweeps); err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(2)
	}
	h, err := stats.ParseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(2)
	}
	// Validate the store path before the pipeline runs: create-if-missing
	// plus a writability probe, so a bad -store fails fast instead of
	// discarding a finished run.
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
			os.Exit(2)
		}
	}
	buildOpts := summary.Options{
		PairBudget:    *pairBudget,
		PerPairBudget: *perPair,
		Heuristic:     h,
		Solver:        solver.Options{MaxSweeps: *sweeps, Relaxation: *relax, Workers: *solverWork},
	}

	// The branch-compare scenario forks two lineages off one fork-point
	// summary — "main" drifts, "branch" stays stationary — refreshing each
	// independently and reporting the pairwise per-attribute drift after
	// every batch (the offline twin of the server's /branch + /diff flow).
	if *branchBatches > 0 {
		if *streamBatches > 0 {
			fmt.Fprintf(os.Stderr, "experiment: -branch and -stream are mutually exclusive\n")
			os.Exit(2)
		}
		if *streamRows <= 0 {
			fmt.Fprintf(os.Stderr, "experiment: -stream-rows must be positive, got %d\n", *streamRows)
			os.Exit(2)
		}
		rep, err := experiment.RunBranchCompare(experiment.BranchOptions{
			BaseRows:  *rows,
			Batches:   *branchBatches,
			BatchRows: *streamRows,
			Queries:   *queries,
			Seed:      *seed,
			Summary:   buildOpts,
			Refresh:   summary.RefreshOptions{Solver: buildOpts.Solver},
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range rep.Steps {
			fmt.Fprintf(os.Stderr, "batch %d: main-vs-branch TV %.4f (attr %s), main-vs-fork %.4f, branch-vs-fork %.4f\n",
				s.Batch, s.MainVsBranchTV, s.MaxDriftAttr, s.MainVsForkTV, s.BranchVsForkTV)
		}
		fmt.Fprintf(os.Stderr, "final accuracy: main err %.4f, branch err %.4f\n", rep.MainMeanError, rep.BranchMeanError)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	// The streaming-drift scenario replaces the static accuracy report: it
	// measures how a never-refreshed summary decays as drifting batches
	// arrive, against one refreshed (delta stats + warm solve) per batch.
	if *streamBatches > 0 {
		if *streamRows <= 0 {
			fmt.Fprintf(os.Stderr, "experiment: -stream-rows must be positive, got %d\n", *streamRows)
			os.Exit(2)
		}
		rep, err := experiment.RunStreaming(experiment.StreamingOptions{
			BaseRows:  *rows,
			Batches:   *streamBatches,
			BatchRows: *streamRows,
			Queries:   *queries,
			Seed:      *seed,
			Summary:   buildOpts,
			Refresh:   summary.RefreshOptions{Solver: buildOpts.Solver},
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range rep.Steps {
			fmt.Fprintf(os.Stderr, "batch %d (%d rows): stale err %.4f, refreshed err %.4f (%d sweeps, rebuilt=%t)\n",
				s.Batch, s.TotalRows, s.StaleMeanError, s.RefreshedMeanError, s.RefreshSweeps, s.Rebuilt)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	rel := experiment.SyntheticRelation(*rows, rng)
	sch := rel.Schema()
	fmt.Fprintf(os.Stderr, "relation: %s, %d rows\n", sch, rel.NumRows())
	sum, err := summary.Build(rel, buildOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s\n", sum.SolverReport())
	if st != nil {
		info, err := st.Save(*dataset+"/maxent", sum)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot %s v%d (%d bytes)\n", info.Dataset, info.Version, info.Bytes)
	}

	uni, err := sampling.Uniform(rel, *rate, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		log.Fatal(err)
	}
	strataAttrs := []int{0, 1}
	if pcs := sum.ChosenPairs(); len(pcs) > 0 {
		strataAttrs = []int{pcs[0].A1, pcs[0].A2}
	}
	strat, err := sampling.Stratified(rel, strataAttrs, *rate, 1, rand.New(rand.NewSource(*seed+2)))
	if err != nil {
		log.Fatal(err)
	}

	estimators := []core.Estimator{sum, uni, strat}
	if *partitions > 0 {
		// Partition-level concurrency already saturates the cores; keep the
		// per-partition solver sequential so the two pools don't contend.
		partOpts := buildOpts
		partOpts.Solver.Workers = 1
		psum, err := summary.BuildPartitioned(rel, summary.PartitionedOptions{
			Partitions: *partitions,
			Base:       partOpts,
		})
		if err != nil {
			log.Fatal(err)
		}
		for k, rep := range psum.SolverReports() {
			fmt.Fprintf(os.Stderr, "partition %d/%d: %s\n", k+1, psum.NumPartitions(), rep)
		}
		if st != nil {
			info, err := st.Save(*dataset+"/partitioned", psum)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "snapshot %s v%d (%d bytes)\n", info.Dataset, info.Version, info.Bytes)
		}
		estimators = append(estimators, psum)
	}

	truth := exact.New(rel)
	workload := experiment.GenerateWorkload(sch, *queries, rand.New(rand.NewSource(*seed+3)))
	report, err := experiment.Run(truth, append(estimators, truth), workload, experiment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// validate rejects nonsensical flag values up front with actionable
// messages, instead of letting them panic or log.Fatal deep inside the
// pipeline.
func validate(rows, queries int, rate float64, partitions, sweeps int) error {
	if rows <= 0 {
		return fmt.Errorf("-rows must be positive, got %d", rows)
	}
	if queries <= 0 {
		return fmt.Errorf("-queries must be positive, got %d", queries)
	}
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("-rate must be in (0,1], got %g", rate)
	}
	if partitions < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", partitions)
	}
	if sweeps <= 0 {
		return fmt.Errorf("-sweeps must be positive, got %d", sweeps)
	}
	return nil
}
