// Command summaryrouter is the fleet coordinator: it fronts a replica
// set of summaryd nodes and serves the same HTTP surface, routing each
// request with health-aware, load-aware node selection. Reads go to the
// least-loaded node whose circuit breaker passes traffic and are retried
// with backoff across peers on replica failure (transport errors and
// 502/503/504); writes — POST /ingest/{dataset}, POST /snapshots/{dataset},
// POST /branch/{parent} — go to the primary (the first -nodes entry)
// exactly once, and a write that published new snapshot versions fans a
// POST /sync/notify out to the replicas so the fleet converges within one
// round trip instead of one poll interval.
//
// Large POST /query/batch bodies (JSON or binary, -fanout-batch items and
// up) are dealt round-robin across the healthy nodes, shipped as binary
// sub-frames, and reassembled in the original item order — positionally
// and bitwise identical to a single node's answer stream.
//
// Warm reads never leave the router: POST /query, /groupby, and
// /query/batch answers are cached (-cache entries, -1 disables), keyed by
// canonical query identity and proven fresh by the generation each node
// stamps on its answers — a routed write fences its dataset so no cached
// answer can outlive it, and concurrent identical misses collapse into a
// single node round trip. Responses served this way carry
// "X-Router-Cache: hit".
//
// -place dataset=K declares a partitioned placement: a count or group-by
// query against "<dataset>/partitioned" is scattered as K per-partition
// queries across the fleet and merged on the router (counts summed in
// partition index order, group-bys merged like summary.Partitioned does
// locally), so the distributed answer is bit-identical to one node's. The
// nodes must serve the partition entries — start the primary summaryd
// with -partitions K -place-partitions.
//
// Endpoints: the proxied summaryd surface (GET/POST /query,
// POST /query/batch, POST /groupby, GET /estimators, GET /snapshots,
// POST /snapshots/{dataset}, POST /ingest/{dataset}, POST /branch/{parent},
// GET /diff/{dataset}) plus the router's own GET /healthz and GET /metrics
// reporting per-node breaker state, in-flight load, and retry counters.
// See docs/FLEET.md for the full topology walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		nodes        = flag.String("nodes", "", "comma-separated replica set, primary first: URL or name=URL per node (e.g. http://a:8080,replica1=http://b:8080)")
		timeout      = flag.Duration("timeout", 10*time.Second, "per-attempt proxy timeout")
		retries      = flag.Int("retries", 0, "extra attempts per retryable request (0 selects one per remaining node)")
		retryBackoff = flag.Duration("retry-backoff", 10*time.Millisecond, "pause before the first retry, doubled per subsequent retry")
		brkThreshold = flag.Int("breaker-threshold", 3, "consecutive failures that open a node's circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker sheds traffic before probing the node again")
		maxBody      = flag.Int64("max-body-bytes", 1<<20, "proxied request body cap in bytes (bodies are buffered for retries)")
		fanoutBatch  = flag.Int("fanout-batch", 64, "batch size at and above which /query/batch fans out across healthy nodes (-1 forwards every batch whole)")
		cacheSize    = flag.Int("cache", 4096, "router read cache size in entries; warm reads are answered without a node round trip, kept fresh by generation fencing (-1 disables)")
		place        = flag.String("place", "", "comma-separated partitioned placements, dataset=K each: scatter <dataset>/partitioned queries as K per-partition queries across the fleet")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	cfgs, err := parseNodes(*nodes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryrouter: %v\n", err)
		os.Exit(2)
	}
	placements, err := parsePlacements(*place)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryrouter: %v\n", err)
		os.Exit(2)
	}

	rt, err := fleet.NewRouter(cfgs, fleet.Options{
		Timeout:          *timeout,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		BreakerThreshold: *brkThreshold,
		BreakerCooldown:  *brkCooldown,
		MaxBodyBytes:     *maxBody,
		FanoutBatch:      *fanoutBatch,
		CacheSize:        *cacheSize,
		Placements:       placements,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryrouter: %v\n", err)
		os.Exit(2)
	}
	for i, nc := range cfgs {
		role := "replica"
		if i == 0 {
			role = "primary"
		}
		log.Printf("node %s (%s): %s", nc.Name, role, nc.URL)
	}
	for dataset, k := range placements {
		log.Printf("placement: %s/partitioned scatters %d partitions", dataset, k)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d nodes on %s", len(cfgs), *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// parseNodes decodes the -nodes list: "URL" or "name=URL" per entry,
// comma-separated, primary first. Unnamed nodes get node<i> names.
func parseNodes(spec string) ([]fleet.NodeConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("-nodes is required: a comma-separated replica set, primary first")
	}
	var cfgs []fleet.NodeConfig
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-nodes entry %d is empty", i)
		}
		nc := fleet.NodeConfig{Name: fmt.Sprintf("node%d", i), URL: entry}
		// name=URL form: split on the first '=' unless the value is a bare
		// URL (no '=' before "://").
		if eq := strings.Index(entry, "="); eq >= 0 && (strings.Index(entry, "://") < 0 || eq < strings.Index(entry, "://")) {
			name := strings.TrimSpace(entry[:eq])
			url := strings.TrimSpace(entry[eq+1:])
			if name == "" || url == "" {
				return nil, fmt.Errorf("-nodes entry %d: want name=URL, got %q", i, entry)
			}
			nc = fleet.NodeConfig{Name: name, URL: url}
		}
		if !strings.Contains(nc.URL, "://") {
			return nil, fmt.Errorf("-nodes entry %d: %q is not a URL (want e.g. http://host:8080)", i, nc.URL)
		}
		cfgs = append(cfgs, nc)
	}
	return cfgs, nil
}

// parsePlacements decodes -place: "dataset=K" entries, comma-separated.
func parsePlacements(spec string) (map[string]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for i, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, val, ok := strings.Cut(entry, "=")
		if !ok || strings.TrimSpace(name) == "" {
			return nil, fmt.Errorf("-place entry %d: want dataset=K, got %q", i, entry)
		}
		k, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("-place entry %d: partition count %q must be a positive integer", i, val)
		}
		if _, dup := out[strings.TrimSpace(name)]; dup {
			return nil, fmt.Errorf("-place entry %d: duplicate dataset %q", i, name)
		}
		out[strings.TrimSpace(name)] = k
	}
	return out, nil
}
