// Command summarize builds a MaxEnt summary offline and persists it as a
// versioned snapshot, decoupling the expensive stats→polynomial→solver
// pipeline from serving: run summarize once (in a batch job, on a beefy
// machine), then cold-start any number of summaryd replicas from the
// snapshot store in time proportional to the summary size — the relation
// is never needed again.
//
//	go run ./cmd/summarize -store ./snapshots -dataset demo -rows 20000
//	go run ./cmd/summaryd  -store ./snapshots -dataset demo   # restores, no rebuild
//
// The input is either the repository's standard synthetic generator
// (-rows/-seed) or a CSV file (-csv) loaded through the relation
// package's schema inference (numeric columns are equi-width binned via
// -bins, everything else is categorical). With -partitions > 0 a K-way
// partitioned summary is snapshotted alongside the single one. Snapshot
// metadata is printed as JSON on stdout; progress goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/relation"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/summary"
)

func main() {
	var (
		storeDir   = flag.String("store", "", "snapshot store directory (required; created if missing)")
		dataset    = flag.String("dataset", "demo", "dataset name snapshots are stored under")
		csvPath    = flag.String("csv", "", "CSV file to summarize (default: the synthetic generator)")
		bins       = flag.Int("bins", 16, "equi-width buckets for numeric CSV columns")
		rows       = flag.Int("rows", 20000, "synthetic relation cardinality (ignored with -csv)")
		seed       = flag.Int64("seed", 1, "synthetic data seed (ignored with -csv)")
		pairBudget = flag.Int("pairs", 2, "attribute pairs receiving 2D statistics (B_a)")
		perPair    = flag.Int("per-pair", 8, "2D statistics per pair (B_s)")
		heuristic  = flag.String("heuristic", "COMPOSITE", "bucket heuristic: LARGE, ZERO, or COMPOSITE")
		sweeps     = flag.Int("sweeps", 200, "solver sweep budget")
		relax      = flag.Float64("relax", 1, "solver over-relaxation exponent ω in (0,2); 0 selects the default plain update (ω=1)")
		solverWork = flag.Int("solver-workers", 1, "worker-pool size for the solver's derivative batches")
		partitions = flag.Int("partitions", 0, "when > 0, also snapshot a K-way partitioned summary")
		keep       = flag.Int("keep", 0, "after saving, prune each dataset to its newest N versions (0 keeps all)")
	)
	flag.Parse()

	if err := validate(*storeDir, *rows, *bins, *partitions, *sweeps, *keep); err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(2)
	}
	h, err := stats.ParseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(2)
	}
	// Fail fast on an unusable store before any solver work happens.
	st, err := store.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(2)
	}

	rel, err := loadRelation(*csvPath, *bins, *rows, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "relation: %s, %d rows\n", rel.Schema(), rel.NumRows())

	opts := summary.Options{
		PairBudget:    *pairBudget,
		PerPairBudget: *perPair,
		Heuristic:     h,
		Solver:        solver.Options{MaxSweeps: *sweeps, Relaxation: *relax, Workers: *solverWork},
	}

	var infos []store.SnapshotInfo
	buildStart := time.Now()
	sum, err := summary.Build(rel, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "built %s in %v (%s)\n",
		sum.Name(), time.Since(buildStart).Round(time.Millisecond), sum.SolverReport())
	info, err := st.Save(*dataset+"/maxent", sum)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(1)
	}
	infos = append(infos, info)

	if *partitions > 0 {
		// Partition-level concurrency already saturates the cores; keep
		// the per-partition solver sequential.
		base := opts
		base.Solver.Workers = 1
		partStart := time.Now()
		psum, err := summary.BuildPartitioned(rel, summary.PartitionedOptions{
			Partitions: *partitions,
			Base:       base,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "built %s in %v\n", psum.Name(), time.Since(partStart).Round(time.Millisecond))
		pinfo, err := st.Save(*dataset+"/partitioned", psum)
		if err != nil {
			fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
			os.Exit(1)
		}
		infos = append(infos, pinfo)
	}

	if *keep > 0 {
		for _, in := range infos {
			removed, err := st.Prune(in.Dataset, *keep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
				os.Exit(1)
			}
			if len(removed) > 0 {
				fmt.Fprintf(os.Stderr, "pruned %d old version(s) of %s\n", len(removed), in.Dataset)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(infos); err != nil {
		fmt.Fprintf(os.Stderr, "summarize: %v\n", err)
		os.Exit(1)
	}
}

// loadRelation reads the CSV when given, falling back to the shared
// synthetic generator.
func loadRelation(csvPath string, bins, rows int, seed int64) (*relation.Relation, error) {
	if csvPath == "" {
		return experiment.SyntheticRelation(rows, rand.New(rand.NewSource(seed))), nil
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.LoadCSV(f, relation.CSVOptions{Bins: bins})
}

// validate rejects nonsensical flag values up front, consistent with the
// other commands.
func validate(storeDir string, rows, bins, partitions, sweeps, keep int) error {
	if storeDir == "" {
		return fmt.Errorf("-store is required (the directory snapshots are written to)")
	}
	if rows <= 0 {
		return fmt.Errorf("-rows must be positive, got %d", rows)
	}
	if bins <= 0 {
		return fmt.Errorf("-bins must be positive, got %d", bins)
	}
	if partitions < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", partitions)
	}
	if sweeps <= 0 {
		return fmt.Errorf("-sweeps must be positive, got %d", sweeps)
	}
	if keep < 0 {
		return fmt.Errorf("-keep must be non-negative (0 keeps all), got %d", keep)
	}
	return nil
}
