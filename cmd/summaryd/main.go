// Command summaryd is the long-lived serving shape of the reproduction: it
// builds MaxEnt summaries (plus optional partitioned summaries and
// sampling baselines) over a dataset, registers them in the estimator
// registry, and serves counting and group-by queries over HTTP/JSON with
// an LRU result cache, admission control, and latency/QPS metrics.
//
// Endpoints: POST /query, POST /groupby, GET /estimators, GET /healthz,
// GET /metrics. See the README's "Serving summaries" section for a curl
// walkthrough. The process shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/summary"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataset    = flag.String("dataset", "demo", "dataset name estimators are registered under")
		rows       = flag.Int("rows", 20000, "synthetic relation cardinality")
		seed       = flag.Int64("seed", 1, "seed for data and samples")
		rate       = flag.Float64("rate", 0.01, "sampling rate of the baselines (0 disables them)")
		pairBudget = flag.Int("pairs", 2, "attribute pairs receiving 2D statistics (B_a)")
		perPair    = flag.Int("per-pair", 8, "2D statistics per pair (B_s)")
		heuristic  = flag.String("heuristic", "COMPOSITE", "bucket heuristic: LARGE, ZERO, or COMPOSITE")
		sweeps     = flag.Int("sweeps", 200, "solver sweep budget")
		relax      = flag.Float64("relax", 1, "solver over-relaxation exponent ω in (0,2); 0 selects the default plain update (ω=1)")
		solverWork = flag.Int("solver-workers", 1, "worker-pool size for the solver's derivative batches")
		partitions = flag.Int("partitions", 0, "when > 0, also serve a K-way partitioned summary")
		noExact    = flag.Bool("no-exact", false, "do not serve the exact full-scan engine")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-request handling timeout")
		maxConc    = flag.Int("max-concurrent", 64, "maximum concurrent estimator evaluations")
		cacheSize  = flag.Int("cache", 4096, "result-cache capacity in entries (-1 disables)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	if err := validate(*rows, *rate, *partitions, *sweeps); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}
	h, err := stats.ParseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}

	rel := experiment.SyntheticRelation(*rows, rand.New(rand.NewSource(*seed)))
	log.Printf("dataset %q: %s, %d rows", *dataset, rel.Schema(), rel.NumRows())

	reg := server.NewRegistry()
	buildStart := time.Now()
	names, err := server.BuildDataset(reg, *dataset, rel, server.DatasetOptions{
		Summary: summary.Options{
			PairBudget:    *pairBudget,
			PerPairBudget: *perPair,
			Heuristic:     h,
			Solver:        solver.Options{MaxSweeps: *sweeps, Relaxation: *relax, Workers: *solverWork},
		},
		Partitions: *partitions,
		SampleRate: *rate,
		SampleSeed: *seed,
		SkipExact:  *noExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("built %d estimators in %v: %v", len(names), time.Since(buildStart).Round(time.Millisecond), names)

	srv := server.New(reg, server.Options{
		Timeout:       *timeout,
		MaxConcurrent: *maxConc,
		CacheSize:     *cacheSize,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// validate rejects nonsensical flag combinations up front, before any work
// is attempted.
func validate(rows int, rate float64, partitions, sweeps int) error {
	if rows <= 0 {
		return fmt.Errorf("-rows must be positive, got %d", rows)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("-rate must be in [0,1] (0 disables the baselines), got %g", rate)
	}
	if partitions < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", partitions)
	}
	if sweeps <= 0 {
		return fmt.Errorf("-sweeps must be positive, got %d", sweeps)
	}
	return nil
}
