// Command summaryd is the long-lived serving shape of the reproduction: it
// builds MaxEnt summaries (plus optional partitioned summaries and
// sampling baselines) over a dataset, registers them in the estimator
// registry, and serves counting and group-by queries over HTTP/JSON with
// an LRU result cache, admission control, and latency/QPS metrics.
//
// With -store, summaryd is restartable: at startup it restores every
// snapshot in the store (cold start in O(summary bytes), no data scan, no
// solver), and only rebuilds the -dataset pipeline when the store holds
// no summary for it yet — saving the result as a new snapshot version, so
// the next start restores instead. POST /snapshots/{dataset} saves new
// versions of the live estimators and GET /snapshots lists what is
// stored.
//
// summaryd also serves live ingestion: POST /ingest/{dataset} appends
// rows (JSON-encoded domain values or a raw CSV body) to the dataset's
// relation, and a refresh policy (-refresh-rows threshold and/or the
// -refresh-interval ticker) folds the backlog into new estimator versions
// that are hot-swapped in with zero downtime. The maxent model refreshes
// incrementally on small deltas — delta statistics plus a warm-started
// solve — while the data-bound strategies (exact, samples) and the
// partitioned summary are rebuilt from the grown relation each refresh.
// Every new model version is published to the snapshot store when -store
// is set; /metrics reports per-dataset generation and staleness. On a
// snapshot restart the demo relation is regenerated from -seed, so a
// model that already absorbed ingested rows is served read-only (the
// rows exist only in the model; ingestion re-enables after a rebuild).
//
// The snapshot store doubles as a time-travel and branching surface:
// GET/POST /query?version=N (and /query/batch) answer from any retained
// snapshot version through an LRU of lazily-restored historical
// estimators (budget set by -history-cache-bytes),
// POST /branch/{dataset}?from=N&name=X forks a dataset at a snapshot
// into an independently-ingestable branch whose lineage is recorded in
// the store, and GET /diff/{dataset}?a=N&b=M reports per-attribute
// distribution drift between two versions. See docs/VERSIONING.md.
//
// Endpoints: GET/POST /query, POST /query/batch, POST /groupby,
// POST /ingest/{dataset}, POST /branch/{parent}, GET /diff/{dataset},
// GET /estimators, GET /healthz, GET /metrics, GET /snapshots,
// POST /snapshots/{dataset}. See docs/API.md for the full wire reference
// and the README's "Serving summaries" section for a curl walkthrough.
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/summary"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataset     = flag.String("dataset", "demo", "dataset name estimators are registered under")
		rows        = flag.Int("rows", 20000, "synthetic relation cardinality")
		seed        = flag.Int64("seed", 1, "seed for data and samples")
		rate        = flag.Float64("rate", 0.01, "sampling rate of the baselines (0 disables them)")
		pairBudget  = flag.Int("pairs", 2, "attribute pairs receiving 2D statistics (B_a)")
		perPair     = flag.Int("per-pair", 8, "2D statistics per pair (B_s)")
		heuristic   = flag.String("heuristic", "COMPOSITE", "bucket heuristic: LARGE, ZERO, or COMPOSITE")
		sweeps      = flag.Int("sweeps", 200, "solver sweep budget")
		relax       = flag.Float64("relax", 1, "solver over-relaxation exponent ω in (0,2); 0 selects the default plain update (ω=1)")
		solverWork  = flag.Int("solver-workers", 1, "worker-pool size for the solver's derivative batches")
		partitions  = flag.Int("partitions", 0, "when > 0, also serve a K-way partitioned summary")
		noExact     = flag.Bool("no-exact", false, "do not serve the exact full-scan engine")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request handling timeout")
		maxConc     = flag.Int("max-concurrent", 64, "maximum concurrent estimator evaluations")
		cacheSize   = flag.Int("cache", 4096, "result-cache capacity in entries (-1 disables)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		storeDir    = flag.String("store", "", "snapshot store directory: restore summaries at startup, save on build (created if missing)")
		refreshRows = flag.Int("refresh-rows", 1000, "hot-swap refreshed estimators once this many ingested rows are pending (0 disables threshold refreshes)")
		refreshIvl  = flag.Duration("refresh-interval", 0, "additionally refresh pending ingested rows on this period (0 disables)")
		histBytes   = flag.Int64("history-cache-bytes", 0, "byte budget of the historical-estimator cache behind ?version=N time-travel queries (0 selects 4 MiB; needs -store)")
		nodeName    = flag.String("node-name", "", "fleet identity reported on /healthz and /metrics (required with -peer)")
		peer        = flag.String("peer", "", "replica mode: pull snapshots from this summaryd base URL instead of building (needs -store; disables the build pipeline and ingestion)")
		syncIvl     = flag.Duration("sync-interval", 2*time.Second, "replica snapshot poll period (with -peer; /sync/notify wakes it early)")
		placeParts  = flag.Bool("place-partitions", false, "expose each partition of the partitioned summary as its own estimator (<dataset>/partitioned.p<k>) and snapshot them, so a summaryrouter placement can scatter partitions across a fleet (needs -partitions and -store)")
	)
	flag.Parse()

	if err := validate(*rows, *rate, *partitions, *sweeps); err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}
	if *refreshRows < 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -refresh-rows must be non-negative, got %d\n", *refreshRows)
		os.Exit(2)
	}
	if *refreshIvl < 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -refresh-interval must be non-negative, got %v\n", *refreshIvl)
		os.Exit(2)
	}
	if *histBytes < 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -history-cache-bytes must be non-negative, got %d\n", *histBytes)
		os.Exit(2)
	}
	if *peer != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "summaryd: -peer needs -store (replicas import snapshots into a local store)")
		os.Exit(2)
	}
	if *peer != "" && *nodeName == "" {
		fmt.Fprintln(os.Stderr, "summaryd: -peer needs -node-name (replicas must be identifiable in fleet metrics)")
		os.Exit(2)
	}
	if *syncIvl <= 0 {
		fmt.Fprintf(os.Stderr, "summaryd: -sync-interval must be positive, got %v\n", *syncIvl)
		os.Exit(2)
	}
	if *placeParts && (*partitions <= 0 || *storeDir == "") {
		fmt.Fprintln(os.Stderr, "summaryd: -place-partitions needs -partitions > 0 and -store (partition entries are served from snapshots fleet-wide)")
		os.Exit(2)
	}
	h, err := stats.ParseHeuristic(*heuristic)
	if err != nil {
		fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
		os.Exit(2)
	}
	// Validate the store path up front (create-if-missing, writability
	// probe), before any build work: a misconfigured -store must fail in
	// seconds, not after a minute of solving.
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "summaryd: %v\n", err)
			os.Exit(2)
		}
	}

	reg := server.NewRegistry()
	fromSnapshot := false
	if st != nil {
		restoreStart := time.Now()
		restored, problems, err := server.RestoreStore(reg, st)
		if err != nil {
			log.Fatal(err)
		}
		// One damaged dataset must not keep a restartable daemon down;
		// restore what loads, warn about what does not.
		for _, p := range problems {
			log.Printf("warning: snapshot restore skipped %q: %v", p.Dataset, p.Err)
		}
		if len(restored) > 0 {
			log.Printf("restored %d estimator(s) from %s in %v: %v",
				len(restored), st.Dir(), time.Since(restoreStart).Round(time.Millisecond), restored)
		}
		// Serve -dataset from snapshots only when the store satisfied
		// every snapshot-able estimator these flags ask for; otherwise
		// drop the partial restore and rebuild the full strategy set (a
		// rebuild re-registers, so leftovers would collide).
		_, haveMaxent := reg.Get(*dataset + "/maxent")
		_, havePartitioned := reg.Get(*dataset + "/partitioned")
		fromSnapshot = haveMaxent && (*partitions == 0 || havePartitioned)
		// A replica serves whatever it restored and syncs the rest; only a
		// building node drops a partial restore to rebuild cleanly.
		if !fromSnapshot && *peer == "" {
			for _, name := range restored {
				if strings.HasPrefix(name, *dataset+"/") {
					reg.Unregister(name)
				}
			}
		}
	}

	liveOpts := server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary: summary.Options{
				PairBudget:    *pairBudget,
				PerPairBudget: *perPair,
				Heuristic:     h,
				Solver:        solver.Options{MaxSweeps: *sweeps, Relaxation: *relax, Workers: *solverWork},
			},
			Partitions: *partitions,
			SampleRate: *rate,
			SampleSeed: *seed,
			SkipExact:  *noExact,
			Store:      st,
		},
		RefreshRows: *refreshRows,
	}

	// The live relation backs POST /ingest/{dataset} in both start modes;
	// on a snapshot start it is regenerated from the same seed, so it is
	// exactly the relation the restored summaries cover.
	mut := relation.NewMutable(experiment.SyntheticRelation(*rows, rand.New(rand.NewSource(*seed))))
	var live *server.Live
	var syncer *fleet.Syncer

	// Build the configured dataset only when the store did not already
	// provide its summaries — the restartable-service path: the solver is
	// re-run exclusively on the first start. A replica never builds: it
	// pulls every snapshot version off its peer and hot-swaps the latest
	// in, so the solver runs on exactly one node of a fleet.
	if *peer != "" {
		syncer = fleet.NewSyncer(*peer, st, reg, fleet.SyncerOptions{Interval: *syncIvl})
		log.Printf("replica mode: pulling snapshots from %s every %v (POST /sync/notify wakes the pull early)", *peer, *syncIvl)
	} else if fromSnapshot {
		log.Printf("dataset %q: serving from snapshot, skipping build", *dataset)
		if *rate > 0 || !*noExact {
			log.Printf("dataset %q: note: the exact engine and sampling baselines are data-bound and cannot be restored from snapshots; pass -rate 0 -no-exact to silence", *dataset)
		}
		live, err = server.NewLive(reg, *dataset, mut, st, liveOpts)
		if err != nil {
			// The restored summary covers rows the regenerated synthetic
			// relation does not hold — either the flags changed (-rows,
			// -seed) or a previous run ingested rows, which live only in
			// the snapshotted model, not in the demo's regenerated data.
			// Serve the restored model read-only rather than refusing to
			// start or silently dropping its ingested state.
			log.Printf("warning: live ingestion disabled (restored model and regenerated relation disagree): %v", err)
			live = nil
		}
	} else {
		log.Printf("dataset %q: %s, %d rows", *dataset, mut.Schema(), mut.NumRows())
		buildStart := time.Now()
		var names []string
		live, names, err = server.BuildLiveDataset(reg, *dataset, mut, liveOpts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built %d estimators in %v: %v", len(names), time.Since(buildStart).Round(time.Millisecond), names)
	}

	// Partition placement: serve each partition under its own name and
	// snapshot it, so replicas pull the pieces and a router placement can
	// scatter a partitioned query across the fleet. Restored partition
	// entries (a restart, or a replica syncing them) are already in place.
	if *placeParts && *peer == "" {
		if _, ok := reg.Get(server.PartitionEntryName(*dataset, 0)); !ok {
			names, err := server.ExposePartitions(reg, *dataset)
			if err != nil {
				log.Fatal(err)
			}
			for _, name := range names {
				if ent, ok := reg.Get(name); ok {
					if _, err := st.Save(name, ent.Estimator); err != nil {
						log.Fatal(err)
					}
				}
			}
			log.Printf("dataset %q: exposed %d partition entries for fleet placement: %v", *dataset, len(names), names)
		}
	}

	srvOpts := server.Options{
		Timeout:       *timeout,
		MaxConcurrent: *maxConc,
		CacheSize:     *cacheSize,
		Store:         st,
		HistoryBytes:  *histBytes,
		NodeName:      *nodeName,
	}
	if syncer != nil {
		srvOpts.SyncNotify = syncer.Notify
	}
	srv := server.New(reg, srvOpts)
	if syncer != nil {
		syncer.AttachCache(srv.Cache())
	}
	if live != nil {
		srv.AttachLive(live)
		log.Printf("dataset %q: live ingestion on POST /ingest/%s (refresh threshold %d rows, interval %v)",
			*dataset, *dataset, *refreshRows, *refreshIvl)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The replica pull loop lives for the whole process and dies with it.
	if syncer != nil {
		go syncer.Run(ctx)
	}

	// The refresh-interval ticker folds pending ingested rows in even when
	// traffic never crosses the row threshold (Refresh no-ops when nothing
	// is pending).
	if live != nil && *refreshIvl > 0 {
		go func() {
			tick := time.NewTicker(*refreshIvl)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					out, err := live.Refresh()
					if err != nil {
						log.Printf("interval refresh: %v", err)
						continue
					}
					if out.DeltaRows > 0 {
						log.Printf("interval refresh: folded %d rows (generation %d, %d sweeps, rebuilt=%t)",
							out.DeltaRows, out.Generation, out.Sweeps, out.Rebuilt)
					}
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// validate rejects nonsensical flag combinations up front, before any work
// is attempted.
func validate(rows int, rate float64, partitions, sweeps int) error {
	if rows <= 0 {
		return fmt.Errorf("-rows must be positive, got %d", rows)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("-rate must be in [0,1] (0 disables the baselines), got %g", rate)
	}
	if partitions < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", partitions)
	}
	if sweeps <= 0 {
		return fmt.Errorf("-sweeps must be positive, got %d", sweeps)
	}
	return nil
}
