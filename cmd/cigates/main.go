// Command cigates runs the repository's CI quality gates.
//
// Benchmark regression gate (fails on >30% geomean slowdown by default):
//
//	go test ./internal/polynomial ./internal/solver ./internal/server -bench . -run '^$' > current.txt
//	go run ./cmd/cigates bench -baseline BENCH_baseline.txt -current current.txt
//
// Golden accuracy gate (fails on any deterministic-field drift > 1e-9):
//
//	go run ./cmd/experiment -seed 1 > report.json
//	go run ./cmd/cigates golden -golden testdata/golden_report.json -current report.json
//
// API docs gate (fails when a registered HTTP route — summaryd's or the
// fleet router's — or a summaryd/summaryrouter/loadgen flag is missing
// from docs/API.md — run from the repository root):
//
//	go run ./cmd/cigates docs -doc docs/API.md
//
// Refresh the baselines after an intentional change with:
//
//	go test ./internal/polynomial ./internal/solver ./internal/server -bench . -run '^$' | tee BENCH_baseline.txt
//	go run ./cmd/experiment -seed 1 > testdata/golden_report.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ci"
	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "bench":
		benchGate(os.Args[2:])
	case "golden":
		goldenGate(os.Args[2:])
	case "docs":
		docsGate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cigates bench -baseline FILE -current FILE [-tolerance 0.30]")
	fmt.Fprintln(os.Stderr, "       cigates golden -golden FILE -current FILE [-tolerance 1e-9]")
	fmt.Fprintln(os.Stderr, "       cigates docs [-doc docs/API.md] [-cmds cmd/summaryd/main.go,cmd/summaryrouter/main.go,cmd/loadgen/main.go]")
	os.Exit(2)
}

func benchGate(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_baseline.txt", "committed baseline benchmark output")
	current := fs.String("current", "", "benchmark output of the current tree")
	tolerance := fs.Float64("tolerance", 0.30, "allowed geomean slowdown (0.30 = 30%)")
	_ = fs.Parse(args)
	if *current == "" {
		fmt.Fprintln(os.Stderr, "cigates bench: -current is required")
		os.Exit(2)
	}
	base := mustParseBench(*baseline)
	cur := mustParseBench(*current)
	cmp, err := ci.CompareBench(base, cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates bench: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(cmp.String())
	if err := cmp.Gate(*tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "cigates: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench gate passed: geomean %.2fx within the %.2fx budget\n", cmp.Geomean, 1+*tolerance)
}

func mustParseBench(path string) map[string]float64 {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates bench: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	m, err := ci.ParseBench(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates bench: %s: %v\n", path, err)
		os.Exit(2)
	}
	if len(m) == 0 {
		fmt.Fprintf(os.Stderr, "cigates bench: %s contains no benchmark lines\n", path)
		os.Exit(2)
	}
	return m
}

func goldenGate(args []string) {
	fs := flag.NewFlagSet("golden", flag.ExitOnError)
	golden := fs.String("golden", "testdata/golden_report.json", "committed golden report")
	current := fs.String("current", "", "report of the current tree")
	tolerance := fs.Float64("tolerance", 1e-9, "allowed absolute drift per numeric field")
	_ = fs.Parse(args)
	if *current == "" {
		fmt.Fprintln(os.Stderr, "cigates golden: -current is required")
		os.Exit(2)
	}
	g, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates golden: %v\n", err)
		os.Exit(2)
	}
	c, err := os.ReadFile(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates golden: %v\n", err)
		os.Exit(2)
	}
	diffs, err := ci.CompareReports(g, c, *tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates golden: %v\n", err)
		os.Exit(2)
	}
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "cigates: golden gate failed, %d field(s) drifted beyond %g:\n", len(diffs), *tolerance)
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Println("golden gate passed: accuracy metrics identical within tolerance")
}

// docsGate fails when the serving surface outgrew its documentation: the
// route inventory comes from server.Routes() and fleet.Router.Routes()
// (each mux's own registration list, so a new endpoint on either tier is
// picked up automatically) and the flag inventory is parsed out of the
// command sources.
func docsGate(args []string) {
	fs := flag.NewFlagSet("docs", flag.ExitOnError)
	doc := fs.String("doc", "docs/API.md", "API reference every route and flag must appear in")
	cmds := fs.String("cmds", "cmd/summaryd/main.go,cmd/summaryrouter/main.go,cmd/loadgen/main.go",
		"comma-separated command sources whose flags must be documented")
	_ = fs.Parse(args)

	docText, err := os.ReadFile(*doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates docs: %v\n", err)
		os.Exit(2)
	}
	routes := server.New(server.NewRegistry(), server.Options{}).Routes()
	router, err := fleet.NewRouter([]fleet.NodeConfig{{Name: "node0", URL: "http://127.0.0.1:0"}}, fleet.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cigates docs: %v\n", err)
		os.Exit(2)
	}
	seen := make(map[string]bool, len(routes))
	for _, r := range routes {
		seen[r] = true
	}
	for _, r := range router.Routes() {
		if !seen[r] {
			seen[r] = true
			routes = append(routes, r)
		}
	}
	flags := make(map[string][]string)
	totalFlags := 0
	for _, path := range strings.Split(*cmds, ",") {
		path = strings.TrimSpace(path)
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cigates docs: %v\n", err)
			os.Exit(2)
		}
		cmd := filepath.Base(filepath.Dir(path))
		flags[cmd] = ci.ExtractFlags(string(src))
		totalFlags += len(flags[cmd])
	}
	problems := ci.DocLint(string(docText), routes, flags)
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "cigates: docs gate failed, %s does not cover the serving surface:\n", *doc)
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "  %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docs gate passed: %d routes and %d flags documented in %s\n", len(routes), totalFlags, *doc)
}
