// Command loadgen measures a running summaryd instance end to end: it
// discovers the target estimator's schema over /estimators, generates the
// same seeded workload the in-process harness uses, replays it over HTTP
// on a bounded worker pool, and prints client-side throughput and p50/p95
// latency as JSON — the numbers the BENCH.md serving table records.
//
// With -ingest-every N, one request slot in N becomes a POST
// /ingest/{dataset} carrying -ingest-batch random schema-compatible rows:
// the mixed read/write workload of a live deployment, exercising the
// refresh + hot-swap path under concurrent queries.
//
// With -batch N, queries travel N to a round trip over POST /query/batch;
// -wire binary swaps the JSON bodies for the compact binary frames of
// internal/query. This is the high-throughput client mode the BENCH.md
// batched-serving table measures.
//
// With -version N, every query is answered from retained snapshot version
// N instead of the live estimators (time travel; needs a summaryd started
// with -store). -version-mix 0,1,2 instead cycles requests through a list
// of versions (0 = live), stressing the server's historical-estimator
// cache with a mixed live/time-travel workload. The two are mutually
// exclusive, as are ingest mixes with batching or versioned reads;
// experiment.LoadOptions.Validate is the single authority on which flag
// combinations are accepted.
//
// With -routers a,b,... requests rotate round-robin across several
// summaryrouter front-ends of the same fleet (schema discovery still uses
// -addr), measuring a sharded routing tier the way clients would drive it.
// -routers cannot combine with -ingest-every: a router only fences its own
// proxied writes, so spreading ingest across routers would leave every
// other router's read cache serving stale hits (docs/FLEET.md).
//
//	go run ./cmd/summaryd &
//	go run ./cmd/loadgen -addr http://localhost:8080 -estimator demo/maxent -requests 2000
//	go run ./cmd/loadgen -estimator demo/maxent -requests 2000 -ingest-every 10 -ingest-batch 50
//	go run ./cmd/loadgen -estimator demo/maxent -requests 4000 -batch 32 -wire binary
//	go run ./cmd/loadgen -estimator demo/maxent -requests 1000 -version 1
//	go run ./cmd/loadgen -estimator demo/maxent -requests 1000 -version-mix 0,1,2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/schema"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "base URL of the summaryd instance")
		estimator   = flag.String("estimator", "demo/maxent", "registered estimator to query")
		queries     = flag.Int("queries", 200, "distinct workload queries to generate")
		requests    = flag.Int("requests", 0, "total requests to send (default queries; larger values replay the workload and exercise the cache)")
		seed        = flag.Int64("seed", 1, "workload seed")
		concurrency = flag.Int("concurrency", 8, "in-flight requests")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		ingestEvery = flag.Int("ingest-every", 0, "make every Nth request an ingest (0 disables the write mix)")
		ingestBatch = flag.Int("ingest-batch", 10, "rows per ingest request")
		ingestData  = flag.String("ingest-dataset", "", "dataset for POST /ingest/{dataset} (default: the estimator's dataset prefix)")
		batch       = flag.Int("batch", 0, "queries per POST /query/batch round trip (0 or 1 = single-query endpoints)")
		wire        = flag.String("wire", "json", "batch encoding: json or binary (requires -batch > 1)")
		version     = flag.Int("version", 0, "answer every query from this retained snapshot version (0 = live estimators)")
		versionMix  = flag.String("version-mix", "", "comma-separated snapshot versions cycled across requests, 0 meaning live (e.g. 0,1,2) — a mixed live/time-travel workload")
		routers     = flag.String("routers", "", "comma-separated base URLs fronting the same fleet; requests rotate round-robin across them (-addr still serves schema discovery; incompatible with -ingest-every)")
	)
	flag.Parse()
	if *queries <= 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -queries must be positive, got %d\n", *queries)
		os.Exit(2)
	}
	if *requests < 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -requests must be non-negative, got %d\n", *requests)
		os.Exit(2)
	}
	if *ingestEvery < 0 || *ingestBatch <= 0 {
		fmt.Fprintf(os.Stderr, "loadgen: -ingest-every must be non-negative and -ingest-batch positive\n")
		os.Exit(2)
	}
	mixVersions, err := experiment.ParseVersionMix(*versionMix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -version-mix: %v\n", err)
		os.Exit(2)
	}

	// Assemble the full option set and reject contradictory flag combos in
	// one place (experiment.LoadOptions.Validate) BEFORE touching the
	// network — bad flags must fail instantly, not after discovery. The
	// ingest row pool is schema-dependent and filled in after discovery.
	opts := experiment.LoadOptions{
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Batch:       *batch,
		Wire:        *wire,
		Version:     *version,
		VersionMix:  mixVersions,
		Routers:     splitRouters(*routers),
	}
	if *ingestEvery > 0 {
		dataset := *ingestData
		if dataset == "" {
			dataset = *estimator
			if i := strings.IndexByte(dataset, '/'); i >= 0 {
				dataset = dataset[:i]
			}
		}
		opts.Ingest = &experiment.IngestMix{
			Dataset: dataset,
			Every:   *ingestEvery,
			Batch:   *ingestBatch,
		}
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	sch, err := discoverSchema(*addr, *estimator)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	workload := experiment.GenerateWorkload(sch, *queries, rand.New(rand.NewSource(*seed)))
	opts.Repeat = 1
	if *requests > 0 && *requests < len(workload) {
		// Fewer requests than distinct queries: send a prefix once.
		workload = workload[:*requests]
	} else if *requests > *queries {
		opts.Repeat = (*requests + *queries - 1) / *queries
	}
	if opts.Ingest != nil {
		// A pool of random schema-compatible rows; batches rotate through
		// it, so the ingested distribution is uniform over the domains.
		rng := rand.New(rand.NewSource(*seed + 11))
		pool := make([][]int, max(*ingestBatch*8, 256))
		for i := range pool {
			row := make([]int, sch.NumAttrs())
			for a := range row {
				row[a] = rng.Intn(sch.Attr(a).Size())
			}
			pool[i] = row
		}
		opts.Ingest.Rows = pool
	}
	res, err := experiment.DriveHTTP(*addr, *estimator, workload, opts)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
	if res.Errors > 0 || res.IngestErrors > 0 {
		os.Exit(1)
	}
}

// splitRouters decodes the -routers list; validity (non-empty entries,
// URL shape) is experiment.LoadOptions.Validate's job.
func splitRouters(spec string) []string {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	var out []string
	for _, u := range strings.Split(spec, ",") {
		out = append(out, strings.TrimSpace(u))
	}
	return out
}

// discoverSchema asks the server for the estimator's domain sizes and
// reconstructs a workload-compatible schema (GenerateWorkload only needs
// arity and per-attribute sizes).
func discoverSchema(baseURL, estimator string) (*schema.Schema, error) {
	resp, err := http.Get(baseURL + "/estimators")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /estimators: status %d", resp.StatusCode)
	}
	var er server.EstimatorsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return nil, fmt.Errorf("decode /estimators: %w", err)
	}
	for _, e := range er.Estimators {
		if e.Name != estimator {
			continue
		}
		attrs := make([]schema.Attribute, len(e.DomainSizes))
		for i, size := range e.DomainSizes {
			name := fmt.Sprintf("a%d", i)
			if i < len(e.AttrNames) {
				name = e.AttrNames[i]
			}
			labels := make([]string, size)
			for v := range labels {
				labels[v] = fmt.Sprintf("v%d", v)
			}
			a, err := schema.NewCategorical(name, labels)
			if err != nil {
				return nil, fmt.Errorf("reconstruct schema: %w", err)
			}
			attrs[i] = a
		}
		return schema.New(attrs...)
	}
	names := make([]string, len(er.Estimators))
	for i, e := range er.Estimators {
		names[i] = e.Name
	}
	return nil, fmt.Errorf("estimator %q not registered (server has %v)", estimator, names)
}
