package relation

import (
	"fmt"
	"sync"

	"repro/internal/schema"
)

// Mutable is the live-ingestion wrapper around a Relation: an append log
// with a generation counter and a zero-copy freeze. It is the mutation
// boundary of the dataset lifecycle — everything downstream of a Freeze
// (statistics, solver, summaries, serving) still operates on immutable
// *Relation values, while appends accumulate here.
//
// Concurrency: Append/AppendRows/Freeze/NumRows/Generation may be called
// from any goroutine. Freeze returns a read-only view sharing the column
// storage: appends only ever write array slots past the view's capped
// length (or reallocate), so frozen views stay valid and race-free while
// ingestion continues.
type Mutable struct {
	mu  sync.Mutex
	rel *Relation
	gen uint64 // bumped once per successful append batch
}

// NewMutable wraps a relation for live appends. The caller hands over
// ownership: the wrapped relation must not be used directly afterwards
// (Freeze returns safe views of it).
func NewMutable(rel *Relation) *Mutable {
	return &Mutable{rel: rel}
}

// Schema returns the relation's schema (immutable, so no lock is needed).
func (m *Mutable) Schema() *schema.Schema { return m.rel.sch }

// NumRows returns the current cardinality.
func (m *Mutable) NumRows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rel.rows
}

// Generation returns the number of successful append batches so far. It
// only ever increases, so callers can cheaply detect "anything new since
// I last looked".
func (m *Mutable) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Append adds one encoded tuple and bumps the generation.
func (m *Mutable) Append(tuple []int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.rel.Append(tuple); err != nil {
		return err
	}
	m.gen++
	return nil
}

// AppendRows adds a batch of encoded tuples all-or-nothing: every row is
// validated against the schema before any is appended, so a bad row in the
// middle of a batch cannot leave a half-ingested prefix behind. It returns
// the number of rows appended (len(rows) on success, 0 on error).
func (m *Mutable) AppendRows(rows [][]int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sch := m.rel.sch
	for i, tuple := range rows {
		if len(tuple) != sch.NumAttrs() {
			return 0, fmt.Errorf("relation: row %d has %d values, schema has %d attributes", i, len(tuple), sch.NumAttrs())
		}
		for a, v := range tuple {
			if v < 0 || v >= sch.Attr(a).Size() {
				return 0, fmt.Errorf("relation: row %d: value %d out of domain [0,%d) for attribute %q",
					i, v, sch.Attr(a).Size(), sch.Attr(a).Name())
			}
		}
	}
	// Everything validated above; append straight into the columns rather
	// than paying Append's per-row validation a second time.
	for _, tuple := range rows {
		for a, v := range tuple {
			m.rel.cols[a] = append(m.rel.cols[a], int32(v))
		}
		m.rel.rows++
	}
	if len(rows) > 0 {
		m.gen++
	}
	return len(rows), nil
}

// Freeze returns an immutable zero-copy view of the current rows together
// with the generation it captures. The view shares the column storage of
// the live relation — O(attrs) regardless of size — and stays valid while
// appends continue: its capacity is capped at its length, so a later
// append either writes past the cap or reallocates, never through the
// view.
func (m *Mutable) Freeze() (*Relation, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	view, err := m.rel.Slice(0, m.rel.rows)
	if err != nil {
		panic(err) // unreachable: [0, rows) is always in range
	}
	return view, m.gen
}
