package relation

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/schema"
)

func mutableTestSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustCategorical("a", []string{"x", "y", "z"}),
		schema.MustCategorical("b", []string{"p", "q"}),
	)
}

func TestMutableAppendAndFreeze(t *testing.T) {
	m := NewMutable(New(mutableTestSchema()))
	if m.NumRows() != 0 || m.Generation() != 0 {
		t.Fatalf("fresh mutable: rows=%d gen=%d, want 0/0", m.NumRows(), m.Generation())
	}
	if err := m.Append([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendRows([][]int{{1, 0}, {2, 1}}); err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", m.NumRows())
	}
	if m.Generation() != 2 {
		t.Fatalf("generation = %d, want 2 (one per batch)", m.Generation())
	}

	frozen, gen := m.Freeze()
	if frozen.NumRows() != 3 || gen != 2 {
		t.Fatalf("freeze: rows=%d gen=%d, want 3/2", frozen.NumRows(), gen)
	}

	// Appends after the freeze must not be visible through the view.
	if _, err := m.AppendRows([][]int{{0, 0}, {0, 0}, {0, 0}}); err != nil {
		t.Fatal(err)
	}
	if frozen.NumRows() != 3 {
		t.Fatalf("frozen view grew to %d rows after append", frozen.NumRows())
	}
	p := query.NewPredicate(2)
	p.WhereEq(0, 0)
	if got := frozen.Count(p); got != 1 {
		t.Fatalf("frozen count(a=x) = %d, want 1 (post-freeze appends leaked in)", got)
	}
	full, _ := m.Freeze()
	if got := full.Count(p); got != 4 {
		t.Fatalf("new freeze count(a=x) = %d, want 4", got)
	}

	// The delta between two freezes is a plain slice view.
	delta, err := full.Slice(frozen.NumRows(), full.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if delta.NumRows() != 3 || delta.Count(p) != 3 {
		t.Fatalf("delta view: rows=%d count(a=x)=%d, want 3/3", delta.NumRows(), delta.Count(p))
	}
}

func TestMutableAppendRowsAllOrNothing(t *testing.T) {
	m := NewMutable(New(mutableTestSchema()))
	if _, err := m.AppendRows([][]int{{0, 0}, {0, 9}}); err == nil {
		t.Fatal("AppendRows accepted an out-of-domain value")
	}
	if m.NumRows() != 0 {
		t.Fatalf("failed batch left %d rows behind", m.NumRows())
	}
	if _, err := m.AppendRows([][]int{{0, 0, 0}}); err == nil {
		t.Fatal("AppendRows accepted a wrong-arity row")
	}
	if m.Generation() != 0 {
		t.Fatalf("failed batches bumped the generation to %d", m.Generation())
	}
	if n, err := m.AppendRows(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: n=%d err=%v, want 0/nil", n, err)
	}
	if m.Generation() != 0 {
		t.Fatal("empty batch bumped the generation")
	}
}

// TestMutableConcurrentFreezeAndAppend drives appends and freezes from
// many goroutines; under -race this proves the zero-copy freeze contract
// (appends never write through a frozen view).
func TestMutableConcurrentFreezeAndAppend(t *testing.T) {
	m := NewMutable(New(mutableTestSchema()))
	const writers, rounds = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := m.AppendRows([][]int{{w % 3, i % 2}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view, _ := m.Freeze()
				// Touch every row of the view so a racing write would trip
				// the race detector.
				n := view.Count(nil)
				if n != view.NumRows() {
					t.Errorf("count(nil) = %d, rows = %d", n, view.NumRows())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := m.NumRows(); got != writers*rounds {
		t.Fatalf("rows = %d, want %d", got, writers*rounds)
	}
}
