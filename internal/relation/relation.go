// Package relation implements the in-memory columnar store for a single
// encoded relation: an ordered bag of tuples over the active domains of a
// schema (the "slotted possible world" of Sec. 2.1). It also provides the
// counting primitives (selection counts, group-by counts, 2D histograms and
// frequency vectors) that the statistics subsystem, the exact ground-truth
// engine, and the sampling baselines are built on.
package relation

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/schema"
)

// Relation is an ordered bag of encoded tuples stored column-major. Each
// column value is the index of the tuple's value in the attribute's active
// domain.
type Relation struct {
	sch  *schema.Schema
	cols [][]int32
	rows int
}

// New creates an empty relation over the given schema.
func New(sch *schema.Schema) *Relation {
	cols := make([][]int32, sch.NumAttrs())
	return &Relation{sch: sch, cols: cols}
}

// NewWithCapacity creates an empty relation with storage preallocated for n
// rows.
func NewWithCapacity(sch *schema.Schema, n int) *Relation {
	r := New(sch)
	for i := range r.cols {
		r.cols[i] = make([]int32, 0, n)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.Schema { return r.sch }

// NumRows returns the cardinality n of the relation.
func (r *Relation) NumRows() int { return r.rows }

// NumAttrs returns the arity m of the relation.
func (r *Relation) NumAttrs() int { return r.sch.NumAttrs() }

// Append adds one encoded tuple. The tuple length must equal the arity and
// every value must lie inside its attribute's active domain.
func (r *Relation) Append(tuple []int) error {
	if len(tuple) != r.sch.NumAttrs() {
		return fmt.Errorf("relation: tuple has %d values, schema has %d attributes", len(tuple), r.sch.NumAttrs())
	}
	for i, v := range tuple {
		if v < 0 || v >= r.sch.Attr(i).Size() {
			return fmt.Errorf("relation: value %d out of domain [0,%d) for attribute %q",
				v, r.sch.Attr(i).Size(), r.sch.Attr(i).Name())
		}
	}
	for i, v := range tuple {
		r.cols[i] = append(r.cols[i], int32(v))
	}
	r.rows++
	return nil
}

// MustAppend is like Append but panics on error. Generators use it for
// tuples they constructed themselves.
func (r *Relation) MustAppend(tuple []int) {
	if err := r.Append(tuple); err != nil {
		panic(err)
	}
}

// Value returns the encoded value of attribute attr in row i.
func (r *Relation) Value(row, attr int) int { return int(r.cols[attr][row]) }

// Row copies row i into dst (allocating when dst is too small) and returns
// it.
func (r *Relation) Row(i int, dst []int) []int {
	m := r.sch.NumAttrs()
	if cap(dst) < m {
		dst = make([]int, m)
	}
	dst = dst[:m]
	for a := 0; a < m; a++ {
		dst[a] = int(r.cols[a][i])
	}
	return dst
}

// Column returns a read-only view of the encoded values of one attribute.
// Callers must not modify the returned slice.
func (r *Relation) Column(attr int) []int32 { return r.cols[attr] }

// Count returns |σ_π(I)|, the number of rows satisfying the predicate.
func (r *Relation) Count(pred *query.Predicate) int {
	if pred == nil {
		return r.rows
	}
	attrs := pred.ConstrainedAttrs()
	if len(attrs) == 0 {
		return r.rows
	}
	count := 0
	constraints := make([]query.Constraint, len(attrs))
	for k, a := range attrs {
		constraints[k] = pred.Constraint(a)
	}
rows:
	for i := 0; i < r.rows; i++ {
		for k, a := range attrs {
			if !constraints[k].Matches(int(r.cols[a][i])) {
				continue rows
			}
		}
		count++
	}
	return count
}

// GroupKey identifies one group in a group-by count; it aliases the shared
// core.GroupKey so every engine agrees on one key layout.
type GroupKey = core.GroupKey

// MakeGroupKey packs up to four encoded values into a GroupKey.
func MakeGroupKey(values []int) GroupKey { return core.MakeGroupKey(values) }

// GroupCounts returns the exact COUNT(*) per combination of values of the
// grouping attributes among rows satisfying pred (pred may be nil). At most
// four grouping attributes are supported, matching the paper's 2–4D
// selection templates.
func (r *Relation) GroupCounts(groupAttrs []int, pred *query.Predicate) map[GroupKey]int {
	if len(groupAttrs) == 0 || len(groupAttrs) > 4 {
		panic(fmt.Sprintf("relation: group-by needs 1..4 attributes, got %d", len(groupAttrs)))
	}
	out := make(map[GroupKey]int)
	var predAttrs []int
	var constraints []query.Constraint
	if pred != nil {
		predAttrs = pred.ConstrainedAttrs()
		constraints = make([]query.Constraint, len(predAttrs))
		for k, a := range predAttrs {
			constraints[k] = pred.Constraint(a)
		}
	}
	vals := make([]int, len(groupAttrs))
rows:
	for i := 0; i < r.rows; i++ {
		for k, a := range predAttrs {
			if !constraints[k].Matches(int(r.cols[a][i])) {
				continue rows
			}
		}
		for k, a := range groupAttrs {
			vals[k] = int(r.cols[a][i])
		}
		out[MakeGroupKey(vals)]++
	}
	return out
}

// Histogram1D returns the per-value counts of a single attribute.
func (r *Relation) Histogram1D(attr int) []int {
	n := r.sch.Attr(attr).Size()
	out := make([]int, n)
	for _, v := range r.cols[attr] {
		out[v]++
	}
	return out
}

// Histogram2D returns the joint count matrix counts[v1][v2] of the attribute
// pair (a1, a2).
func (r *Relation) Histogram2D(a1, a2 int) [][]int {
	n1 := r.sch.Attr(a1).Size()
	n2 := r.sch.Attr(a2).Size()
	out := make([][]int, n1)
	flat := make([]int, n1*n2)
	for i := range out {
		out[i], flat = flat[:n2], flat[n2:]
	}
	c1, c2 := r.cols[a1], r.cols[a2]
	for i := 0; i < r.rows; i++ {
		out[c1[i]][c2[i]]++
	}
	return out
}

// FrequencyVector returns the d-dimensional frequency vector n^I of the
// relation (Fig. 1 of the paper), indexed in row-major order over the tuple
// space. It is only usable for small schemas and is primarily a testing aid.
func (r *Relation) FrequencyVector() ([]int, error) {
	d := r.sch.TupleSpace()
	const limit = 1 << 24
	if d > limit {
		return nil, fmt.Errorf("relation: tuple space %d too large for an explicit frequency vector", d)
	}
	sizes := r.sch.DomainSizes()
	out := make([]int, d)
	for i := 0; i < r.rows; i++ {
		idx := 0
		for a := 0; a < len(sizes); a++ {
			idx = idx*sizes[a] + int(r.cols[a][i])
		}
		out[idx]++
	}
	return out, nil
}

// Slice returns a read-only view of the contiguous row range [lo, hi):
// the view shares the column storage of the receiver, so it costs O(m)
// regardless of the range size. Appending to either relation afterwards is
// not supported. It is the horizontal-partitioning primitive the
// partitioned summary builder is built on.
func (r *Relation) Slice(lo, hi int) (*Relation, error) {
	if lo < 0 || hi > r.rows || lo > hi {
		return nil, fmt.Errorf("relation: slice [%d,%d) out of range [0,%d)", lo, hi, r.rows)
	}
	cols := make([][]int32, len(r.cols))
	for a, col := range r.cols {
		cols[a] = col[lo:hi:hi]
	}
	return &Relation{sch: r.sch, cols: cols, rows: hi - lo}, nil
}

// Partition splits the relation into k contiguous horizontal partitions of
// near-equal size (the first rows%k partitions hold one extra row). The
// partitions are read-only views sharing the receiver's storage. k is
// clamped to [1, rows] so no partition is empty — except for an empty
// relation, which yields a single empty partition.
func (r *Relation) Partition(k int) []*Relation {
	if k < 1 {
		k = 1
	}
	if k > r.rows {
		k = r.rows
	}
	if k <= 1 {
		return []*Relation{r}
	}
	parts := make([]*Relation, 0, k)
	base, extra := r.rows/k, r.rows%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		p, err := r.Slice(lo, lo+size)
		if err != nil {
			panic(err) // unreachable: bounds are derived from rows
		}
		parts = append(parts, p)
		lo += size
	}
	return parts
}

// Select returns a new relation containing the rows with the given indexes
// (in order). Indexes may repeat.
func (r *Relation) Select(rows []int) *Relation {
	out := NewWithCapacity(r.sch, len(rows))
	buf := make([]int, r.sch.NumAttrs())
	for _, i := range rows {
		out.MustAppend(r.Row(i, buf))
	}
	return out
}

// SampleUniform returns a uniform random sample (without replacement) of
// approximately rate*n rows using the given random source.
func (r *Relation) SampleUniform(rate float64, rng *rand.Rand) *Relation {
	if rate <= 0 {
		return New(r.sch)
	}
	if rate >= 1 {
		rows := make([]int, r.rows)
		for i := range rows {
			rows[i] = i
		}
		return r.Select(rows)
	}
	rows := make([]int, 0, int(rate*float64(r.rows))+16)
	for i := 0; i < r.rows; i++ {
		if rng.Float64() < rate {
			rows = append(rows, i)
		}
	}
	return r.Select(rows)
}

// ApproxBytes returns an estimate of the in-memory footprint of the encoded
// relation (4 bytes per value), used when reporting summary-vs-data sizes.
func (r *Relation) ApproxBytes() int64 {
	return int64(r.rows) * int64(r.sch.NumAttrs()) * 4
}
