package relation

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

// TestLoadCSVSchemaInferenceEdgeCases is the table-driven edge-case suite
// for the inference rules: empty inputs, all-null (empty-string) columns,
// and mixed int/float promotion.
func TestLoadCSVSchemaInferenceEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		opts    CSVOptions
		wantErr bool
		check   func(t *testing.T, rel *Relation)
	}{
		{
			name:    "empty file",
			in:      "",
			opts:    CSVOptions{},
			wantErr: true,
		},
		{
			name:    "empty file no header",
			in:      "",
			opts:    CSVOptions{NoHeader: true},
			wantErr: true,
		},
		{
			name:    "header only",
			in:      "a,b\n",
			opts:    CSVOptions{},
			wantErr: true,
		},
		{
			name: "all-null column becomes single-label categorical",
			in:   "a,b\n,1\n,2\n,3\n",
			opts: CSVOptions{Bins: 4},
			check: func(t *testing.T, rel *Relation) {
				a := rel.Schema().Attr(0)
				if a.Kind() != schema.Categorical || a.Size() != 1 {
					t.Fatalf("all-null column: kind=%v size=%d, want categorical/1", a.Kind(), a.Size())
				}
				if a.Label(0) != "" {
					t.Fatalf("all-null column label %q, want empty", a.Label(0))
				}
				for i := 0; i < rel.NumRows(); i++ {
					if rel.Value(i, 0) != 0 {
						t.Fatalf("row %d of all-null column encoded as %d", i, rel.Value(i, 0))
					}
				}
			},
		},
		{
			name: "null among numbers demotes to categorical",
			in:   "a,b\n1,x\n,y\n3,z\n",
			opts: CSVOptions{},
			check: func(t *testing.T, rel *Relation) {
				a := rel.Schema().Attr(0)
				if a.Kind() != schema.Categorical || a.Size() != 3 {
					t.Fatalf("mixed null/number column: kind=%v size=%d, want categorical/3", a.Kind(), a.Size())
				}
			},
		},
		{
			// encoding/csv skips fully blank lines, so a "column of empty
			// lines" is not data at all — only quoted or delimited empty
			// fields survive parsing.
			name:    "blank lines are skipped, not null rows",
			in:      "a\n\n\n",
			opts:    CSVOptions{},
			wantErr: true,
		},
		{
			name: "mixed int and float promotes to binned",
			in:   "x\n1\n2.5\n7\n10\n",
			opts: CSVOptions{Bins: 3},
			check: func(t *testing.T, rel *Relation) {
				a := rel.Schema().Attr(0)
				if a.Kind() != schema.Binned || a.Size() != 3 {
					t.Fatalf("mixed int/float column: kind=%v size=%d, want binned/3", a.Kind(), a.Size())
				}
				lo, hi := a.Bounds()
				if lo != 1 || hi != 10 {
					t.Fatalf("bounds [%g,%g), want [1,10)", lo, hi)
				}
				// 1 → first bucket, 2.5 → first bucket ([1,4)), 7 → bucket 2
				// ([7,10) boundary), 10 → clamped into the last bucket.
				want := []int{0, 0, 2, 2}
				for i, w := range want {
					if got := rel.Value(i, 0); got != w {
						t.Fatalf("row %d binned to %d, want %d", i, got, w)
					}
				}
			},
		},
		{
			name: "scientific notation and signs stay numeric",
			in:   "x\n-1e2\n+3.5\n0\n",
			opts: CSVOptions{Bins: 2},
			check: func(t *testing.T, rel *Relation) {
				a := rel.Schema().Attr(0)
				if a.Kind() != schema.Binned {
					t.Fatalf("kind %v, want binned", a.Kind())
				}
				lo, hi := a.Bounds()
				if lo != -100 || hi != 3.5 {
					t.Fatalf("bounds [%g,%g), want [-100,3.5)", lo, hi)
				}
			},
		},
		{
			name: "numeric-looking strings mixed with words stay categorical",
			in:   "x\n1\ntwo\n3\n",
			opts: CSVOptions{},
			check: func(t *testing.T, rel *Relation) {
				a := rel.Schema().Attr(0)
				if a.Kind() != schema.Categorical || a.Size() != 3 {
					t.Fatalf("kind=%v size=%d, want categorical/3", a.Kind(), a.Size())
				}
			},
		},
		{
			name: "single quoted-empty cell",
			in:   "a\n\"\"\n",
			opts: CSVOptions{},
			check: func(t *testing.T, rel *Relation) {
				if rel.NumRows() != 1 || rel.Schema().Attr(0).Size() != 1 {
					t.Fatalf("rows=%d size=%d, want 1/1", rel.NumRows(), rel.Schema().Attr(0).Size())
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rel, err := LoadCSV(strings.NewReader(tc.in), tc.opts)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("LoadCSV accepted %s", tc.name)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, rel)
		})
	}
}

// FuzzLoadCSV feeds arbitrary bytes through the loader: it must never
// panic, and any successfully loaded relation must satisfy the encoding
// invariants (every value inside its attribute's domain).
func FuzzLoadCSV(f *testing.F) {
	f.Add("a,b\nx,1\ny,2\n", false, 4)
	f.Add("", true, 1)
	f.Add("1,2\n3,4\n", true, 16)
	f.Add("a\n\n\n", false, 2)
	f.Add("x\n1\n2.5\nNaN\n", true, 8)
	f.Add("\"q\"\"uoted\",v\n1,2\n", false, 3)
	f.Fuzz(func(t *testing.T, in string, noHeader bool, bins int) {
		rel, err := LoadCSV(strings.NewReader(in), CSVOptions{
			NoHeader:      noHeader,
			Bins:          bins,
			MaxCategories: 64,
		})
		if err != nil {
			return
		}
		if rel.NumRows() == 0 {
			t.Fatal("LoadCSV returned an empty relation without error")
		}
		sch := rel.Schema()
		for i := 0; i < rel.NumRows(); i++ {
			for a := 0; a < rel.NumAttrs(); a++ {
				v := rel.Value(i, a)
				if v < 0 || v >= sch.Attr(a).Size() {
					t.Fatalf("row %d attr %d: value %d outside domain [0,%d)", i, a, v, sch.Attr(a).Size())
				}
			}
		}
	})
}
