package relation

import (
	"strings"
	"testing"
)

func TestLoadCSVInfersSchema(t *testing.T) {
	rel, err := LoadCSV(strings.NewReader(
		"region,amount,flag\n"+
			"EU,10.5,yes\n"+
			"NA,99.9,no\n"+
			"EU,0.0,yes\n"), CSVOptions{Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 3 || rel.NumAttrs() != 3 {
		t.Fatalf("got %d rows × %d attrs, want 3×3", rel.NumRows(), rel.NumAttrs())
	}
	sch := rel.Schema()
	if got := sch.Attr(0).Name(); got != "region" {
		t.Errorf("attr 0 name %q", got)
	}
	if sch.Attr(0).Size() != 2 { // EU, NA sorted
		t.Errorf("region domain size %d, want 2", sch.Attr(0).Size())
	}
	if sch.Attr(1).Kind().String() != "binned" || sch.Attr(1).Size() != 4 {
		t.Errorf("amount: kind %v size %d, want binned/4", sch.Attr(1).Kind(), sch.Attr(1).Size())
	}
	lo, hi := sch.Attr(1).Bounds()
	if lo != 0 || hi != 99.9 {
		t.Errorf("amount bounds [%g,%g), want [0,99.9)", lo, hi)
	}
	// EU encodes to 0 (sorted labels), NA to 1.
	if rel.Value(0, 0) != 0 || rel.Value(1, 0) != 1 {
		t.Errorf("region encoding: rows %d,%d", rel.Value(0, 0), rel.Value(1, 0))
	}
	// The maximum amount lands in the last bucket, clamped off the
	// half-open boundary.
	if rel.Value(1, 1) != 3 {
		t.Errorf("max amount in bucket %d, want 3", rel.Value(1, 1))
	}
}

func TestLoadCSVNoHeaderAndConstantColumn(t *testing.T) {
	rel, err := LoadCSV(strings.NewReader("a,5\nb,5\n"), CSVOptions{NoHeader: true, Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	sch := rel.Schema()
	if sch.Attr(0).Name() != "col0" || sch.Attr(1).Name() != "col1" {
		t.Errorf("names %q, %q", sch.Attr(0).Name(), sch.Attr(1).Name())
	}
	// A constant numeric column still yields a valid binned attribute.
	if rel.Value(0, 1) != rel.Value(1, 1) {
		t.Error("constant column encoded inconsistently")
	}
}

func TestLoadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]struct {
		in   string
		opts CSVOptions
	}{
		"empty":            {"", CSVOptions{}},
		"header only":      {"a,b\n", CSVOptions{}},
		"ragged rows":      {"a,b\nx,1\ny\n", CSVOptions{}},
		"category blow-up": {"c\nx\ny\nz\n", CSVOptions{MaxCategories: 2}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadCSV(strings.NewReader(tc.in), tc.opts); err == nil {
				t.Errorf("LoadCSV accepted %s", name)
			}
		})
	}
}
