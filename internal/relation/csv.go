package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/schema"
)

// CSVOptions configure LoadCSV. The zero value requests the defaults
// noted on each field.
type CSVOptions struct {
	// Comma is the field separator (default ',').
	Comma rune
	// NoHeader treats the first record as data; attributes are then named
	// col0, col1, ….
	NoHeader bool
	// Bins is the number of equi-width buckets a numeric column is
	// discretized into (default 16).
	Bins int
	// MaxCategories bounds the distinct labels a non-numeric column may
	// hold before loading fails (default 1024) — a column of near-unique
	// strings would otherwise blow up the 1D statistic families and the
	// polynomial alike.
	MaxCategories int
}

func (o *CSVOptions) setDefaults() {
	if o.Comma == 0 {
		o.Comma = ','
	}
	if o.Bins <= 0 {
		o.Bins = 16
	}
	if o.MaxCategories <= 0 {
		o.MaxCategories = 1024
	}
}

// LoadCSV reads a delimited file into an encoded relation, inferring the
// schema from the data: a column whose every value parses as a float
// becomes a Binned attribute (equi-width over the observed [min, max]
// range), any other column becomes a Categorical attribute over its
// sorted distinct values. Two passes over the records keep the logic
// simple; the relation is the summarization input, not a serving-path
// object.
func LoadCSV(r io.Reader, opts CSVOptions) (*Relation, error) {
	opts.setDefaults()
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV: %w", err)
	}
	var header []string
	if !opts.NoHeader {
		if len(records) == 0 {
			return nil, fmt.Errorf("relation: CSV has no header row")
		}
		header, records = records[0], records[1:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: CSV has no data rows")
	}
	cols := len(records[0])
	if cols == 0 {
		return nil, fmt.Errorf("relation: CSV rows have no columns")
	}
	if header == nil {
		header = make([]string, cols)
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
	}
	if len(header) != cols {
		return nil, fmt.Errorf("relation: CSV header has %d columns, rows have %d", len(header), cols)
	}

	// Pass 1: infer one attribute per column.
	attrs := make([]schema.Attribute, cols)
	for c := 0; c < cols; c++ {
		attr, _, err := inferColumn(header[c], records, c, opts)
		if err != nil {
			return nil, err
		}
		attrs[c] = attr
	}
	sch, err := schema.New(attrs...)
	if err != nil {
		return nil, fmt.Errorf("relation: inferred schema: %w", err)
	}

	// Pass 2: encode every row against the inferred schema. A column was
	// inferred Binned iff every field parsed numerically, so the
	// kind-dispatch inside EncodeRecord reproduces the inference exactly.
	rel := NewWithCapacity(sch, len(records))
	tuple := make([]int, cols)
	for i, rec := range records {
		if len(rec) != cols {
			return nil, fmt.Errorf("relation: row %d has %d fields, want %d", i+1, len(rec), cols)
		}
		if _, err := EncodeRecord(sch, rec, tuple); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", i+1, err)
		}
		if err := rel.Append(tuple); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", i+1, err)
		}
	}
	return rel, nil
}

// EncodeRecord encodes one raw textual record against a schema: binned
// attributes parse as floats (strictly — no whitespace trimming, matching
// LoadCSV's inference) and are bucketized, categorical attributes are
// matched by label. The encoded tuple is written into dst when it has the
// right length (allocated otherwise) and returned. It is the single
// field-encoding path shared by offline CSV loading and live CSV
// ingestion, so the two cannot drift.
func EncodeRecord(sch *schema.Schema, record []string, dst []int) ([]int, error) {
	if len(record) != sch.NumAttrs() {
		return nil, fmt.Errorf("record has %d fields, schema has %d attributes", len(record), sch.NumAttrs())
	}
	if len(dst) != sch.NumAttrs() {
		dst = make([]int, sch.NumAttrs())
	}
	for c, field := range record {
		attr := sch.Attr(c)
		switch attr.Kind() {
		case schema.Binned:
			x, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", attr.Name(), err)
			}
			v, err := attr.Bin(x)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", attr.Name(), err)
			}
			dst[c] = v
		default:
			v, err := attr.EncodeLabel(field)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", attr.Name(), err)
			}
			dst[c] = v
		}
	}
	return dst, nil
}

// inferColumn decides whether column c is numeric (→ Binned) or
// categorical and builds its attribute.
func inferColumn(name string, records [][]string, c int, opts CSVOptions) (schema.Attribute, bool, error) {
	numeric := true
	lo, hi := 0.0, 0.0
	for i, rec := range records {
		if c >= len(rec) {
			return schema.Attribute{}, false, fmt.Errorf("relation: row %d has no column %d (%q)", i+1, c, name)
		}
		x, err := strconv.ParseFloat(rec[c], 64)
		if err != nil {
			numeric = false
			break
		}
		if i == 0 || x < lo {
			lo = x
		}
		if i == 0 || x > hi {
			hi = x
		}
	}
	if numeric {
		if hi <= lo {
			// A constant column still needs a non-empty range; one bucket
			// suffices and Bin clamps into it.
			hi = lo + 1
		}
		// The observed maximum sits on the half-open [lo, hi) boundary;
		// Bin clamps it into the last bucket.
		a, err := schema.NewBinned(name, lo, hi, opts.Bins)
		if err != nil {
			return schema.Attribute{}, false, fmt.Errorf("relation: column %q: %w", name, err)
		}
		return a, true, nil
	}
	distinct := make(map[string]struct{})
	for _, rec := range records {
		distinct[rec[c]] = struct{}{}
		if len(distinct) > opts.MaxCategories {
			return schema.Attribute{}, false, fmt.Errorf(
				"relation: column %q exceeds %d distinct values; bucketize it upstream or raise MaxCategories",
				name, opts.MaxCategories)
		}
	}
	labels := make([]string, 0, len(distinct))
	for l := range distinct {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	a, err := schema.NewCategorical(name, labels)
	if err != nil {
		return schema.Attribute{}, false, fmt.Errorf("relation: column %q: %w", name, err)
	}
	return a, false, nil
}
