// Package exact is the ground-truth query engine: it answers the counting
// and group-by queries of the evaluation by scanning the full relation. The
// experiment harness scores every approximate estimator (the MaxEnt summary
// and the sampling baselines) against this engine; the engine itself also
// satisfies core.Estimator, so it can be driven through the same harness
// code path to report its own latency and footprint.
package exact

import (
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Engine answers queries exactly against a full relation. It implements
// core.Estimator with zero error.
type Engine struct {
	rel *relation.Relation
}

// Engine satisfies the shared estimator interface.
var _ core.Estimator = (*Engine)(nil)

// New creates an exact engine over the relation.
func New(rel *relation.Relation) *Engine {
	return &Engine{rel: rel}
}

// Relation returns the underlying relation.
func (e *Engine) Relation() *relation.Relation { return e.rel }

// Name identifies the engine in reports.
func (e *Engine) Name() string { return "exact" }

// ApproxBytes reports the footprint of the full encoded relation, the
// state the engine answers from.
func (e *Engine) ApproxBytes() int64 { return e.rel.ApproxBytes() }

// Count returns the exact COUNT(*) of rows satisfying the predicate.
func (e *Engine) Count(pred *query.Predicate) float64 {
	return float64(e.rel.Count(pred))
}

// EstimateCount implements core.Estimator; the "estimate" is exact.
func (e *Engine) EstimateCount(pred *query.Predicate) (float64, error) {
	return e.Count(pred), nil
}

// TimedCount returns the exact count together with the scan latency; the
// scalability experiment (Fig. 7) reports runtime shapes.
func (e *Engine) TimedCount(pred *query.Predicate) (float64, time.Duration) {
	start := time.Now()
	c := e.Count(pred)
	return c, time.Since(start)
}

// GroupBy returns the exact COUNT(*) per combination of values of the
// grouping attributes among rows satisfying pred (pred may be nil). Only
// observed groups are returned, in descending count order with
// deterministic tie-breaking.
func (e *Engine) GroupBy(groupAttrs []int, pred *query.Predicate) []core.GroupEstimate {
	counts := e.rel.GroupCounts(groupAttrs, pred)
	out := make([]core.GroupEstimate, 0, len(counts))
	for key, c := range counts {
		out = append(out, core.GroupEstimate{Values: key.Values(len(groupAttrs)), Estimate: float64(c)})
	}
	core.SortGroupEstimates(out)
	return out
}

// EstimateGroupBy implements core.Estimator.
func (e *Engine) EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]core.GroupEstimate, error) {
	return e.GroupBy(groupAttrs, pred), nil
}
