// Package exact is the ground-truth query engine: it answers the counting
// and group-by queries of the evaluation by scanning the full relation. The
// experiment harness scores every approximate estimator (the MaxEnt summary
// and the sampling baselines) against this engine.
package exact

import (
	"sort"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

// Engine answers queries exactly against a full relation.
type Engine struct {
	rel *relation.Relation
}

// New creates an exact engine over the relation.
func New(rel *relation.Relation) *Engine {
	return &Engine{rel: rel}
}

// Relation returns the underlying relation.
func (e *Engine) Relation() *relation.Relation { return e.rel }

// Count returns the exact COUNT(*) of rows satisfying the predicate.
func (e *Engine) Count(pred *query.Predicate) float64 {
	return float64(e.rel.Count(pred))
}

// TimedCount returns the exact count together with the scan latency; the
// scalability experiment (Fig. 7) reports runtime shapes.
func (e *Engine) TimedCount(pred *query.Predicate) (float64, time.Duration) {
	start := time.Now()
	c := e.Count(pred)
	return c, time.Since(start)
}

// Group is one row of a group-by result.
type Group struct {
	// Values are the encoded values of the grouping attributes.
	Values []int
	// Count is the exact COUNT(*) of the group.
	Count float64
}

// GroupBy returns the exact COUNT(*) per combination of values of the
// grouping attributes among rows satisfying pred (pred may be nil). Groups
// are returned in descending count order with deterministic tie-breaking.
func (e *Engine) GroupBy(groupAttrs []int, pred *query.Predicate) []Group {
	counts := e.rel.GroupCounts(groupAttrs, pred)
	out := make([]Group, 0, len(counts))
	for key, c := range counts {
		out = append(out, Group{Values: key.Values(len(groupAttrs)), Count: float64(c)})
	}
	sortGroups(out)
	return out
}

// sortGroups orders groups descending by count, then lexicographically by
// values, for deterministic output.
func sortGroups(groups []Group) {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Count != groups[j].Count {
			return groups[i].Count > groups[j].Count
		}
		a, b := groups[i].Values, groups[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
