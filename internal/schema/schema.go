// Package schema models relational schemas with discrete, ordered active
// domains, as required by the EntropyDB MaxEnt summarization model
// (Sec. 3.1 of the paper). Continuous attributes are bucketized into
// equi-width bins; categorical attributes enumerate their labels.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Kind describes how an attribute's active domain was constructed.
type Kind int

const (
	// Categorical attributes enumerate an explicit, ordered label set.
	Categorical Kind = iota
	// Binned attributes bucketize a continuous range into equi-width bins.
	Binned
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Binned:
		return "binned"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute is a single column with a finite, ordered active domain.
// Domain values are addressed by their index in [0, Size()).
type Attribute struct {
	name   string
	kind   Kind
	labels []string // categorical labels, index-aligned
	lo, hi float64  // binned: overall value range [lo, hi)
	bins   int      // binned: number of equi-width buckets
	index  map[string]int
}

// NewCategorical creates a categorical attribute with the given ordered
// labels. Labels must be unique.
func NewCategorical(name string, labels []string) (Attribute, error) {
	if name == "" {
		return Attribute{}, fmt.Errorf("schema: attribute name must not be empty")
	}
	if len(labels) == 0 {
		return Attribute{}, fmt.Errorf("schema: attribute %q needs at least one label", name)
	}
	idx := make(map[string]int, len(labels))
	for i, l := range labels {
		if _, dup := idx[l]; dup {
			return Attribute{}, fmt.Errorf("schema: attribute %q has duplicate label %q", name, l)
		}
		idx[l] = i
	}
	return Attribute{
		name:   name,
		kind:   Categorical,
		labels: append([]string(nil), labels...),
		index:  idx,
	}, nil
}

// NewBinned creates a continuous attribute bucketized into bins equi-width
// buckets covering [lo, hi).
func NewBinned(name string, lo, hi float64, bins int) (Attribute, error) {
	if name == "" {
		return Attribute{}, fmt.Errorf("schema: attribute name must not be empty")
	}
	if bins <= 0 {
		return Attribute{}, fmt.Errorf("schema: attribute %q needs a positive bin count, got %d", name, bins)
	}
	if !(hi > lo) {
		return Attribute{}, fmt.Errorf("schema: attribute %q needs hi > lo, got [%g, %g)", name, lo, hi)
	}
	return Attribute{name: name, kind: Binned, lo: lo, hi: hi, bins: bins}, nil
}

// MustCategorical is like NewCategorical but panics on error. It is intended
// for statically-known schemas in tests and generators.
func MustCategorical(name string, labels []string) Attribute {
	a, err := NewCategorical(name, labels)
	if err != nil {
		panic(err)
	}
	return a
}

// MustBinned is like NewBinned but panics on error.
func MustBinned(name string, lo, hi float64, bins int) Attribute {
	a, err := NewBinned(name, lo, hi, bins)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the attribute name.
func (a Attribute) Name() string { return a.name }

// Kind returns how the active domain was constructed.
func (a Attribute) Kind() Kind { return a.kind }

// Size returns the number of distinct active-domain values N_i.
func (a Attribute) Size() int {
	if a.kind == Categorical {
		return len(a.labels)
	}
	return a.bins
}

// Bounds returns the [lo, hi) range of a binned attribute. For categorical
// attributes it returns (0, 0).
func (a Attribute) Bounds() (lo, hi float64) {
	if a.kind != Binned {
		return 0, 0
	}
	return a.lo, a.hi
}

// Label returns a human-readable label for domain value v.
func (a Attribute) Label(v int) string {
	if v < 0 || v >= a.Size() {
		return fmt.Sprintf("<out-of-domain %d>", v)
	}
	if a.kind == Categorical {
		return a.labels[v]
	}
	w := (a.hi - a.lo) / float64(a.bins)
	return fmt.Sprintf("[%g, %g)", a.lo+float64(v)*w, a.lo+float64(v+1)*w)
}

// EncodeLabel maps a categorical label to its domain index.
func (a Attribute) EncodeLabel(label string) (int, error) {
	if a.kind != Categorical {
		return 0, fmt.Errorf("schema: attribute %q is not categorical", a.name)
	}
	v, ok := a.index[label]
	if !ok {
		return 0, fmt.Errorf("schema: attribute %q has no label %q", a.name, label)
	}
	return v, nil
}

// Bin maps a raw continuous value to its equi-width bucket index, clamping
// values outside [lo, hi) to the first or last bucket.
func (a Attribute) Bin(x float64) (int, error) {
	if a.kind != Binned {
		return 0, fmt.Errorf("schema: attribute %q is not binned", a.name)
	}
	if x < a.lo {
		return 0, nil
	}
	if x >= a.hi {
		return a.bins - 1, nil
	}
	w := (a.hi - a.lo) / float64(a.bins)
	v := int((x - a.lo) / w)
	if v >= a.bins {
		v = a.bins - 1
	}
	return v, nil
}

// BinCenter returns the midpoint of bucket v of a binned attribute.
func (a Attribute) BinCenter(v int) float64 {
	if a.kind != Binned || v < 0 || v >= a.bins {
		return 0
	}
	w := (a.hi - a.lo) / float64(a.bins)
	return a.lo + (float64(v)+0.5)*w
}

// Schema is an ordered list of attributes describing a single relation
// R(A_1, ..., A_m).
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// New builds a schema from the given attributes. Attribute names must be
// unique.
func New(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: a schema needs at least one attribute")
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Size() <= 0 {
			return nil, fmt.Errorf("schema: attribute %d (%q) has an empty domain", i, a.Name())
		}
		if _, dup := byName[a.Name()]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute name %q", a.Name())
		}
		byName[a.Name()] = i
	}
	return &Schema{attrs: append([]Attribute(nil), attrs...), byName: byName}, nil
}

// MustNew is like New but panics on error.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns m, the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of all attributes in order.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("schema: no attribute named %q", name)
	}
	return i, nil
}

// MustIndex is like Index but panics when the attribute does not exist.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// DomainSizes returns [N_1, ..., N_m].
func (s *Schema) DomainSizes() []int {
	out := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Size()
	}
	return out
}

// TupleSpace returns d = Π N_i, the number of possible tuples, saturating at
// the maximum int64 when the product overflows.
func (s *Schema) TupleSpace() int64 {
	d := int64(1)
	for _, a := range s.attrs {
		n := int64(a.Size())
		if d > (1<<62)/n {
			return 1 << 62
		}
		d *= n
	}
	return d
}

// Project returns a new schema containing only the named attributes, in the
// given order, together with the index of each kept attribute in the
// original schema.
func (s *Schema) Project(names ...string) (*Schema, []int, error) {
	attrs := make([]Attribute, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, name := range names {
		i, err := s.Index(name)
		if err != nil {
			return nil, nil, err
		}
		attrs = append(attrs, s.attrs[i])
		idx = append(idx, i)
	}
	proj, err := New(attrs...)
	if err != nil {
		return nil, nil, err
	}
	return proj, idx, nil
}

// String renders the schema as "R(a:N1, b:N2, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = fmt.Sprintf("%s:%d", a.Name(), a.Size())
	}
	return "R(" + strings.Join(parts, ", ") + ")"
}

// SortedNames returns the attribute names in alphabetical order. It is a
// convenience for deterministic iteration in reports.
func (s *Schema) SortedNames() []string {
	names := make([]string, 0, len(s.attrs))
	for _, a := range s.attrs {
		names = append(names, a.Name())
	}
	sort.Strings(names)
	return names
}
