package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/summary"
)

// This file is the fleet-replication face of the store: snapshots travel
// between nodes as their verified on-disk frames, and a replica imports
// them AT THE SAME VERSION NUMBER the origin assigned. Version identity is
// what makes replication a pure pull-by-version problem (the OrpheusDB
// framing): "demo/maxent v7" names the same bits on every node, so
// convergence is checkable by comparing version sets and answers are
// bit-identical wherever v7 is served from.

// ReadFramed returns the complete framed bytes of one snapshot exactly as
// they sit on disk — header, checksum, payload — after verifying the
// frame, plus its manifest entry. version <= 0 selects the latest. It is
// the serving side of peer snapshot sync (GET /sync/snapshot): the frame
// is already integrity-protected, so peers transfer and verify it without
// re-encoding.
func (s *Store) ReadFramed(dataset string, version int) ([]byte, SnapshotInfo, error) {
	if err := validateKey(dataset); err != nil {
		return nil, SnapshotInfo{}, err
	}
	man, err := s.readManifest(dataset)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	var info SnapshotInfo
	found := false
	if version <= 0 {
		info, found = man.Latest()
	} else {
		for _, sn := range man.Snapshots {
			if sn.Version == version {
				info, found = sn, true
				break
			}
		}
	}
	if !found {
		return nil, SnapshotInfo{}, fmt.Errorf("store: dataset %q has no version %d: %w", dataset, version, ErrNotFound)
	}
	path := filepath.Join(s.datasetDir(dataset), snapshotFile(info.Version))
	framed, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, SnapshotInfo{}, fmt.Errorf("store: snapshot %q v%d: %w", dataset, info.Version, ErrNotFound)
		}
		return nil, SnapshotInfo{}, fmt.Errorf("store: snapshot %q v%d: %w", dataset, info.Version, err)
	}
	if _, err := verifyFramed(framed); err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("store: snapshot %q v%d: %w", dataset, info.Version, err)
	}
	return framed, info, nil
}

// verifyFramed checks a framed snapshot held in memory (magic, format
// version, length, CRC32-C) and returns its payload.
func verifyFramed(framed []byte) ([]byte, error) {
	if len(framed) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte frame is shorter than the %d-byte header", ErrCorrupt, len(framed), headerSize)
	}
	if string(framed[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, framed[:8])
	}
	if v := binary.LittleEndian.Uint16(framed[8:10]); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorrupt, v, formatVersion)
	}
	length := binary.LittleEndian.Uint64(framed[12:20])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds the %d-byte bound", ErrCorrupt, length, int64(maxPayload))
	}
	if uint64(len(framed)-headerSize) != length {
		return nil, fmt.Errorf("%w: %d payload bytes, header says %d", ErrCorrupt, len(framed)-headerSize, length)
	}
	payload := framed[headerSize:]
	want := binary.LittleEndian.Uint32(framed[20:24])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// ImportFramed stores a framed snapshot fetched from a peer under the
// dataset key at exactly the version the peer assigned, preserving
// fleet-wide version identity. The frame is fully verified (framing,
// checksum, decodable payload name) before anything touches disk.
// Importing a version that is already present is an idempotent no-op when
// the bytes carry the same checksum, and an error when they differ — two
// nodes disagreeing about what "v7" is must fail loudly, never silently
// shadow one another.
func (s *Store) ImportFramed(dataset string, version int, framed []byte) (SnapshotInfo, error) {
	if err := validateKey(dataset); err != nil {
		return SnapshotInfo{}, err
	}
	if version < 1 {
		return SnapshotInfo{}, fmt.Errorf("store: import of %q needs a version >= 1, got %d", dataset, version)
	}
	payload, err := verifyFramed(framed)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	name, err := summary.PeekName(bytes.NewReader(payload))
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w: %v", dataset, version, ErrCorrupt, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	dir := s.datasetDir(dataset)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: create %s: %w", dir, err)
	}
	info := SnapshotInfo{
		Dataset:   dataset,
		Version:   version,
		Estimator: name,
		Bytes:     int64(len(payload)),
		Checksum:  crc32.Checksum(payload, crcTable),
		CreatedAt: s.now().UTC(),
	}

	final := filepath.Join(dir, snapshotFile(version))
	if existing, err := os.ReadFile(final); err == nil {
		// The version already exists locally; same bits → idempotent no-op,
		// different bits → a split-brain version conflict.
		if have, err := verifyFramed(existing); err == nil && crc32.Checksum(have, crcTable) == info.Checksum {
			return info, s.mergeIntoManifest(dataset, []SnapshotInfo{info}, nil)
		}
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: version exists with different content", dataset, version)
	}

	tmp, err := os.CreateTemp(dir, ".snap.tmp-*")
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	if err := tmp.Close(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	// link(2) claims the exact version: it fails on an existing target, so a
	// concurrent local save or a racing second import can never be
	// clobbered. Losing the race to identical bytes is still success.
	if err := os.Link(tmpName, final); err != nil {
		if errors.Is(err, fs.ErrExist) {
			if existing, rerr := os.ReadFile(final); rerr == nil {
				if have, verr := verifyFramed(existing); verr == nil && crc32.Checksum(have, crcTable) == info.Checksum {
					return info, s.mergeIntoManifest(dataset, []SnapshotInfo{info}, nil)
				}
			}
			return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: version exists with different content", dataset, version)
		}
		return SnapshotInfo{}, fmt.Errorf("store: import %q v%d: %w", dataset, version, err)
	}
	if err := s.mergeIntoManifest(dataset, []SnapshotInfo{info}, nil); err != nil {
		return SnapshotInfo{}, err
	}
	return info, nil
}
