// Package store persists solved summaries as immutable, versioned
// snapshots on disk, following the bolt-on versioning approach of
// OrpheusDB: the expensive artifact — a converged MaxEnt model — is built
// once (by cmd/summarize or a serving build) and then restored on every
// cold start in time proportional to the summary size, never the relation
// size.
//
// Layout: one directory per dataset key (keys are slash-separated name
// segments, conventionally "<dataset>/<strategy>"), holding monotonically
// versioned snapshot files v000001.snap, v000002.snap, … plus a
// MANIFEST.json describing them. Every file is written to a temporary
// name and atomically renamed into place, so readers never observe a
// partial snapshot and a crashed writer leaves at most a *.tmp straggler.
//
// On-disk snapshot framing: an 8-byte magic, a format version, the
// payload length, and a CRC32-C checksum, followed by the payload
// produced by summary.EncodeEstimator. Load verifies all four before
// decoding, so truncated or corrupted files are rejected with descriptive
// errors instead of being decoded into a silently-wrong model.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/summary"
)

const (
	// magic identifies a snapshot file; the trailing byte doubles as a
	// framing-format version bump space ("1" today).
	magic = "EDBSNAP1"
	// formatVersion is the payload format version; bump it when the
	// summary codec changes incompatibly.
	formatVersion = 1
	// headerSize is magic (8) + version (2) + reserved (2) + payload
	// length (8) + CRC32-C (4).
	headerSize = 8 + 2 + 2 + 8 + 4
	// manifestName is the per-dataset manifest file.
	manifestName = "MANIFEST.json"
	// maxPayload bounds how large a payload Load will read (1 GiB), so a
	// corrupted length field cannot drive an absurd allocation.
	maxPayload = 1 << 30
)

// ErrCorrupt tags every integrity failure Load can report (bad magic,
// version mismatch, length mismatch, checksum mismatch, undecodable
// payload), so callers can distinguish damage from absence.
var ErrCorrupt = errors.New("snapshot corrupt")

// ErrNotFound is returned when a dataset or version does not exist.
var ErrNotFound = errors.New("snapshot not found")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// keySegment validates one path segment of a dataset key.
var keySegment = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

// SnapshotInfo describes one stored snapshot; it is both the manifest
// entry and the wire shape of the summaryd snapshot endpoints.
type SnapshotInfo struct {
	// Dataset is the key the snapshot is stored under, conventionally
	// "<dataset>/<strategy>".
	Dataset string `json:"dataset"`
	// Version is the monotonically increasing snapshot version, starting
	// at 1.
	Version int `json:"version"`
	// Estimator is the Name() of the stored estimator.
	Estimator string `json:"estimator"`
	// Bytes is the payload size (framing excluded).
	Bytes int64 `json:"bytes"`
	// Checksum is the CRC32-C of the payload.
	Checksum uint32 `json:"checksum"`
	// CreatedAt is the save wall-clock time (UTC).
	CreatedAt time.Time `json:"created_at"`
}

// Lineage names the snapshot a branched dataset was forked from: the
// parent dataset key and the parent version that is the branch's fork
// point. It is recorded in the branch's manifest so tooling can walk the
// version DAG, and so Prune on the parent treats the fork point as
// implicitly pinned (a branch whose origin snapshot is gone can no longer
// be diffed against, or re-forked from, where it diverged).
type Lineage struct {
	Dataset string `json:"dataset"`
	Version int    `json:"version"`
}

// Manifest lists the live snapshots of one dataset key, ascending by
// version. Parent, when set, records the branch lineage (see Lineage).
type Manifest struct {
	Dataset   string         `json:"dataset"`
	Parent    *Lineage       `json:"parent,omitempty"`
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// Latest returns the newest snapshot of the manifest.
func (m Manifest) Latest() (SnapshotInfo, bool) {
	if len(m.Snapshots) == 0 {
		return SnapshotInfo{}, false
	}
	return m.Snapshots[len(m.Snapshots)-1], true
}

// Store is a directory-backed snapshot store. Saves within one process
// are serialized by an internal mutex; loads are lock-free and may run
// concurrently with saves, because completed snapshot files are immutable
// and both snapshots and manifests become visible only through atomic
// renames.
//
// Across processes (a batch cmd/summarize writing the directory a live
// summaryd serves from), safety rests on the filesystem: a version is
// claimed by link(2)ing the finished temp file to its final name, which
// fails on an existing target — so a snapshot file, once saved, can never
// be clobbered and version numbers are never handed out twice. Manifest
// rewrites merge the on-disk manifest and the directory listing first, so
// an entry a concurrent writer published is folded in rather than
// dropped; an interleaving that still loses a manifest entry leaves the
// snapshot file intact and the entry is healed back in by the next save
// or prune.
type Store struct {
	dir string
	mu  sync.Mutex
	now func() time.Time // injectable for tests
	// pins refcounts the snapshot versions currently referenced by live
	// serving code (dataset key → version → refcount); Prune never removes
	// a pinned version.
	pins map[string]map[int]int
}

// Open validates dir as a snapshot store root: it creates the directory
// if missing and probes writability up front (create-and-remove of a
// temporary file), so a misconfigured path fails at startup rather than
// at the first save hours later.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: directory %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	if err := os.Remove(name); err != nil {
		return nil, fmt.Errorf("store: cleaning writability probe: %w", err)
	}
	return &Store{dir: dir, now: time.Now, pins: make(map[string]map[int]int)}, nil
}

// Pin marks one snapshot version as referenced by a live serving process
// (a registry entry answering queries from it): Prune will never remove a
// pinned version, no matter how old it is. Pins are refcounted — Pin
// twice, Unpin twice — and in-memory only: they protect the serving
// process that holds them, not other processes sharing the directory.
func (s *Store) Pin(dataset string, version int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.pins[dataset]
	if m == nil {
		m = make(map[int]int)
		s.pins[dataset] = m
	}
	m[version]++
}

// Unpin releases one Pin reference. Unpinning a version that is not
// pinned is a no-op.
func (s *Store) Unpin(dataset string, version int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.pins[dataset]
	if m == nil {
		return
	}
	if m[version] > 1 {
		m[version]--
		return
	}
	delete(m, version)
	if len(m) == 0 {
		delete(s.pins, dataset)
	}
}

// Pinned returns the currently pinned versions of the dataset key,
// ascending.
func (s *Store) Pinned(dataset string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.pins[dataset]
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validateKey checks a dataset key: slash-separated segments of
// [a-zA-Z0-9._-] starting with an alphanumeric, so keys map onto
// directory paths without traversal or hidden-file surprises.
func validateKey(dataset string) error {
	if dataset == "" {
		return errors.New("store: dataset key must not be empty")
	}
	for _, seg := range strings.Split(dataset, "/") {
		if !keySegment.MatchString(seg) {
			return fmt.Errorf("store: invalid dataset key %q (segment %q; want [a-zA-Z0-9._-]+ starting alphanumeric)", dataset, seg)
		}
	}
	return nil
}

func (s *Store) datasetDir(dataset string) string {
	return filepath.Join(append([]string{s.dir}, strings.Split(dataset, "/")...)...)
}

func snapshotFile(version int) string { return fmt.Sprintf("v%06d.snap", version) }

// Save encodes the estimator and writes it as the next version of the
// dataset key, atomically, then folds it into the manifest. Only solved
// summaries are snapshot-able; see summary.EncodeEstimator.
func (s *Store) Save(dataset string, est core.Estimator) (SnapshotInfo, error) {
	if err := validateKey(dataset); err != nil {
		return SnapshotInfo{}, err
	}
	var payload bytes.Buffer
	if err := summary.EncodeEstimator(&payload, est); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: encode %q: %w", dataset, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	dir := s.datasetDir(dataset)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SnapshotInfo{}, fmt.Errorf("store: create %s: %w", dir, err)
	}

	info := SnapshotInfo{
		Dataset:   dataset,
		Estimator: est.Name(),
		Bytes:     int64(payload.Len()),
		Checksum:  crc32.Checksum(payload.Bytes(), crcTable),
		CreatedAt: s.now().UTC(),
	}
	var framed bytes.Buffer
	framed.Grow(headerSize + payload.Len())
	framed.WriteString(magic)
	var hdr [16]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	// hdr[2:4] reserved, zero.
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[12:16], info.Checksum)
	framed.Write(hdr[:])
	framed.Write(payload.Bytes())

	version, err := s.claimVersion(dataset, framed.Bytes())
	if err != nil {
		return SnapshotInfo{}, err
	}
	info.Version = version
	if err := s.mergeIntoManifest(dataset, []SnapshotInfo{info}, nil); err != nil {
		return SnapshotInfo{}, err
	}
	return info, nil
}

// claimVersion writes the framed snapshot to a temp file and claims the
// next free version number by hard-linking it into place: link(2) fails
// on an existing target, so even a concurrent saver in another process
// can neither clobber this snapshot nor receive the same version — the
// loser of the race simply retries with the next number.
func (s *Store) claimVersion(dataset string, framed []byte) (int, error) {
	dir := s.datasetDir(dataset)
	tmp, err := os.CreateTemp(dir, ".snap.tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: write snapshot %q: %w", dataset, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: write snapshot %q: %w", dataset, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("store: write snapshot %q: %w", dataset, err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("store: write snapshot %q: %w", dataset, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return 0, fmt.Errorf("store: write snapshot %q: %w", dataset, err)
	}

	version := s.nextVersion(dataset)
	for attempt := 0; attempt < 1000; attempt, version = attempt+1, version+1 {
		err := os.Link(tmpName, filepath.Join(dir, snapshotFile(version)))
		if err == nil {
			return version, nil
		}
		if errors.Is(err, fs.ErrExist) {
			continue // lost the race for this number; try the next
		}
		return 0, fmt.Errorf("store: claim snapshot %q v%d: %w", dataset, version, err)
	}
	return 0, fmt.Errorf("store: could not claim a version for %q after 1000 attempts", dataset)
}

// nextVersion returns one past the highest version visible in either the
// manifest or the directory itself, so a stale manifest (e.g. one a
// concurrent writer has not merged yet) can never cause a version to be
// reused.
func (s *Store) nextVersion(dataset string) int {
	max := 0
	if man, err := s.readManifest(dataset); err == nil || errors.Is(err, ErrNotFound) {
		if last, ok := man.Latest(); ok {
			max = last.Version
		}
	}
	for _, v := range s.diskVersions(dataset) {
		if v > max {
			max = v
		}
	}
	return max + 1
}

// diskVersions lists the snapshot versions physically present in the
// dataset directory, ascending.
func (s *Store) diskVersions(dataset string) []int {
	entries, err := os.ReadDir(s.datasetDir(dataset))
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		var v int
		if _, err := fmt.Sscanf(e.Name(), "v%06d.snap", &v); err == nil && snapshotFile(v) == e.Name() {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Load reads and verifies one snapshot and reconstructs its estimator.
// version <= 0 selects the latest. The returned estimator is query-ready;
// no solver work happens on this path, so load time is proportional to
// the summary size, independent of the summarized relation.
func (s *Store) Load(dataset string, version int) (core.Estimator, SnapshotInfo, error) {
	if err := validateKey(dataset); err != nil {
		return nil, SnapshotInfo{}, err
	}
	man, err := s.readManifest(dataset)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	var info SnapshotInfo
	if version <= 0 {
		last, ok := man.Latest()
		if !ok {
			return nil, SnapshotInfo{}, fmt.Errorf("store: dataset %q has no snapshots: %w", dataset, ErrNotFound)
		}
		info = last
	} else {
		found := false
		for _, sn := range man.Snapshots {
			if sn.Version == version {
				info, found = sn, true
				break
			}
		}
		if !found {
			return nil, SnapshotInfo{}, fmt.Errorf("store: dataset %q has no version %d: %w", dataset, version, ErrNotFound)
		}
	}

	path := filepath.Join(s.datasetDir(dataset), snapshotFile(info.Version))
	payload, err := readFramed(path)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("store: snapshot %q v%d: %w", dataset, info.Version, err)
	}
	est, err := summary.DecodeEstimator(bytes.NewReader(payload))
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("store: snapshot %q v%d: %w: %v", dataset, info.Version, ErrCorrupt, err)
	}
	return est, info, nil
}

// readFramed reads a snapshot file and returns its verified payload.
func readFramed(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %v", ErrNotFound, err)
		}
		return nil, err
	}
	defer f.Close()

	var head [headerSize]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("%w: header truncated (%v)", ErrCorrupt, err)
	}
	if string(head[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:8])
	}
	if v := binary.LittleEndian.Uint16(head[8:10]); v != formatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorrupt, v, formatVersion)
	}
	length := binary.LittleEndian.Uint64(head[12:20])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds the %d-byte bound", ErrCorrupt, length, int64(maxPayload))
	}
	want := binary.LittleEndian.Uint32(head[20:24])
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("%w: payload truncated (%v)", ErrCorrupt, err)
	}
	// Trailing bytes mean the length field and the file disagree.
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: %d-byte payload followed by trailing garbage", ErrCorrupt, length)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, header says %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// Versions returns the manifest of one dataset key.
func (s *Store) Versions(dataset string) (Manifest, error) {
	if err := validateKey(dataset); err != nil {
		return Manifest{}, err
	}
	return s.readManifest(dataset)
}

// SetParent records branch lineage in the dataset's manifest: the parent
// snapshot the dataset was forked from. The parent snapshot must exist,
// and the dataset must already have a manifest (fork first, then record
// parentage). Lineage is immutable once set — re-parenting a branch would
// silently rewrite history, so SetParent refuses to overwrite a different
// existing parent.
func (s *Store) SetParent(dataset string, parent Lineage) error {
	if err := validateKey(dataset); err != nil {
		return err
	}
	if err := validateKey(parent.Dataset); err != nil {
		return err
	}
	if dataset == parent.Dataset {
		return fmt.Errorf("store: dataset %q cannot be its own lineage parent", dataset)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pman, err := s.readManifest(parent.Dataset)
	if err != nil {
		return err
	}
	found := false
	for _, sn := range pman.Snapshots {
		if sn.Version == parent.Version {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("store: lineage parent %q has no version %d: %w", parent.Dataset, parent.Version, ErrNotFound)
	}
	man, err := s.readManifest(dataset)
	if err != nil {
		return err
	}
	if man.Parent != nil && *man.Parent != parent {
		return fmt.Errorf("store: dataset %q already has lineage parent %s v%d", dataset, man.Parent.Dataset, man.Parent.Version)
	}
	man.Parent = &parent
	return s.writeManifest(dataset, man)
}

// List walks the store and returns every dataset manifest, sorted by
// dataset key.
func (s *Store) List() ([]Manifest, error) {
	var out []Manifest
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || d.Name() != manifestName {
			return nil
		}
		rel, err := filepath.Rel(s.dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		man, err := s.readManifest(filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		out = append(out, man)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out, nil
}

// Prune deletes all but the newest keep snapshots of the dataset key and
// returns the removed entries. keep must be at least 1 — pruning to
// nothing is deleting a dataset, which Prune refuses to do implicitly.
// Versions pinned by a live serving process (see Pin) are never removed,
// even when they fall outside the newest keep: pruning the snapshot a
// registry entry is currently serving would leave a restart with nothing
// to restore that entry from. Versions recorded as another dataset's
// lineage parent (see SetParent) are implicitly pinned for the same
// reason: removing a branch's fork point would orphan the branch's
// history.
func (s *Store) Prune(dataset string, keep int) ([]SnapshotInfo, error) {
	if err := validateKey(dataset); err != nil {
		return nil, err
	}
	if keep < 1 {
		return nil, fmt.Errorf("store: prune must keep at least 1 snapshot, got %d", keep)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	man, err := s.readManifest(dataset)
	if err != nil {
		return nil, err
	}
	if len(man.Snapshots) <= keep {
		return nil, nil
	}
	forks, err := s.forkPoints(dataset)
	if err != nil {
		return nil, err
	}
	cut := len(man.Snapshots) - keep
	var removed []SnapshotInfo
	drop := make(map[int]bool, cut)
	pinned := s.pins[dataset]
	for _, sn := range man.Snapshots[:cut] {
		if pinned[sn.Version] > 0 || forks[sn.Version] {
			continue
		}
		removed = append(removed, sn)
		drop[sn.Version] = true
	}
	if len(removed) == 0 {
		return nil, nil
	}
	// Publish the shrunken manifest first: a reader that raced the file
	// removal would otherwise pick a version from the manifest and find
	// its file gone.
	if err := s.mergeIntoManifest(dataset, nil, drop); err != nil {
		return nil, err
	}
	dir := s.datasetDir(dataset)
	for _, sn := range removed {
		if err := os.Remove(filepath.Join(dir, snapshotFile(sn.Version))); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return removed, fmt.Errorf("store: prune %q v%d: %w", dataset, sn.Version, err)
		}
	}
	return removed, nil
}

// forkPoints walks every manifest in the store and returns the versions
// of dataset that some other dataset records as its lineage parent. Prune
// treats these as implicitly pinned. Callers hold s.mu.
func (s *Store) forkPoints(dataset string) (map[int]bool, error) {
	out := make(map[int]bool)
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || d.Name() != manifestName {
			return nil
		}
		rel, err := filepath.Rel(s.dir, filepath.Dir(path))
		if err != nil {
			return err
		}
		child := filepath.ToSlash(rel)
		if child == dataset {
			return nil
		}
		man, err := s.readManifest(child)
		if err != nil {
			// A damaged sibling manifest must not unblock pruning a fork
			// point it might have recorded — fail closed.
			return err
		}
		if man.Parent != nil && man.Parent.Dataset == dataset {
			out[man.Parent.Version] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning lineage before prune: %w", err)
	}
	return out, nil
}

// --- manifest ---------------------------------------------------------

// mergeIntoManifest rewrites the dataset manifest as the union of what is
// on disk (manifest ∪ directory ∪ add, minus drop): entries published by
// concurrent writers are folded in instead of overwritten, and snapshot
// files missing from the manifest (a lost interleaving) are healed back
// in with entries synthesized from their verified frames. Callers hold
// s.mu.
func (s *Store) mergeIntoManifest(dataset string, add []SnapshotInfo, drop map[int]bool) error {
	man, err := s.readManifest(dataset)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	man.Dataset = dataset
	byVersion := make(map[int]SnapshotInfo, len(man.Snapshots)+len(add))
	for _, sn := range man.Snapshots {
		byVersion[sn.Version] = sn
	}
	for _, sn := range add {
		byVersion[sn.Version] = sn
	}
	for _, v := range s.diskVersions(dataset) {
		if _, ok := byVersion[v]; ok {
			continue
		}
		if sn, err := s.statSnapshot(dataset, v); err == nil {
			byVersion[v] = sn
		}
		// A file that fails verification stays out of the manifest; Load
		// would reject it anyway.
	}
	man.Snapshots = man.Snapshots[:0]
	for v, sn := range byVersion {
		if drop[v] {
			continue
		}
		man.Snapshots = append(man.Snapshots, sn)
	}
	sort.Slice(man.Snapshots, func(i, j int) bool { return man.Snapshots[i].Version < man.Snapshots[j].Version })
	return s.writeManifest(dataset, man)
}

// statSnapshot synthesizes a manifest entry for a snapshot file the
// manifest does not know about, from its verified frame and payload
// prefix.
func (s *Store) statSnapshot(dataset string, version int) (SnapshotInfo, error) {
	path := filepath.Join(s.datasetDir(dataset), snapshotFile(version))
	payload, err := readFramed(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	name, err := summary.PeekName(bytes.NewReader(payload))
	if err != nil {
		return SnapshotInfo{}, err
	}
	created := time.Time{}
	if fi, err := os.Stat(path); err == nil {
		created = fi.ModTime().UTC()
	}
	return SnapshotInfo{
		Dataset:   dataset,
		Version:   version,
		Estimator: name,
		Bytes:     int64(len(payload)),
		Checksum:  crc32.Checksum(payload, crcTable),
		CreatedAt: created,
	}, nil
}

func (s *Store) readManifest(dataset string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.datasetDir(dataset), manifestName))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Manifest{Dataset: dataset}, fmt.Errorf("store: dataset %q: %w", dataset, ErrNotFound)
		}
		return Manifest{}, fmt.Errorf("store: manifest of %q: %w", dataset, err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return Manifest{}, fmt.Errorf("store: manifest of %q: %w: %v", dataset, ErrCorrupt, err)
	}
	sort.Slice(man.Snapshots, func(i, j int) bool { return man.Snapshots[i].Version < man.Snapshots[j].Version })
	return man, nil
}

func (s *Store) writeManifest(dataset string, man Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest of %q: %w", dataset, err)
	}
	if err := atomicWrite(filepath.Join(s.datasetDir(dataset), manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("store: manifest of %q: %w", dataset, err)
	}
	return nil
}

// atomicWrite writes data to a temporary file in the target's directory,
// fsyncs it, and renames it into place, so the target path only ever
// holds a complete file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	// CreateTemp defaults to 0600; snapshots are shared, read-only
	// artifacts.
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
