package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// savedVersions saves count snapshots of one summary under the key and
// returns their versions in save order.
func savedVersions(t *testing.T, st *Store, key string, count int) []int {
	t.Helper()
	sum := buildTestSummary(t, 500, 1)
	versions := make([]int, count)
	for i := range versions {
		info, err := st.Save(key, sum)
		if err != nil {
			t.Fatal(err)
		}
		versions[i] = info.Version
	}
	return versions
}

// TestPruneNeverRemovesPinnedVersion is the serving-safety regression
// test: the version a live registry entry references (pinned) must
// survive a prune that would otherwise remove it.
func TestPruneNeverRemovesPinnedVersion(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "demo/maxent"
	vs := savedVersions(t, st, key, 3) // v1, v2, v3

	// A live registry entry is serving v2.
	st.Pin(key, vs[1])

	removed, err := st.Prune(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].Version != vs[0] {
		t.Fatalf("prune removed %v, want only v%d", removed, vs[0])
	}

	// v2 (pinned) and v3 (newest) must still load; v1 must be gone.
	if _, _, err := st.Load(key, vs[1]); err != nil {
		t.Fatalf("pinned version v%d was pruned: %v", vs[1], err)
	}
	if _, _, err := st.Load(key, vs[2]); err != nil {
		t.Fatalf("newest version v%d missing after prune: %v", vs[2], err)
	}
	if _, _, err := st.Load(key, vs[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("v%d should be pruned, got err=%v", vs[0], err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), key, snapshotFile(vs[1]))); err != nil {
		t.Fatalf("pinned snapshot file missing: %v", err)
	}

	// After the entry moves on (unpin), the old version becomes prunable.
	st.Unpin(key, vs[1])
	removed, err = st.Prune(key, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].Version != vs[1] {
		t.Fatalf("post-unpin prune removed %v, want v%d", removed, vs[1])
	}
}

func TestPinRefcounting(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "demo/maxent"
	vs := savedVersions(t, st, key, 2)

	st.Pin(key, vs[0])
	st.Pin(key, vs[0])
	st.Unpin(key, vs[0])
	if got := st.Pinned(key); len(got) != 1 || got[0] != vs[0] {
		t.Fatalf("Pinned = %v, want [%d] (refcount must survive one unpin)", got, vs[0])
	}
	if _, err := st.Prune(key, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(key, vs[0]); err != nil {
		t.Fatalf("doubly-pinned version pruned after single unpin: %v", err)
	}
	st.Unpin(key, vs[0])
	if got := st.Pinned(key); len(got) != 0 {
		t.Fatalf("Pinned = %v after final unpin, want empty", got)
	}
	// Unpinning something never pinned is a harmless no-op.
	st.Unpin(key, 999)
	st.Unpin("nonexistent/key", 1)
}
