package store_test

import (
	"fmt"
	"os"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/summary"
)

// Example shows the snapshot lifecycle: build a summary once, save it as
// an immutable versioned snapshot, and restore a query-ready estimator in
// a (conceptually) different process — no relation, no solver, answers
// bit-identical to the original.
func Example() {
	dir, err := os.MkdirTemp("", "snapshots-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// Build once, from data.
	sch := schema.MustNew(
		schema.MustCategorical("color", []string{"red", "green", "blue"}),
		schema.MustCategorical("size", []string{"S", "M", "L"}),
	)
	rel := relation.New(sch)
	for i := 0; i < 90; i++ {
		rel.MustAppend([]int{i % 3, (i / 3) % 3})
	}
	sum, err := summary.Build(rel, summary.Options{PairBudget: -1})
	if err != nil {
		panic(err)
	}

	// Persist: versions are monotonic, writes are atomic.
	st, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	info, err := st.Save("demo/maxent", sum)
	if err != nil {
		panic(err)
	}
	fmt.Printf("saved v%d (%d bytes)\n", info.Version, info.Bytes)

	// Restore (the cold-start path): O(summary bytes), no re-solve.
	est, _, err := st.Load("demo/maxent", 0)
	if err != nil {
		panic(err)
	}
	pred := query.NewPredicate(2).WhereEq(0, 0)
	orig, _ := sum.EstimateCount(pred)
	restored, _ := est.EstimateCount(pred)
	fmt.Printf("bit-identical answers: %v\n", orig == restored)
	// Output:
	// saved v1 (188 bytes)
	// bit-identical answers: true
}
