package store_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiment"
	"repro/internal/store"
	"repro/internal/summary"
)

// BenchmarkColdStart compares the two ways a serving process can obtain a
// query-ready estimator: rebuilding the full stats→polynomial→solver
// pipeline from the relation, versus restoring a snapshot. Rebuild cost
// grows with the relation; restore cost is O(summary bytes) and stays
// flat — the property the snapshot store exists for (and the BENCH.md
// cold-start table records).
func BenchmarkColdStart(b *testing.B) {
	for _, rows := range []int{20_000, 200_000, 1_000_000} {
		rel := experiment.SyntheticRelation(rows, rand.New(rand.NewSource(1)))

		b.Run(fmt.Sprintf("rebuild/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := summary.Build(rel, summary.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})

		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		sum, err := summary.Build(rel, summary.Options{})
		if err != nil {
			b.Fatal(err)
		}
		info, err := st.Save("bench/maxent", sum)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("restore/rows=%d", rows), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(info.Bytes)
			for i := 0; i < b.N; i++ {
				if _, _, err := st.Load("bench/maxent", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
