package store

import (
	"errors"
	"math"
	"testing"
)

// TestReadFramedRoundTrip proves the peer-transfer cycle preserves both
// version identity and answers: a frame read from one store and imported
// into another lands at the same version number and decodes into an
// estimator answering bit-identically.
func TestReadFramedRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 800, 1)
	// Two versions so the transferred one is not just "latest".
	if _, err := src.Save("demo/maxent", sum); err != nil {
		t.Fatal(err)
	}
	info2, err := src.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}

	framed, info, err := src.ReadFramed("demo/maxent", info2.Version)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != info2.Version || info.Checksum != info2.Checksum {
		t.Fatalf("ReadFramed info %+v, want version %d checksum %08x", info, info2.Version, info2.Checksum)
	}

	imported, err := dst.ImportFramed("demo/maxent", info.Version, framed)
	if err != nil {
		t.Fatal(err)
	}
	if imported.Version != info.Version {
		t.Fatalf("imported at v%d, want v%d (version identity must survive transfer)", imported.Version, info.Version)
	}
	est, loadInfo, err := dst.Load("demo/maxent", info.Version)
	if err != nil {
		t.Fatal(err)
	}
	if loadInfo.Checksum != info.Checksum {
		t.Fatalf("checksum %08x after import, want %08x", loadInfo.Checksum, info.Checksum)
	}
	want, _ := sum.EstimateCount(nil)
	got, _ := est.EstimateCount(nil)
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("imported estimator answers %v, origin answers %v", got, want)
	}
}

// TestReadFramedLatestAndMissing covers the version<=0 (latest) selector
// and the not-found paths.
func TestReadFramedLatestAndMissing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.ReadFramed("demo/maxent", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadFramed on an empty store: %v, want ErrNotFound", err)
	}
	sum := buildTestSummary(t, 800, 2)
	if _, err := st.Save("demo/maxent", sum); err != nil {
		t.Fatal(err)
	}
	info2, err := st.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	_, latest, err := st.ReadFramed("demo/maxent", 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != info2.Version {
		t.Fatalf("latest ReadFramed picked v%d, want v%d", latest.Version, info2.Version)
	}
	if _, _, err := st.ReadFramed("demo/maxent", 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadFramed v99: %v, want ErrNotFound", err)
	}
}

// TestImportFramedRejectsDamage proves a tampered or truncated frame never
// reaches disk.
func TestImportFramedRejectsDamage(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	sum := buildTestSummary(t, 800, 3)
	info, err := src.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	framed, _, err := src.ReadFramed("demo/maxent", info.Version)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), framed...)
	flipped[len(flipped)-1] ^= 0xFF
	if _, err := dst.ImportFramed("demo/maxent", 1, flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("import of a bit-flipped frame: %v, want ErrCorrupt", err)
	}
	if _, err := dst.ImportFramed("demo/maxent", 1, framed[:len(framed)/2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("import of a truncated frame: %v, want ErrCorrupt", err)
	}
	if _, err := dst.ImportFramed("demo/maxent", 0, framed); err == nil {
		t.Fatal("import accepted version 0")
	}
	if _, err := dst.ImportFramed("../escape", 1, framed); err == nil {
		t.Fatal("import accepted a traversal key")
	}
	if _, _, err := dst.Load("demo/maxent", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("damaged imports left state behind: %v", err)
	}
}

// TestImportFramedIdempotentAndConflicting re-imports the same version
// twice (no-op) and then a different frame at the same version (loud
// failure — split-brain must never be silent).
func TestImportFramedIdempotentAndConflicting(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	sumA := buildTestSummary(t, 800, 4)
	sumB := buildTestSummary(t, 800, 5)
	infoA, err := src.Save("demo/maxent", sumA)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := src.Save("demo/maxent", sumB)
	if err != nil {
		t.Fatal(err)
	}
	frameA, _, err := src.ReadFramed("demo/maxent", infoA.Version)
	if err != nil {
		t.Fatal(err)
	}
	frameB, _, err := src.ReadFramed("demo/maxent", infoB.Version)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := dst.ImportFramed("demo/maxent", 1, frameA); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportFramed("demo/maxent", 1, frameA); err != nil {
		t.Fatalf("re-import of identical bytes must be a no-op, got %v", err)
	}
	if _, err := dst.ImportFramed("demo/maxent", 1, frameB); err == nil {
		t.Fatal("import silently replaced v1 with different content")
	}
	man, err := dst.Versions("demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Snapshots) != 1 || man.Snapshots[0].Version != 1 {
		t.Fatalf("manifest %+v after conflicting imports, want exactly v1", man.Snapshots)
	}
}

// TestImportThenLocalSaveVersioning proves imported versions and local
// saves share one version sequence: a save after importing v3 claims v4,
// never a duplicate.
func TestImportThenLocalSaveVersioning(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	sum := buildTestSummary(t, 800, 6)
	for i := 0; i < 3; i++ {
		if _, err := src.Save("demo/maxent", sum); err != nil {
			t.Fatal(err)
		}
	}
	frame, info, err := src.ReadFramed("demo/maxent", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ImportFramed("demo/maxent", info.Version, frame); err != nil {
		t.Fatal(err)
	}
	saved, err := dst.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Version != 4 {
		t.Fatalf("local save after importing v3 claimed v%d, want v4", saved.Version)
	}
}
