package store

import (
	"errors"
	"testing"
)

// TestSetParentRecordsLineage checks that SetParent writes the lineage
// into the branch's manifest, that it survives later manifest rewrites
// (saves and prunes both rewrite the manifest), and that the guards —
// missing parent version, self-parenting, re-parenting — all reject.
func TestSetParentRecordsLineage(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const parent, branch = "base/maxent", "fork/maxent"
	pv := savedVersions(t, st, parent, 2)
	savedVersions(t, st, branch, 1)

	if err := st.SetParent(branch, Lineage{Dataset: parent, Version: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetParent with missing parent version: err=%v, want ErrNotFound", err)
	}
	if err := st.SetParent(branch, Lineage{Dataset: branch, Version: 1}); err == nil {
		t.Fatal("SetParent allowed a dataset to be its own parent")
	}

	want := Lineage{Dataset: parent, Version: pv[1]}
	if err := st.SetParent(branch, want); err != nil {
		t.Fatal(err)
	}
	man, err := st.Versions(branch)
	if err != nil {
		t.Fatal(err)
	}
	if man.Parent == nil || *man.Parent != want {
		t.Fatalf("manifest parent = %v, want %v", man.Parent, want)
	}

	// Setting the identical parent again is idempotent; a different one
	// is history rewriting and must fail.
	if err := st.SetParent(branch, want); err != nil {
		t.Fatalf("idempotent SetParent failed: %v", err)
	}
	if err := st.SetParent(branch, Lineage{Dataset: parent, Version: pv[0]}); err == nil {
		t.Fatal("SetParent overwrote an existing different parent")
	}

	// Lineage must survive a manifest rewrite driven by a new save.
	savedVersions(t, st, branch, 1)
	man, err = st.Versions(branch)
	if err != nil {
		t.Fatal(err)
	}
	if man.Parent == nil || *man.Parent != want {
		t.Fatalf("manifest parent after save = %v, want %v", man.Parent, want)
	}
}

// TestPruneNeverRemovesForkPoint is the branch-safety regression test:
// a version recorded as another dataset's lineage parent is implicitly
// pinned, so pruning the parent dataset must keep the fork point even
// when it falls outside the newest keep.
func TestPruneNeverRemovesForkPoint(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const parent, branch = "base/maxent", "fork/maxent"
	pv := savedVersions(t, st, parent, 4) // v1..v4
	savedVersions(t, st, branch, 1)
	fork := Lineage{Dataset: parent, Version: pv[1]} // forked at v2
	if err := st.SetParent(branch, fork); err != nil {
		t.Fatal(err)
	}

	removed, err := st.Prune(parent, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, sn := range removed {
		got[sn.Version] = true
	}
	if !got[pv[0]] || !got[pv[2]] || len(removed) != 2 {
		t.Fatalf("prune removed %v, want exactly v%d and v%d", removed, pv[0], pv[2])
	}
	if _, _, err := st.Load(parent, fork.Version); err != nil {
		t.Fatalf("fork point v%d was pruned: %v", fork.Version, err)
	}
	if _, _, err := st.Load(parent, pv[3]); err != nil {
		t.Fatalf("newest version v%d missing after prune: %v", pv[3], err)
	}
}
