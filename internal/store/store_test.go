package store

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/summary"
)

// buildTestSummary builds a small solved summary over a correlated
// relation.
func buildTestSummary(t testing.TB, rows int, seed int64) *summary.Summary {
	t.Helper()
	sch := schema.MustNew(
		schema.MustCategorical("region", []string{"NA", "EU", "APAC", "LATAM"}),
		schema.MustCategorical("product", []string{"a", "b", "c", "d", "e", "f"}),
		schema.MustBinned("amount", 0, 100, 8),
	)
	rng := rand.New(rand.NewSource(seed))
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		region := rng.Intn(4)
		product := (region + rng.Intn(2)) % 6
		bin, err := sch.Attr(2).Bin(rng.Float64() * 100)
		if err != nil {
			t.Fatal(err)
		}
		rel.MustAppend([]int{region, product, bin})
	}
	sum, err := summary.Build(rel, summary.Options{Solver: solver.Options{MaxSweeps: 30}})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestOpenCreatesAndProbes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "snapshots")
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on a missing directory: %v", err)
	}
	if st.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", st.Dir(), dir)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Errorf("directory was not created: %v", err)
	}

	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
	// A read-only root must fail the writability probe up front.
	ro := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Geteuid() != 0 { // root ignores permission bits
		if _, err := Open(ro); err == nil {
			t.Error("Open on a read-only directory succeeded")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 2000, 1)

	info, err := st.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Dataset != "demo/maxent" || info.Estimator != sum.Name() {
		t.Fatalf("unexpected info %+v", info)
	}

	est, got, err := st.Load("demo/maxent", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Errorf("Load info %+v != Save info %+v", got, info)
	}
	pred := query.NewPredicate(3).WhereEq(0, 2).WhereRange(2, 1, 5)
	want, _ := sum.EstimateCount(pred)
	have, err := est.EstimateCount(pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want) != math.Float64bits(have) {
		t.Errorf("loaded estimate %v, want bit-identical %v", have, want)
	}
}

func TestVersionsAreMonotonic(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 1000, 2)
	for want := 1; want <= 3; want++ {
		info, err := st.Save("demo/maxent", sum)
		if err != nil {
			t.Fatal(err)
		}
		if info.Version != want {
			t.Fatalf("save %d allocated version %d", want, info.Version)
		}
	}
	man, err := st.Versions("demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Snapshots) != 3 {
		t.Fatalf("manifest lists %d snapshots, want 3", len(man.Snapshots))
	}
	// Loading an explicit older version works; a missing one is ErrNotFound.
	if _, info, err := st.Load("demo/maxent", 2); err != nil || info.Version != 2 {
		t.Errorf("Load v2: info %+v, err %v", info, err)
	}
	if _, _, err := st.Load("demo/maxent", 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("Load v9 error = %v, want ErrNotFound", err)
	}
	if _, _, err := st.Load("nosuch", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Load of unknown dataset error = %v, want ErrNotFound", err)
	}
}

func TestListAndPrune(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 1000, 3)
	for i := 0; i < 4; i++ {
		if _, err := st.Save("a/maxent", sum); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Save("b/maxent", sum); err != nil {
		t.Fatal(err)
	}

	mans, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 2 || mans[0].Dataset != "a/maxent" || mans[1].Dataset != "b/maxent" {
		t.Fatalf("List: %+v", mans)
	}

	removed, err := st.Prune("a/maxent", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0].Version != 1 || removed[1].Version != 2 {
		t.Fatalf("Prune removed %+v", removed)
	}
	man, err := st.Versions("a/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Snapshots) != 2 || man.Snapshots[0].Version != 3 {
		t.Fatalf("after prune: %+v", man.Snapshots)
	}
	// The pruned files are gone; the survivors still load.
	if _, _, err := st.Load("a/maxent", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("pruned version still loads (err=%v)", err)
	}
	if _, _, err := st.Load("a/maxent", 4); err != nil {
		t.Errorf("surviving version fails to load: %v", err)
	}
	// Versions keep climbing after a prune; they are never reused.
	info, err := st.Save("a/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 5 {
		t.Errorf("post-prune save allocated version %d, want 5", info.Version)
	}
	if _, err := st.Prune("a/maxent", 0); err == nil {
		t.Error("Prune(keep=0) succeeded; it must refuse to empty a dataset")
	}
}

func TestRejectsCorruptedSnapshots(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 1000, 4)
	info, err := st.Save("demo/maxent", sum)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(st.Dir(), "demo", "maxent", snapshotFile(info.Version))
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:headerSize-3] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"future format version", func(b []byte) []byte { b[8] = 99; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[headerSize+11] ^= 0x40; return b }},
		{"flipped checksum", func(b []byte) []byte { b[20] ^= 0x01; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer restore()
			mangled := tc.mangle(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, mangled, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := st.Load("demo/maxent", info.Version)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load of %s: err = %v, want ErrCorrupt", tc.name, err)
			}
		})
	}
	// And the pristine file still loads after all that mangling.
	restore()
	if _, _, err := st.Load("demo/maxent", info.Version); err != nil {
		t.Fatalf("pristine snapshot fails to load: %v", err)
	}
}

func TestRejectsBadKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 500, 5)
	for _, key := range []string{"", "..", "a/../b", ".hidden", "a//b", "demo/", "/demo", "sp ace"} {
		if _, err := st.Save(key, sum); err == nil {
			t.Errorf("Save(%q) succeeded", key)
		}
		if _, _, err := st.Load(key, 0); err == nil {
			t.Errorf("Load(%q) succeeded", key)
		}
	}
}

// TestConcurrentSaveLoad hammers one store with parallel savers and
// loaders (run under -race in CI): versions must come out unique and
// every load must observe a complete, checksum-valid snapshot.
func TestConcurrentSaveLoad(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := buildTestSummary(t, 1000, 6)
	if _, err := st.Save("demo/maxent", sum); err != nil {
		t.Fatal(err)
	}

	const savers, loaders, iters = 4, 4, 8
	var wg sync.WaitGroup
	versions := make(chan int, savers*iters)
	errc := make(chan error, (savers+loaders)*iters)
	for w := 0; w < savers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				info, err := st.Save("demo/maxent", sum)
				if err != nil {
					errc <- err
					return
				}
				versions <- info.Version
			}
		}()
	}
	for w := 0; w < loaders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := st.Load("demo/maxent", 0); err != nil {
					errc <- err
					return
				}
				if _, err := st.List(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(versions)
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for v := range versions {
		if seen[v] {
			t.Fatalf("version %d allocated twice", v)
		}
		seen[v] = true
	}
	man, err := st.Versions("demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if want := savers*iters + 1; len(man.Snapshots) != want {
		t.Fatalf("manifest lists %d snapshots, want %d", len(man.Snapshots), want)
	}
}

// TestCrossProcessSaves simulates the documented multi-process workflow
// (cmd/summarize batch-writing the directory a live summaryd saves into)
// with independent Store handles on one directory, whose internal mutexes
// cannot protect each other: every save must land as its own intact file
// under a unique version (the link(2) claim), and the manifest must
// converge to the full version set via merge-and-heal.
func TestCrossProcessSaves(t *testing.T) {
	dir := t.TempDir()
	sum := buildTestSummary(t, 1000, 7)

	const writers, iters = 3, 5
	stores := make([]*Store, writers)
	for i := range stores {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	var wg sync.WaitGroup
	infos := make(chan SnapshotInfo, writers*iters)
	errc := make(chan error, writers*iters)
	for _, st := range stores {
		wg.Add(1)
		go func(st *Store) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				info, err := st.Save("demo/maxent", sum)
				if err != nil {
					errc <- err
					return
				}
				infos <- info
			}
		}(st)
	}
	wg.Wait()
	close(infos)
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for info := range infos {
		if seen[info.Version] {
			t.Fatalf("version %d claimed twice across stores", info.Version)
		}
		seen[info.Version] = true
	}
	if len(seen) != writers*iters {
		t.Fatalf("%d unique versions, want %d", len(seen), writers*iters)
	}
	// Every claimed version is an intact, loadable file.
	for v := range seen {
		if _, _, err := stores[0].Load("demo/maxent", v); err != nil {
			t.Fatalf("version %d does not load: %v", v, err)
		}
	}
	// One more save heals any manifest entry a racing rewrite dropped:
	// afterwards the manifest lists every version on disk.
	if _, err := stores[0].Save("demo/maxent", sum); err != nil {
		t.Fatal(err)
	}
	man, err := stores[0].Versions("demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if want := writers*iters + 1; len(man.Snapshots) != want {
		t.Fatalf("healed manifest lists %d snapshots, want %d", len(man.Snapshots), want)
	}
	for i, sn := range man.Snapshots {
		if sn.Version != i+1 {
			t.Fatalf("manifest versions not contiguous: %+v", man.Snapshots)
		}
		if sn.Estimator != sum.Name() {
			t.Fatalf("healed entry v%d lost the estimator name: %+v", sn.Version, sn)
		}
	}
}
