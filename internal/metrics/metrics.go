// Package metrics implements the quality measures used throughout the
// paper's evaluation (Sec. 6.2): the symmetric relative error
// |true − est| / (true + est), precision/recall over light-hitter versus
// nonexistent values, and the F-measure, plus small aggregation helpers.
package metrics

import (
	"math"
	"sort"
)

// RelativeError returns |truth − est| / (truth + est), the error measure of
// Sec. 6.2. When both values are zero the error is 0; when exactly one is
// zero the error is 1.
func RelativeError(truth, est float64) float64 {
	if truth == 0 && est == 0 {
		return 0
	}
	den := truth + est
	if den == 0 {
		// Only reachable with negative estimates; treat as maximal error.
		return 1
	}
	return math.Abs(truth-est) / den
}

// FMeasure returns 2·p·r/(p+r), or 0 when both precision and recall are 0.
func FMeasure(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for an empty slice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank interpolation.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// ErrorSummary aggregates a set of per-query errors into the summary
// statistics the evaluation tables report.
type ErrorSummary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// Summarize computes the ErrorSummary of xs (zero-valued for an empty
// slice).
func Summarize(xs []float64) ErrorSummary {
	s := ErrorSummary{Count: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Mean = Mean(xs)
	s.Median = Median(xs)
	s.P95 = Percentile(xs, 95)
	for _, x := range xs {
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// RareValueOutcome accumulates the confusion counts of the paper's
// rare-versus-nonexistent experiment: estimates over light hitters (true
// count > 0) and null values (true count = 0) are rounded and classified as
// "predicted existing" when the rounded estimate is positive.
type RareValueOutcome struct {
	// LightPredictedPositive counts light hitters with a positive rounded
	// estimate (true positives).
	LightPredictedPositive int
	// LightTotal counts all light hitters scored.
	LightTotal int
	// NullPredictedPositive counts nonexistent values with a positive
	// rounded estimate (false positives, the MaxEnt "phantom tuples").
	NullPredictedPositive int
	// NullTotal counts all nonexistent values scored.
	NullTotal int
}

// AddLightHitter records the estimate for a value known to exist (rare).
func (o *RareValueOutcome) AddLightHitter(estimate float64) {
	o.LightTotal++
	if math.Round(estimate) > 0 {
		o.LightPredictedPositive++
	}
}

// AddNull records the estimate for a value known not to exist.
func (o *RareValueOutcome) AddNull(estimate float64) {
	o.NullTotal++
	if math.Round(estimate) > 0 {
		o.NullPredictedPositive++
	}
}

// Precision returns |{est>0 : light}| / |{est>0 : light ∪ null}| as defined
// in Sec. 6.2 (1 when nothing was predicted positive).
func (o *RareValueOutcome) Precision() float64 {
	denom := o.LightPredictedPositive + o.NullPredictedPositive
	if denom == 0 {
		return 1
	}
	return float64(o.LightPredictedPositive) / float64(denom)
}

// Recall returns |{est>0 : light}| / |light|.
func (o *RareValueOutcome) Recall() float64 {
	if o.LightTotal == 0 {
		return 0
	}
	return float64(o.LightPredictedPositive) / float64(o.LightTotal)
}

// F returns the F-measure of the outcome.
func (o *RareValueOutcome) F() float64 {
	return FMeasure(o.Precision(), o.Recall())
}

// Merge adds the counts of another outcome into o.
func (o *RareValueOutcome) Merge(other RareValueOutcome) {
	o.LightPredictedPositive += other.LightPredictedPositive
	o.LightTotal += other.LightTotal
	o.NullPredictedPositive += other.NullPredictedPositive
	o.NullTotal += other.NullTotal
}
