package metrics

import (
	"math"
	"testing"
)

// TestRelativeErrorEdgeCases pins the zero/zero and one-sided-zero
// behavior of the paper's symmetric error measure.
func TestRelativeErrorEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		truth, est float64
		want       float64
	}{
		{"both zero", 0, 0, 0},
		{"truth zero", 0, 5, 1},
		{"estimate zero", 5, 0, 1},
		{"exact", 7, 7, 0},
		{"double", 10, 30, 0.5},
		{"symmetric", 30, 10, 0.5},
		{"cancelling negatives", 5, -5, 1},
	}
	for _, c := range cases {
		if got := RelativeError(c.truth, c.est); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: RelativeError(%g, %g) = %g, want %g", c.name, c.truth, c.est, got, c.want)
		}
	}
	// The measure is bounded by 1 for non-negative inputs.
	if got := RelativeError(1e-9, 1e9); got > 1 {
		t.Errorf("RelativeError exceeded 1: %g", got)
	}
}

// TestFMeasureEdgeCases pins the degenerate precision/recall inputs.
func TestFMeasureEdgeCases(t *testing.T) {
	if got := FMeasure(0, 0); got != 0 {
		t.Errorf("FMeasure(0,0) = %g, want 0", got)
	}
	if got := FMeasure(1, 0); got != 0 {
		t.Errorf("FMeasure(1,0) = %g, want 0", got)
	}
	if got := FMeasure(0, 1); got != 0 {
		t.Errorf("FMeasure(0,1) = %g, want 0", got)
	}
	if got := FMeasure(1, 1); got != 1 {
		t.Errorf("FMeasure(1,1) = %g, want 1", got)
	}
	if got := FMeasure(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FMeasure(0.5,1) = %g, want 2/3", got)
	}
}

// TestRareValueOutcome pins the confusion accounting, including the
// all-empty precision convention.
func TestRareValueOutcome(t *testing.T) {
	var o RareValueOutcome
	if p := o.Precision(); p != 1 {
		t.Errorf("empty Precision = %g, want 1", p)
	}
	if r := o.Recall(); r != 0 {
		t.Errorf("empty Recall = %g, want 0", r)
	}
	o.AddLightHitter(0.6) // rounds to 1: true positive
	o.AddLightHitter(0.4) // rounds to 0: miss
	o.AddNull(2)          // phantom tuple: false positive
	o.AddNull(0.2)        // correctly absent
	if p := o.Precision(); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("Precision = %g, want 0.5", p)
	}
	if r := o.Recall(); math.Abs(r-0.5) > 1e-12 {
		t.Errorf("Recall = %g, want 0.5", r)
	}
	if f := o.F(); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("F = %g, want 0.5", f)
	}
}

// TestSummarize pins the aggregate used by the experiment reports.
func TestSummarize(t *testing.T) {
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 || empty.Median != 0 || empty.P95 != 0 || empty.Max != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero value", empty)
	}
	s := Summarize([]float64{0.1, 0.3, 0.2})
	if s.Count != 3 {
		t.Errorf("Count = %d, want 3", s.Count)
	}
	if math.Abs(s.Mean-0.2) > 1e-12 || math.Abs(s.Median-0.2) > 1e-12 || math.Abs(s.Max-0.3) > 1e-12 {
		t.Errorf("Summarize = %+v, want mean/median 0.2, max 0.3", s)
	}
}

// TestPercentile pins the interpolation endpoints.
func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %g, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %g, want 4", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("P50 = %g, want 2.5", got)
	}
}
