// Package core defines the estimator abstraction every query-answering
// strategy of the repository implements: the exact ground-truth engine,
// the sampling baselines, and the MaxEnt summary. Putting all of them
// behind one interface lets the experiment harness drive any mix of
// strategies through identical code paths, mirroring the evaluation
// setup of the paper (Sec. 6).
package core

import (
	"sort"

	"repro/internal/query"
)

// Estimator answers the linear counting queries of Sec. 3.1 — COUNT(*)
// under a conjunctive predicate, and COUNT(*) GROUP BY a small attribute
// list — from whatever state the strategy keeps (full relation, weighted
// sample, or solved MaxEnt polynomial).
//
// Implementations must be safe for concurrent read-only use: the
// experiment harness shares one Estimator across many goroutines.
type Estimator interface {
	// Name identifies the strategy in reports (e.g. "exact",
	// "Uniform(1.00%)", "maxent[LARGE]").
	Name() string
	// EstimateCount returns the estimated COUNT(*) of tuples satisfying
	// pred. A nil predicate means the full relation cardinality.
	EstimateCount(pred *query.Predicate) (float64, error)
	// EstimateGroupBy returns the estimated COUNT(*) per combination of
	// values of the grouping attributes among tuples satisfying pred
	// (pred may be nil). At most four grouping attributes are supported.
	// Groups are ordered by descending estimate with deterministic
	// tie-breaking (see SortGroupEstimates).
	EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]GroupEstimate, error)
	// ApproxBytes estimates the in-memory footprint of the state the
	// strategy answers from, for summary-vs-data size reporting.
	ApproxBytes() int64
}

// GroupEstimate is one row of an approximate (or exact) group-by result.
type GroupEstimate struct {
	// Values are the encoded domain values of the grouping attributes,
	// in the order the attributes were given.
	Values []int
	// Estimate is the (estimated) COUNT(*) of the group.
	Estimate float64
}

// GroupKey identifies one group in a group-by result: the packed tuple of
// encoded values of the grouping attributes, in the order they were given.
// It is the single key layout shared by the exact engine, the sampling
// baselines, and MergeGroupEstimates, so the four-attribute limit and the
// -1 unused-slot sentinel live in one place.
type GroupKey [4]int32

// MakeGroupKey packs up to four encoded values into a GroupKey; unused
// slots hold -1, which no encoded domain value can collide with.
func MakeGroupKey(values []int) GroupKey {
	var k GroupKey
	for i := range k {
		k[i] = -1
	}
	for i, v := range values {
		if i >= len(k) {
			panic("core: group-by supports at most 4 attributes")
		}
		k[i] = int32(v)
	}
	return k
}

// Values unpacks the first n values of the key.
func (k GroupKey) Values(n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = int(k[i])
	}
	return out
}

// MergeGroupEstimates sums group estimates across several partial results
// (for example, the per-partition answers of a partitioned estimator):
// groups with identical value tuples are combined by adding their
// estimates, and the merged result is returned in the canonical
// SortGroupEstimates order.
func MergeGroupEstimates(parts ...[]GroupEstimate) []GroupEstimate {
	sums := make(map[GroupKey]GroupEstimate)
	for _, part := range parts {
		for _, g := range part {
			k := MakeGroupKey(g.Values)
			if have, ok := sums[k]; ok {
				have.Estimate += g.Estimate
				sums[k] = have
				continue
			}
			sums[k] = GroupEstimate{
				Values:   append([]int(nil), g.Values...),
				Estimate: g.Estimate,
			}
		}
	}
	out := make([]GroupEstimate, 0, len(sums))
	for _, g := range sums {
		out = append(out, g)
	}
	SortGroupEstimates(out)
	return out
}

// SortGroupEstimates orders groups descending by estimate, then
// lexicographically by values, the deterministic order every Estimator
// returns.
func SortGroupEstimates(groups []GroupEstimate) {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Estimate != groups[j].Estimate {
			return groups[i].Estimate > groups[j].Estimate
		}
		a, b := groups[i].Values, groups[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
