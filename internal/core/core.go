// Package core defines the estimator abstraction every query-answering
// strategy of the repository implements: the exact ground-truth engine,
// the sampling baselines, and the MaxEnt summary. Putting all of them
// behind one interface lets the experiment harness drive any mix of
// strategies through identical code paths, mirroring the evaluation
// setup of the paper (Sec. 6).
package core

import (
	"sort"

	"repro/internal/query"
)

// Estimator answers the linear counting queries of Sec. 3.1 — COUNT(*)
// under a conjunctive predicate, and COUNT(*) GROUP BY a small attribute
// list — from whatever state the strategy keeps (full relation, weighted
// sample, or solved MaxEnt polynomial).
//
// Implementations must be safe for concurrent read-only use: the
// experiment harness shares one Estimator across many goroutines.
type Estimator interface {
	// Name identifies the strategy in reports (e.g. "exact",
	// "Uniform(1.00%)", "maxent[LARGE]").
	Name() string
	// EstimateCount returns the estimated COUNT(*) of tuples satisfying
	// pred. A nil predicate means the full relation cardinality.
	EstimateCount(pred *query.Predicate) (float64, error)
	// EstimateGroupBy returns the estimated COUNT(*) per combination of
	// values of the grouping attributes among tuples satisfying pred
	// (pred may be nil). At most four grouping attributes are supported.
	// Groups are ordered by descending estimate with deterministic
	// tie-breaking (see SortGroupEstimates).
	EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]GroupEstimate, error)
	// ApproxBytes estimates the in-memory footprint of the state the
	// strategy answers from, for summary-vs-data size reporting.
	ApproxBytes() int64
}

// GroupEstimate is one row of an approximate (or exact) group-by result.
type GroupEstimate struct {
	// Values are the encoded domain values of the grouping attributes,
	// in the order the attributes were given.
	Values []int
	// Estimate is the (estimated) COUNT(*) of the group.
	Estimate float64
}

// SortGroupEstimates orders groups descending by estimate, then
// lexicographically by values, the deterministic order every Estimator
// returns.
func SortGroupEstimates(groups []GroupEstimate) {
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Estimate != groups[j].Estimate {
			return groups[i].Estimate > groups[j].Estimate
		}
		a, b := groups[i].Values, groups[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
