package core
