package query

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// randomPredicate draws a valid predicate over numAttrs attributes with the
// given per-attribute domain size.
func randomPredicate(rng *rand.Rand, numAttrs, domain int) *Predicate {
	p := NewPredicate(numAttrs)
	for a := 0; a < numAttrs; a++ {
		switch rng.Intn(4) {
		case 0: // unconstrained
		case 1:
			p.WhereEq(a, rng.Intn(domain))
		case 2:
			lo := rng.Intn(domain)
			p.WhereRange(a, lo, lo+rng.Intn(domain-lo))
		case 3:
			vs := make([]int, 1+rng.Intn(4))
			for i := range vs {
				vs[i] = rng.Intn(domain)
			}
			p.WhereIn(a, vs...)
		}
	}
	return p
}

// TestJSONRoundTrip fuzzes marshal→unmarshal over random valid predicates:
// the decoded predicate must be semantically identical (Equal) and share
// the canonical key with the original.
func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		p := randomPredicate(rng, 1+rng.Intn(6), 2+rng.Intn(12))
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var q Predicate
		if err := json.Unmarshal(b, &q); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !p.Equal(&q) {
			t.Fatalf("round trip changed predicate: %v -> %s -> %v", p, b, &q)
		}
		if p.CanonicalKey() != q.CanonicalKey() {
			t.Fatalf("round trip changed key: %q vs %q", p.CanonicalKey(), q.CanonicalKey())
		}
	}
}

// TestCanonicalKeyInjective fuzzes pairs of random predicates: equal keys
// must imply semantically equal predicates, and vice versa. This is the
// property the server's result cache relies on.
func TestCanonicalKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make(map[string]*Predicate)
	for i := 0; i < 5000; i++ {
		p := randomPredicate(rng, 1+rng.Intn(4), 2+rng.Intn(6))
		k := p.CanonicalKey()
		if prev, ok := keys[k]; ok {
			if !prev.Equal(p) {
				t.Fatalf("key collision: %q maps to both %v and %v", k, prev, p)
			}
		} else {
			keys[k] = p
		}
	}
	if len(keys) < 100 {
		t.Fatalf("fuzz degenerate: only %d distinct keys", len(keys))
	}
}

// TestCanonicalKeyDistinguishes spot-checks near-miss pairs that a sloppy
// key format (missing separators or tags) would conflate.
func TestCanonicalKeyDistinguishes(t *testing.T) {
	pairs := [][2]*Predicate{
		// Arity differs.
		{NewPredicate(2), NewPredicate(3)},
		// eq 12 on attr 1 vs eq 2 on attr 11 (digit-boundary ambiguity).
		{NewPredicate(20).WhereEq(1, 12), NewPredicate(20).WhereEq(11, 2)},
		// Range [1,2] vs set {1,2}.
		{NewPredicate(3).WhereRange(0, 1, 2), NewPredicate(3).WhereIn(0, 1, 2)},
		// Same values, different attribute.
		{NewPredicate(3).WhereEq(0, 1), NewPredicate(3).WhereEq(1, 1)},
		// Range split across attrs vs one attr: 0∈[1,2] ∧ 1∈[3,4] vs 0∈[1,4].
		{
			NewPredicate(3).WhereRange(0, 1, 2).WhereRange(1, 3, 4),
			NewPredicate(3).WhereRange(0, 1, 4),
		},
	}
	for i, pr := range pairs {
		if pr[0].CanonicalKey() == pr[1].CanonicalKey() {
			t.Errorf("pair %d: distinct predicates share key %q", i, pr[0].CanonicalKey())
		}
	}
	// Same predicate built in different constraint order keys identically.
	a := NewPredicate(4).WhereEq(2, 1).WhereRange(0, 1, 3)
	b := NewPredicate(4).WhereRange(0, 1, 3).WhereEq(2, 1)
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("order-insensitivity broken: %q vs %q", a.CanonicalKey(), b.CanonicalKey())
	}
	// Set dedup/sort normalizes.
	c := NewPredicate(2).WhereIn(0, 3, 1, 3, 2)
	d := NewPredicate(2).WhereIn(0, 1, 2, 3)
	if c.CanonicalKey() != d.CanonicalKey() {
		t.Errorf("set normalization broken: %q vs %q", c.CanonicalKey(), d.CanonicalKey())
	}
}

// TestUnmarshalRejects exercises every validation path of the wire format.
func TestUnmarshalRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"wrong json shape", `[1,2]`, "malformed"},
		{"zero arity", `{"num_attrs":0}`, "num_attrs"},
		{"negative arity", `{"num_attrs":-2}`, "num_attrs"},
		{"attr out of range", `{"num_attrs":2,"where":[{"attr":2,"kind":"eq","value":0}]}`, "out of range"},
		{"negative attr", `{"num_attrs":2,"where":[{"attr":-1,"kind":"eq","value":0}]}`, "out of range"},
		{"duplicate attr", `{"num_attrs":2,"where":[{"attr":0,"kind":"eq","value":0},{"attr":0,"kind":"eq","value":1}]}`, "duplicate"},
		{"unknown kind", `{"num_attrs":2,"where":[{"attr":0,"kind":"like"}]}`, "unknown constraint kind"},
		{"eq without value", `{"num_attrs":2,"where":[{"attr":0,"kind":"eq"}]}`, `"value"`},
		{"negative eq", `{"num_attrs":2,"where":[{"attr":0,"kind":"eq","value":-3}]}`, "non-negative"},
		{"range without bounds", `{"num_attrs":2,"where":[{"attr":0,"kind":"range","lo":1}]}`, `"hi"`},
		{"inverted range", `{"num_attrs":2,"where":[{"attr":0,"kind":"range","lo":3,"hi":1}]}`, "empty range"},
		{"negative range", `{"num_attrs":2,"where":[{"attr":0,"kind":"range","lo":-1,"hi":1}]}`, "non-negative"},
		{"empty set", `{"num_attrs":2,"where":[{"attr":0,"kind":"set"}]}`, "non-empty"},
		{"negative set value", `{"num_attrs":2,"where":[{"attr":0,"kind":"set","values":[1,-2]}]}`, "non-negative"},
	}
	for _, tc := range cases {
		var p Predicate
		err := json.Unmarshal([]byte(tc.body), &p)
		if err == nil {
			t.Errorf("%s: unmarshal accepted %s", tc.name, tc.body)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestUnmarshalAccepts covers the permissive input paths: "any" constraints
// are dropped, and "eq" decodes as a point range.
func TestUnmarshalAccepts(t *testing.T) {
	var p Predicate
	body := `{"num_attrs":3,"where":[{"attr":0,"kind":"any"},{"attr":1,"kind":"eq","value":2}]}`
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := p.ConstrainedAttrs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("constrained attrs = %v, want [1]", got)
	}
	want := NewPredicate(3).WhereEq(1, 2)
	if !p.Equal(want) {
		t.Fatalf("decoded %v, want %v", &p, want)
	}
}
