package query

import (
	"math/rand"
	"testing"
)

func TestAssignRoundRobin(t *testing.T) {
	cases := []struct {
		n, ways int
		want    [][]int
	}{
		{5, 2, [][]int{{0, 2, 4}, {1, 3}}},
		{3, 3, [][]int{{0}, {1}, {2}}},
		{2, 5, [][]int{{0}, {1}}}, // more ways than items: no empty targets
		{4, 1, [][]int{{0, 1, 2, 3}}},
	}
	for _, tc := range cases {
		got := AssignRoundRobin(tc.n, tc.ways)
		if len(got) != len(tc.want) {
			t.Fatalf("AssignRoundRobin(%d,%d) = %v, want %v", tc.n, tc.ways, got, tc.want)
		}
		for w := range got {
			if len(got[w]) != len(tc.want[w]) {
				t.Fatalf("AssignRoundRobin(%d,%d)[%d] = %v, want %v", tc.n, tc.ways, w, got[w], tc.want[w])
			}
			for i := range got[w] {
				if got[w][i] != tc.want[w][i] {
					t.Fatalf("AssignRoundRobin(%d,%d)[%d] = %v, want %v", tc.n, tc.ways, w, got[w], tc.want[w])
				}
			}
		}
	}
	if got := AssignRoundRobin(5, 0); got != nil {
		t.Fatalf("AssignRoundRobin(5,0) = %v, want nil", got)
	}
	if got := AssignRoundRobin(-1, 2); got != nil {
		t.Fatalf("AssignRoundRobin(-1,2) = %v, want nil", got)
	}
}

// TestGatherAnswersRoundTrip proves scatter → gather is the identity on
// answer order, for random sizes and splits.
func TestGatherAnswersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		ways := 1 + rng.Intn(6)
		assign := AssignRoundRobin(n, ways)
		parts := make([][]BatchAnswer, len(assign))
		for w, indexes := range assign {
			parts[w] = make([]BatchAnswer, len(indexes))
			for i, idx := range indexes {
				parts[w][i] = BatchAnswer{Count: float64(idx) * 1.5}
			}
		}
		out, err := GatherAnswers(n, assign, parts)
		if err != nil {
			t.Fatal(err)
		}
		for idx, a := range out {
			if a.Count != float64(idx)*1.5 {
				t.Fatalf("trial %d: item %d got answer %v", trial, idx, a.Count)
			}
		}
	}
}

func TestGatherAnswersRejectsMismatch(t *testing.T) {
	assign := AssignRoundRobin(4, 2)
	short := [][]BatchAnswer{{{Count: 1}}, {{Count: 2}, {Count: 3}}}
	if _, err := GatherAnswers(4, assign, short); err == nil {
		t.Fatal("gather accepted an answer slice shorter than its assignment")
	}
	if _, err := GatherAnswers(4, assign[:1], [][]BatchAnswer{{{}, {}}}); err == nil {
		t.Fatal("gather accepted unanswered items")
	}
	dup := [][]int{{0, 1}, {1, 2}}
	if _, err := GatherAnswers(3, dup, [][]BatchAnswer{{{}, {}}, {{}, {}}}); err == nil {
		t.Fatal("gather accepted a doubly-assigned item")
	}
}

func TestPick(t *testing.T) {
	items := []BatchItem{{GroupBy: []int{0}}, {}, {GroupBy: []int{1}}}
	picked := Pick(items, []int{2, 0})
	if len(picked) != 2 || len(picked[0].GroupBy) != 1 || picked[0].GroupBy[0] != 1 || len(picked[1].GroupBy) != 1 || picked[1].GroupBy[0] != 0 {
		t.Fatalf("Pick returned %+v", picked)
	}
}
