// Package query models the linear (counting) queries supported by the
// EntropyDB summary: conjunctions of per-attribute predicates over the
// encoded active domain (Sec. 3.1 and Eq. (16) of the paper). Attribute
// values are addressed by their domain index, so the package is independent
// of the concrete schema.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Range is an inclusive range [Lo, Hi] of encoded domain values.
type Range struct {
	Lo, Hi int
}

// NewRange returns the inclusive range [lo, hi].
func NewRange(lo, hi int) Range { return Range{Lo: lo, Hi: hi} }

// Point returns the single-value range [v, v].
func Point(v int) Range { return Range{Lo: v, Hi: v} }

// Empty reports whether the range contains no values.
func (r Range) Empty() bool { return r.Hi < r.Lo }

// Len returns the number of values in the range (0 if empty).
func (r Range) Len() int {
	if r.Empty() {
		return 0
	}
	return r.Hi - r.Lo + 1
}

// Contains reports whether v lies in the range.
func (r Range) Contains(v int) bool { return v >= r.Lo && v <= r.Hi }

// Intersect returns the intersection of two ranges; the result may be empty.
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Range{Lo: lo, Hi: hi}
}

// Overlaps reports whether the two ranges share at least one value.
func (r Range) Overlaps(o Range) bool { return !r.Intersect(o).Empty() }

// ContainsRange reports whether o is entirely inside r.
func (r Range) ContainsRange(o Range) bool {
	if o.Empty() {
		return true
	}
	return r.Lo <= o.Lo && o.Hi <= r.Hi
}

// String renders the range as "[lo,hi]".
func (r Range) String() string {
	if r.Empty() {
		return "[]"
	}
	if r.Lo == r.Hi {
		return fmt.Sprintf("[%d]", r.Lo)
	}
	return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi)
}

// ConstraintKind distinguishes the supported per-attribute predicate shapes.
type ConstraintKind int

const (
	// Any places no restriction on the attribute (ρ_i ≡ true).
	Any ConstraintKind = iota
	// InRange restricts the attribute to an inclusive value range.
	InRange
	// InSet restricts the attribute to an explicit set of values.
	InSet
)

// Constraint is the predicate ρ_i over a single attribute.
type Constraint struct {
	Kind   ConstraintKind
	Range  Range
	Values []int // sorted, for InSet
}

// AnyValue returns the unconstrained predicate.
func AnyValue() Constraint { return Constraint{Kind: Any} }

// ValueIn returns a range constraint.
func ValueIn(r Range) Constraint { return Constraint{Kind: InRange, Range: r} }

// ValueEq returns a point constraint A_i = v.
func ValueEq(v int) Constraint { return Constraint{Kind: InRange, Range: Point(v)} }

// ValueSet returns a set constraint A_i ∈ values. The value slice is copied
// and sorted.
func ValueSet(values []int) Constraint {
	vs := append([]int(nil), values...)
	sort.Ints(vs)
	// Deduplicate in place.
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return Constraint{Kind: InSet, Values: out}
}

// Matches reports whether domain value v satisfies the constraint.
func (c Constraint) Matches(v int) bool {
	switch c.Kind {
	case Any:
		return true
	case InRange:
		return c.Range.Contains(v)
	case InSet:
		i := sort.SearchInts(c.Values, v)
		return i < len(c.Values) && c.Values[i] == v
	default:
		return false
	}
}

// IsAny reports whether the constraint places no restriction.
func (c Constraint) IsAny() bool { return c.Kind == Any }

// Empty reports whether the constraint can never be satisfied.
func (c Constraint) Empty() bool {
	switch c.Kind {
	case InRange:
		return c.Range.Empty()
	case InSet:
		return len(c.Values) == 0
	default:
		return false
	}
}

// String renders the constraint.
func (c Constraint) String() string {
	switch c.Kind {
	case Any:
		return "*"
	case InRange:
		return c.Range.String()
	case InSet:
		parts := make([]string, len(c.Values))
		for i, v := range c.Values {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		return "?"
	}
}

// Predicate is a conjunction π = ρ_1 ∧ ... ∧ ρ_m of per-attribute
// constraints, Eq. (16) of the paper. Attributes not mentioned are
// unconstrained.
type Predicate struct {
	numAttrs    int
	constraints map[int]Constraint
}

// NewPredicate creates an empty (always-true) predicate over a relation with
// numAttrs attributes.
func NewPredicate(numAttrs int) *Predicate {
	return &Predicate{numAttrs: numAttrs, constraints: make(map[int]Constraint)}
}

// NumAttrs returns the arity of the underlying relation.
func (p *Predicate) NumAttrs() int { return p.numAttrs }

// Where adds (replaces) the constraint on attribute attr and returns the
// predicate for chaining.
func (p *Predicate) Where(attr int, c Constraint) *Predicate {
	if attr < 0 || attr >= p.numAttrs {
		panic(fmt.Sprintf("query: attribute index %d out of range [0,%d)", attr, p.numAttrs))
	}
	if c.IsAny() {
		delete(p.constraints, attr)
		return p
	}
	p.constraints[attr] = c
	return p
}

// WhereEq constrains attribute attr to the single value v.
func (p *Predicate) WhereEq(attr, v int) *Predicate { return p.Where(attr, ValueEq(v)) }

// WhereRange constrains attribute attr to [lo, hi].
func (p *Predicate) WhereRange(attr, lo, hi int) *Predicate {
	return p.Where(attr, ValueIn(NewRange(lo, hi)))
}

// WhereIn constrains attribute attr to the given value set.
func (p *Predicate) WhereIn(attr int, values ...int) *Predicate {
	return p.Where(attr, ValueSet(values))
}

// Constraint returns the constraint on attribute attr (Any when
// unconstrained).
func (p *Predicate) Constraint(attr int) Constraint {
	if c, ok := p.constraints[attr]; ok {
		return c
	}
	return AnyValue()
}

// ConstrainedAttrs returns the sorted indexes of attributes carrying a
// non-trivial constraint.
func (p *Predicate) ConstrainedAttrs() []int {
	out := make([]int, 0, len(p.constraints))
	for a := range p.constraints {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Matches reports whether the encoded row satisfies the conjunction.
func (p *Predicate) Matches(row []int) bool {
	for attr, c := range p.constraints {
		if !c.Matches(row[attr]) {
			return false
		}
	}
	return true
}

// Unsatisfiable reports whether some constraint is empty, i.e. the predicate
// can never match any tuple.
func (p *Predicate) Unsatisfiable() bool {
	for _, c := range p.constraints {
		if c.Empty() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the predicate.
func (p *Predicate) Clone() *Predicate {
	q := NewPredicate(p.numAttrs)
	for a, c := range p.constraints {
		q.constraints[a] = c
	}
	return q
}

// String renders the predicate as "A0∈[..] ∧ A3∈{..}".
func (p *Predicate) String() string {
	attrs := p.ConstrainedAttrs()
	if len(attrs) == 0 {
		return "true"
	}
	parts := make([]string, 0, len(attrs))
	for _, a := range attrs {
		parts = append(parts, fmt.Sprintf("A%d∈%s", a, p.constraints[a]))
	}
	return strings.Join(parts, " ∧ ")
}

// Selectivity returns the fraction of the full cross-product tuple space
// that satisfies the predicate, given the per-attribute domain sizes. It is
// used by heuristics and tests, not by query answering.
func (p *Predicate) Selectivity(domainSizes []int) float64 {
	sel := 1.0
	for attr, c := range p.constraints {
		n := domainSizes[attr]
		if n == 0 {
			return 0
		}
		var count int
		switch c.Kind {
		case InRange:
			r := c.Range.Intersect(NewRange(0, n-1))
			count = r.Len()
		case InSet:
			for _, v := range c.Values {
				if v >= 0 && v < n {
					count++
				}
			}
		default:
			count = n
		}
		sel *= float64(count) / float64(n)
	}
	return sel
}
