package query_test

import (
	"encoding/json"
	"fmt"

	"repro/internal/query"
)

// ExamplePredicate builds the conjunction
// region = 2 ∧ amount ∈ [2,5] over a 4-attribute schema and shows the two
// wire forms clients meet: the JSON body POSTed to summaryd and the
// canonical cache key the server dedups on.
func ExamplePredicate() {
	pred := query.NewPredicate(4).
		WhereEq(0, 2).
		WhereRange(3, 2, 5)

	body, _ := json.Marshal(pred)
	fmt.Println(string(body))
	fmt.Println(pred.CanonicalKey())

	var parsed query.Predicate
	if err := json.Unmarshal(body, &parsed); err != nil {
		panic(err)
	}
	fmt.Println(parsed.Equal(pred))
	// Output:
	// {"num_attrs":4,"where":[{"attr":0,"kind":"eq","value":2},{"attr":3,"kind":"range","lo":2,"hi":5}]}
	// #4|0r2:2|3r2:5
	// true
}
