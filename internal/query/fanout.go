package query

import "fmt"

// Batch fan-out bookkeeping for routed serving: a coordinator splits one
// batch across several summaryd nodes and reassembles the answers in the
// original order. The helpers are pure index arithmetic, so the routed
// answer stream is positionally identical to a single-node answer stream
// no matter how the work was scattered.

// AssignRoundRobin deals n batch items across ways targets round-robin
// and returns, per target, the item indexes it owns. Targets beyond n get
// empty (never nil-padded) slices dropped from the result, so every
// returned assignment holds at least one item. ways < 1 or n < 0 returns
// nil.
func AssignRoundRobin(n, ways int) [][]int {
	if n < 0 || ways < 1 {
		return nil
	}
	if ways > n {
		ways = n
	}
	out := make([][]int, ways)
	for w := range out {
		out[w] = make([]int, 0, (n+ways-1)/ways)
	}
	for i := 0; i < n; i++ {
		out[i%ways] = append(out[i%ways], i)
	}
	return out
}

// Pick returns the items at the given indexes, in index order — the
// sub-batch one target serves.
func Pick(items []BatchItem, indexes []int) []BatchItem {
	out := make([]BatchItem, len(indexes))
	for i, idx := range indexes {
		out[i] = items[idx]
	}
	return out
}

// GatherAnswers scatters each target's answer slice back to the original
// item positions: parts[w][i] answers item assign[w][i]. Every item must
// be answered exactly once; a length mismatch between an assignment and
// its answers is an error (a node answered a different batch than it was
// sent).
func GatherAnswers(n int, assign [][]int, parts [][]BatchAnswer) ([]BatchAnswer, error) {
	if len(assign) != len(parts) {
		return nil, fmt.Errorf("query: gather: %d assignments but %d answer slices", len(assign), len(parts))
	}
	out := make([]BatchAnswer, n)
	seen := make([]bool, n)
	for w, indexes := range assign {
		if len(parts[w]) != len(indexes) {
			return nil, fmt.Errorf("query: gather: target %d owns %d items but answered %d", w, len(indexes), len(parts[w]))
		}
		for i, idx := range indexes {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("query: gather: item index %d out of range [0,%d)", idx, n)
			}
			if seen[idx] {
				return nil, fmt.Errorf("query: gather: item %d assigned twice", idx)
			}
			seen[idx] = true
			out[idx] = parts[w][i]
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("query: gather: item %d was never assigned", i)
		}
	}
	return out, nil
}
