package query

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomItem builds a random batch item over a 5-attribute schema with
// domain sizes up to 16, mixing counting and group-by queries and all
// constraint kinds.
func randomItem(rng *rand.Rand) BatchItem {
	const numAttrs, maxVal = 5, 16
	var it BatchItem
	if rng.Intn(8) == 0 {
		// Predicate-free item (full cardinality or pure group-by).
		if rng.Intn(2) == 0 {
			it.GroupBy = []int{rng.Intn(numAttrs)}
		}
		return it
	}
	p := NewPredicate(numAttrs)
	for _, a := range rng.Perm(numAttrs)[:1+rng.Intn(3)] {
		switch rng.Intn(3) {
		case 0:
			p.WhereEq(a, rng.Intn(maxVal))
		case 1:
			lo := rng.Intn(maxVal)
			p.WhereRange(a, lo, lo+rng.Intn(maxVal-lo))
		default:
			vals := make([]int, 1+rng.Intn(4))
			for i := range vals {
				vals[i] = rng.Intn(maxVal)
			}
			p.WhereIn(a, vals...)
		}
	}
	it.Pred = p
	if rng.Intn(4) == 0 {
		it.GroupBy = []int{rng.Intn(numAttrs)}
	}
	return it
}

// TestBatchRequestRoundTrip encodes random batches and asserts the decoded
// items are semantically identical (predicate equality, same group-bys).
func TestBatchRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		items := make([]BatchItem, 1+rng.Intn(40))
		for i := range items {
			items[i] = randomItem(rng)
		}
		var buf bytes.Buffer
		if err := EncodeBatch(&buf, "demo/maxent", items); err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		estimator, got, err := DecodeBatch(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if estimator != "demo/maxent" {
			t.Fatalf("trial %d: estimator %q", trial, estimator)
		}
		if len(got) != len(items) {
			t.Fatalf("trial %d: %d items decoded, want %d", trial, len(got), len(items))
		}
		for i, it := range items {
			g := got[i]
			switch {
			case it.Pred == nil && g.Pred != nil:
				t.Errorf("trial %d item %d: decoded a predicate from a nil one", trial, i)
			case it.Pred != nil && g.Pred == nil:
				t.Errorf("trial %d item %d: predicate lost", trial, i)
			case it.Pred != nil && !it.Pred.Equal(g.Pred):
				t.Errorf("trial %d item %d: %s != %s", trial, i, it.Pred, g.Pred)
			}
			if len(it.GroupBy) != len(g.GroupBy) {
				t.Errorf("trial %d item %d: group-by %v != %v", trial, i, g.GroupBy, it.GroupBy)
				continue
			}
			for k := range it.GroupBy {
				if it.GroupBy[k] != g.GroupBy[k] {
					t.Errorf("trial %d item %d: group-by %v != %v", trial, i, g.GroupBy, it.GroupBy)
					break
				}
			}
		}
	}
}

// TestBatchAnswerRoundTrip covers all three answer shapes, including exact
// float bit patterns.
func TestBatchAnswerRoundTrip(t *testing.T) {
	answers := []BatchAnswer{
		{Count: 1234.5678901234567, Cached: true},
		{Count: math.Nextafter(1, 2)},
		{IsGroup: true, Groups: []BatchGroup{
			{Values: []int{0, 3}, Estimate: 17.25},
			{Values: []int{1, 0}, Estimate: 0.000123456789},
		}},
		{IsGroup: true, Groups: nil, Cached: true}, // empty group answer
		{Error: "summary: group-by space exceeds 65536 combinations"},
	}
	var buf bytes.Buffer
	if err := EncodeAnswers(&buf, "demo/exact", answers); err != nil {
		t.Fatal(err)
	}
	estimator, got, err := DecodeAnswers(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if estimator != "demo/exact" {
		t.Fatalf("estimator %q", estimator)
	}
	if len(got) != len(answers) {
		t.Fatalf("%d answers, want %d", len(got), len(answers))
	}
	for i, want := range answers {
		g := got[i]
		if g.Cached != want.Cached || g.IsGroup != want.IsGroup || g.Error != want.Error {
			t.Errorf("answer %d: flags/error %+v != %+v", i, g, want)
		}
		if math.Float64bits(g.Count) != math.Float64bits(want.Count) {
			t.Errorf("answer %d: count bits differ: %v != %v", i, g.Count, want.Count)
		}
		if len(g.Groups) != len(want.Groups) {
			t.Errorf("answer %d: %d groups, want %d", i, len(g.Groups), len(want.Groups))
			continue
		}
		for k, wg := range want.Groups {
			if math.Float64bits(g.Groups[k].Estimate) != math.Float64bits(wg.Estimate) {
				t.Errorf("answer %d group %d: estimate bits differ", i, k)
			}
		}
	}
}

// TestBatchFrameRejections drives every framing failure mode and asserts a
// clean, tagged error — never a panic, never a silent wrong decode.
func TestBatchFrameRejections(t *testing.T) {
	var buf bytes.Buffer
	items := []BatchItem{{Pred: NewPredicate(4).WhereEq(0, 1)}}
	if err := EncodeBatch(&buf, "demo/maxent", items); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	t.Run("truncated header", func(t *testing.T) {
		_, _, err := DecodeBatch(bytes.NewReader(frame[:10]))
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, _, err := DecodeBatch(bytes.NewReader(frame[:len(frame)-2]))
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0] ^= 0xff
		_, _, err := DecodeBatch(bytes.NewReader(bad))
		if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want magic ErrFrame", err)
		}
	})
	t.Run("answer magic on request decoder", func(t *testing.T) {
		var abuf bytes.Buffer
		if err := EncodeAnswers(&abuf, "x", []BatchAnswer{{Count: 1}}); err != nil {
			t.Fatal(err)
		}
		_, _, err := DecodeBatch(bytes.NewReader(abuf.Bytes()))
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[8] = 99
		_, _, err := DecodeBatch(bytes.NewReader(bad))
		if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v, want version ErrFrame", err)
		}
	})
	t.Run("crc corruption", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0x01 // flip a payload bit
		_, _, err := DecodeBatch(bytes.NewReader(bad))
		if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum ErrFrame", err)
		}
	})
	t.Run("length lies short", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		// Claim one byte fewer than present: trailing garbage.
		n := len(bad) - 24
		bad[12] = byte(n - 1)
		_, _, err := DecodeBatch(bytes.NewReader(bad))
		if !errors.Is(err, ErrFrame) {
			t.Fatalf("err = %v, want ErrFrame", err)
		}
	})
	t.Run("length lies absurd", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		for i := 12; i < 20; i++ {
			bad[i] = 0xff
		}
		_, _, err := DecodeBatch(bytes.NewReader(bad))
		if !errors.Is(err, ErrFrame) || !strings.Contains(err.Error(), "bound") {
			t.Fatalf("err = %v, want bound ErrFrame", err)
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		if err := EncodeBatch(&bytes.Buffer{}, "x", nil); err == nil {
			t.Fatal("empty batch encoded")
		}
	})
}

// FuzzDecodeBatch hammers the request decoder with mutated frames: the
// only contract is no panic, and any accepted input must re-encode.
func FuzzDecodeBatch(f *testing.F) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		items := make([]BatchItem, 1+rng.Intn(5))
		for i := range items {
			items[i] = randomItem(rng)
		}
		var buf bytes.Buffer
		if err := EncodeBatch(&buf, "demo/maxent", items); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Versioned (format v2) seed: the old-frame/new-frame compatibility
	// pair must both stay in the accepted language.
	versioned, err := AppendBatchAt(nil, "demo/maxent", 7, []BatchItem{{}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(versioned)
	f.Add([]byte{})
	f.Add([]byte(batchRequestMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		estimator, version, items, err := DecodeBatchAt(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must be encodable again and decode
		// to the same batch — the decoder defines the canonical form.
		buf, err := AppendBatchAt(nil, estimator, version, items)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		est2, v2, items2, err := DecodeBatchAt(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if est2 != estimator || v2 != version || len(items2) != len(items) {
			t.Fatalf("round trip drifted: %q/v%d/%d != %q/v%d/%d", est2, v2, len(items2), estimator, version, len(items))
		}
		for i := range items {
			a, b := items[i], items2[i]
			if (a.Pred == nil) != (b.Pred == nil) || (a.Pred != nil && !a.Pred.Equal(b.Pred)) {
				t.Fatalf("item %d predicate drifted", i)
			}
		}
	})
}

// FuzzDecodeAnswers is the answer-side counterpart.
func FuzzDecodeAnswers(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeAnswers(&buf, "demo/maxent", []BatchAnswer{
		{Count: 42.5, Cached: true},
		{IsGroup: true, Groups: []BatchGroup{{Values: []int{1}, Estimate: 3}}},
		{Error: "boom"},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeAnswers(bytes.NewReader(data))
	})
}
