package query

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestAppendBatchAtVersionZeroIsBitIdenticalV1: targeting version 0 (the
// live estimator) must emit exactly the PR 6 v1 frame, byte for byte —
// that is the compatibility contract that lets old servers keep decoding
// new clients.
func TestAppendBatchAtVersionZeroIsBitIdenticalV1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		items := make([]BatchItem, 1+rng.Intn(10))
		for i := range items {
			items[i] = randomItem(rng)
		}
		old, err := AppendBatch(nil, "demo/maxent", items)
		if err != nil {
			t.Fatal(err)
		}
		at, err := AppendBatchAt(nil, "demo/maxent", 0, items)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(old, at) {
			t.Fatalf("trial %d: AppendBatchAt(v0) drifted from AppendBatch", trial)
		}
		if v := binary.LittleEndian.Uint16(at[8:10]); v != batchFormatVersion {
			t.Fatalf("trial %d: v0 frame declares format %d, want %d", trial, v, batchFormatVersion)
		}
	}
}

// TestOldFramesStillDecode: a v1 frame (what every pre-versioning client
// emits) must decode through both the old and the version-aware API, the
// latter reporting version 0.
func TestOldFramesStillDecode(t *testing.T) {
	items := []BatchItem{{Pred: NewPredicate(3).WhereEq(0, 1)}, {}}
	frame, err := AppendBatch(nil, "demo/maxent", items)
	if err != nil {
		t.Fatal(err)
	}
	est, got, err := DecodeBatch(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("old API rejected a v1 frame: %v", err)
	}
	if est != "demo/maxent" || len(got) != 2 {
		t.Fatalf("old API decoded %q/%d items", est, len(got))
	}
	est, version, got, err := DecodeBatchAt(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("versioned API rejected a v1 frame: %v", err)
	}
	if est != "demo/maxent" || version != 0 || len(got) != 2 {
		t.Fatalf("versioned API decoded %q/v%d/%d items, want demo/maxent/v0/2", est, version, len(got))
	}
}

// TestVersionedBatchRoundTrip: v2 frames carry the snapshot version
// through encode/decode, and the version-unaware DecodeBatch still
// accepts them (discarding the version).
func TestVersionedBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, version := range []int{1, 2, 42, 1 << 20} {
		items := make([]BatchItem, 1+rng.Intn(10))
		for i := range items {
			items[i] = randomItem(rng)
		}
		frame, err := AppendBatchAt(nil, "demo/maxent", version, items)
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint16(frame[8:10]); v != batchFormatVersionAt {
			t.Fatalf("versioned frame declares format %d, want %d", v, batchFormatVersionAt)
		}
		est, got, decItems, err := DecodeBatchAt(bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if est != "demo/maxent" || got != version || len(decItems) != len(items) {
			t.Fatalf("decoded %q/v%d/%d items, want demo/maxent/v%d/%d", est, got, len(decItems), version, len(items))
		}
		for i := range items {
			a, b := items[i], decItems[i]
			if (a.Pred == nil) != (b.Pred == nil) || (a.Pred != nil && !a.Pred.Equal(b.Pred)) {
				t.Fatalf("v%d item %d predicate drifted", version, i)
			}
		}
		if _, legacyItems, err := DecodeBatch(bytes.NewReader(frame)); err != nil || len(legacyItems) != len(items) {
			t.Fatalf("version-unaware DecodeBatch on a v2 frame: %d items, err=%v", len(legacyItems), err)
		}
	}
}

// TestVersionedBatchRejections: negative versions cannot be encoded, a
// v2 frame with snapshot version 0 is rejected (0 travels as format v1),
// and an unknown future format version is rejected.
func TestVersionedBatchRejections(t *testing.T) {
	if _, err := AppendBatchAt(nil, "demo/maxent", -1, []BatchItem{{}}); err == nil {
		t.Error("AppendBatchAt accepted a negative version")
	}

	// Hand-corrupt a v2 frame's snapshot version down to 0: payload is
	// str("demo/maxent") = 1+11 bytes, then uvarint(version).
	frame, err := AppendBatchAt(nil, "demo/maxent", 1, []BatchItem{{}})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), frame...)
	const versionOff = batchHeaderSize + 1 + len("demo/maxent")
	if bad[versionOff] != 1 {
		t.Fatalf("test layout assumption broken: byte at %d is %#x, want 0x01", versionOff, bad[versionOff])
	}
	bad[versionOff] = 0
	binary.LittleEndian.PutUint32(bad[20:24], crc32.Checksum(bad[batchHeaderSize:], batchCRCTable))
	if _, _, _, err := DecodeBatchAt(bytes.NewReader(bad)); !errors.Is(err, ErrFrame) {
		t.Errorf("v2 frame with snapshot version 0: err=%v, want ErrFrame", err)
	}

	future := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(future[8:10], batchFormatVersionAt+1)
	if _, _, _, err := DecodeBatchAt(bytes.NewReader(future)); !errors.Is(err, ErrFrame) {
		t.Errorf("future format version: err=%v, want ErrFrame", err)
	}
}
