// JSON wire format for predicates, used by the summaryd HTTP service and
// any other out-of-process client. The encoding is strict on input —
// unknown constraint kinds, out-of-range attributes, duplicate attributes,
// inverted ranges, and negative domain values are rejected with descriptive
// errors — so a malformed request never turns into a silently-wrong query.
//
// A predicate marshals as
//
//	{"num_attrs": 4,
//	 "where": [{"attr": 0, "kind": "eq", "value": 2},
//	           {"attr": 1, "kind": "range", "lo": 1, "hi": 3},
//	           {"attr": 3, "kind": "set", "values": [0, 5]}]}
//
// with constraints sorted by attribute. "eq" is sugar for a single-value
// range; "any" is accepted on input and dropped. CanonicalKey renders the
// same normal form as a compact string, the cache/dedup key of the server.

package query

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// wireConstraint is the JSON shape of one per-attribute constraint.
type wireConstraint struct {
	Attr int    `json:"attr"`
	Kind string `json:"kind"`
	// Value is set for kind "eq".
	Value *int `json:"value,omitempty"`
	// Lo and Hi are set for kind "range" (inclusive bounds).
	Lo *int `json:"lo,omitempty"`
	Hi *int `json:"hi,omitempty"`
	// Values is set for kind "set".
	Values []int `json:"values,omitempty"`
}

// wirePredicate is the JSON shape of a predicate.
type wirePredicate struct {
	NumAttrs int              `json:"num_attrs"`
	Where    []wireConstraint `json:"where,omitempty"`
}

// MarshalJSON renders the predicate in the wire format, constraints sorted
// by attribute index.
func (p *Predicate) MarshalJSON() ([]byte, error) {
	w := wirePredicate{NumAttrs: p.numAttrs}
	for _, a := range p.ConstrainedAttrs() {
		c := p.constraints[a]
		wc := wireConstraint{Attr: a}
		switch c.Kind {
		case InRange:
			if c.Range.Lo == c.Range.Hi {
				v := c.Range.Lo
				wc.Kind = "eq"
				wc.Value = &v
			} else {
				lo, hi := c.Range.Lo, c.Range.Hi
				wc.Kind = "range"
				wc.Lo, wc.Hi = &lo, &hi
			}
		case InSet:
			wc.Kind = "set"
			wc.Values = append([]int(nil), c.Values...)
		default:
			return nil, fmt.Errorf("query: cannot marshal constraint kind %d on attribute %d", c.Kind, a)
		}
		w.Where = append(w.Where, wc)
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses and validates the wire format. The error messages
// are meant to travel back to HTTP clients verbatim.
func (p *Predicate) UnmarshalJSON(data []byte) error {
	var w wirePredicate
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("query: malformed predicate JSON: %w", err)
	}
	if w.NumAttrs < 1 {
		return fmt.Errorf("query: num_attrs must be >= 1, got %d", w.NumAttrs)
	}
	q := NewPredicate(w.NumAttrs)
	seen := make(map[int]bool, len(w.Where))
	for i, wc := range w.Where {
		if wc.Attr < 0 || wc.Attr >= w.NumAttrs {
			return fmt.Errorf("query: where[%d]: attribute %d out of range [0,%d)", i, wc.Attr, w.NumAttrs)
		}
		if seen[wc.Attr] {
			return fmt.Errorf("query: where[%d]: duplicate constraint on attribute %d", i, wc.Attr)
		}
		seen[wc.Attr] = true
		c, err := wc.constraint()
		if err != nil {
			return fmt.Errorf("query: where[%d]: %w", i, err)
		}
		q.Where(wc.Attr, c)
	}
	*p = *q
	return nil
}

// constraint validates one wire constraint and converts it.
func (wc wireConstraint) constraint() (Constraint, error) {
	switch wc.Kind {
	case "any", "":
		return AnyValue(), nil
	case "eq":
		if wc.Value == nil {
			return Constraint{}, fmt.Errorf(`kind "eq" requires "value"`)
		}
		if *wc.Value < 0 {
			return Constraint{}, fmt.Errorf("eq value %d must be non-negative", *wc.Value)
		}
		return ValueEq(*wc.Value), nil
	case "range":
		if wc.Lo == nil || wc.Hi == nil {
			return Constraint{}, fmt.Errorf(`kind "range" requires "lo" and "hi"`)
		}
		if *wc.Lo < 0 {
			return Constraint{}, fmt.Errorf("range lo %d must be non-negative", *wc.Lo)
		}
		if *wc.Hi < *wc.Lo {
			return Constraint{}, fmt.Errorf("empty range [%d,%d]", *wc.Lo, *wc.Hi)
		}
		return ValueIn(NewRange(*wc.Lo, *wc.Hi)), nil
	case "set":
		if len(wc.Values) == 0 {
			return Constraint{}, fmt.Errorf(`kind "set" requires a non-empty "values"`)
		}
		for _, v := range wc.Values {
			if v < 0 {
				return Constraint{}, fmt.Errorf("set value %d must be non-negative", v)
			}
		}
		return ValueSet(wc.Values), nil
	default:
		return Constraint{}, fmt.Errorf("unknown constraint kind %q (want any, eq, range, or set)", wc.Kind)
	}
}

// CanonicalKey returns a compact, injective string form of the predicate:
// two predicates produce the same key iff they have the same arity and
// attribute-wise constraints (sets compared after sort+dedup). It is the
// cache key of the summaryd result cache.
//
// The format is "#<num_attrs>" followed by "|<attr><tag><args>" per
// constrained attribute in ascending attribute order, where the tag is
// 'r' (range, "lo:hi") or 's' (set, comma-joined values).
func (p *Predicate) CanonicalKey() string {
	var b strings.Builder
	b.WriteByte('#')
	b.WriteString(strconv.Itoa(p.numAttrs))
	for _, a := range p.ConstrainedAttrs() {
		c := p.constraints[a]
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(a))
		switch c.Kind {
		case InRange:
			b.WriteByte('r')
			b.WriteString(strconv.Itoa(c.Range.Lo))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(c.Range.Hi))
		case InSet:
			b.WriteByte('s')
			for i, v := range c.Values {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(v))
			}
		}
	}
	return b.String()
}

// Equal reports whether the two predicates constrain the same attributes
// identically (sets compared after their construction-time sort+dedup).
func (p *Predicate) Equal(o *Predicate) bool {
	if p.numAttrs != o.numAttrs || len(p.constraints) != len(o.constraints) {
		return false
	}
	for a, c := range p.constraints {
		oc, ok := o.constraints[a]
		if !ok || c.Kind != oc.Kind {
			return false
		}
		switch c.Kind {
		case InRange:
			if c.Range != oc.Range {
				return false
			}
		case InSet:
			if len(c.Values) != len(oc.Values) {
				return false
			}
			for i := range c.Values {
				if c.Values[i] != oc.Values[i] {
					return false
				}
			}
		}
	}
	return true
}
