// Binary wire format for batched queries and answers, the compact frame
// behind summaryd's POST /query/batch. HTTP/JSON per-query round trips
// dominate serving cost once the model answers in microseconds; this
// format amortizes the transport by carrying N queries (and N answers)
// per round trip, encoded as varints and raw float bits instead of JSON
// text.
//
// Framing follows the conventions of the snapshot store (internal/store):
// an 8-byte magic, a little-endian uint16 format version, 2 reserved
// bytes, a uint64 payload length, and a CRC32-C checksum of the payload —
// 24 bytes total, then the payload. Decode verifies all of it before
// touching the payload, so truncated frames, corrupted bytes, and lying
// length fields are rejected with descriptive errors instead of being
// decoded into silently-wrong queries.
//
// Request payload layout (all ints unsigned varints unless noted):
//
//	estimator   len + UTF-8 bytes
//	version     (format v2 only) snapshot version, > 0
//	count       number of batch items (1..MaxBatchItems)
//	per item:
//	  num_attrs
//	  group-by   count + attribute indexes (0 = counting query)
//	  where      count + per constraint:
//	               attr, tag byte 'r' | 's',
//	               'r': lo, hi (inclusive, lo <= hi)
//	               's': count + sorted distinct values
//
// Answer payload layout:
//
//	estimator   len + UTF-8 bytes
//	count       number of answers
//	per answer: flags byte (bit0 cached, bit1 group-by, bit2 error), then
//	  error:    len + message
//	  group-by: count + per group (len + values, float64 estimate bits)
//	  count:    float64 bits (little-endian IEEE 754)
//
// Floats travel as exact bit patterns, so a decoded answer is
// bit-identical to the server-side float64 — the same guarantee the JSON
// path gets from Go's round-trippable float encoding.

package query

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// batchRequestMagic and batchAnswerMagic identify the two frame kinds;
	// the trailing byte doubles as framing-version bump space.
	batchRequestMagic = "EDBBATQ1"
	batchAnswerMagic  = "EDBBATA1"
	// batchFormatVersion is the baseline payload format version (PR 6
	// wire); frames without a snapshot version are still written as v1,
	// so a fleet of old readers keeps decoding a new client's traffic.
	batchFormatVersion = 1
	// batchFormatVersionAt is the payload format version that carries a
	// snapshot version (time-travel queries) after the estimator name.
	// Decoders accept both.
	batchFormatVersionAt = 2
	// batchHeaderSize is magic (8) + version (2) + reserved (2) + payload
	// length (8) + CRC32-C (4).
	batchHeaderSize = 8 + 2 + 2 + 8 + 4
	// MaxBatchFrameBytes bounds the payload a decoder will read (16 MiB),
	// so a corrupted or hostile length field cannot drive an absurd
	// allocation.
	MaxBatchFrameBytes = 16 << 20
	// MaxBatchItems bounds the number of queries (and answers) per frame.
	MaxBatchItems = 1 << 16
)

// ErrFrame tags every framing/integrity failure of the batch decoders
// (bad magic, version mismatch, truncation, length mismatch, checksum
// mismatch), so transports can distinguish damage from semantic
// validation errors.
var ErrFrame = errors.New("query: batch frame corrupt")

var batchCRCTable = crc32.MakeTable(crc32.Castagnoli)

// BatchItem is one query of a batch: a counting query when GroupBy is
// empty, a group-by query otherwise. A nil predicate asks for the full
// relation cardinality, mirroring POST /query.
type BatchItem struct {
	Pred    *Predicate
	GroupBy []int
}

// BatchGroup is one group of a group-by answer.
type BatchGroup struct {
	Values   []int
	Estimate float64
}

// BatchAnswer is the answer to one BatchItem. Exactly one of Count,
// Groups, or Error is meaningful: Error is set when the item failed
// (arity mismatch, estimator failure), Groups when the item was a
// group-by, Count otherwise.
type BatchAnswer struct {
	Count   float64
	Groups  []BatchGroup
	Cached  bool
	IsGroup bool
	Error   string
}

// --- encoding ---------------------------------------------------------

// frameWriter appends a payload after reserved header space and backfills
// the frame header on seal, so a whole frame is built in one contiguous
// buffer the caller can reuse across calls.
type frameWriter struct {
	buf []byte
}

// zeroHeader is the header-sized zero block reserved at the front of a
// frame before the payload is known; seal overwrites it in place.
var zeroHeader [batchHeaderSize]byte

func (w *frameWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *frameWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *frameWriter) float(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// seal backfills the frame header reserved at base (magic, format
// version, payload length, CRC32-C) and returns the completed buffer.
func (w *frameWriter) seal(base int, magic string, version uint16) ([]byte, error) {
	payload := w.buf[base+batchHeaderSize:]
	if len(payload) > MaxBatchFrameBytes {
		return nil, fmt.Errorf("query: batch payload %d bytes exceeds the %d-byte frame bound", len(payload), MaxBatchFrameBytes)
	}
	head := w.buf[base : base+batchHeaderSize]
	copy(head[:8], magic)
	binary.LittleEndian.PutUint16(head[8:10], version)
	// head[10:12] reserved, zero (pre-cleared by zeroHeader).
	binary.LittleEndian.PutUint64(head[12:20], uint64(len(payload)))
	binary.LittleEndian.PutUint32(head[20:24], crc32.Checksum(payload, batchCRCTable))
	return w.buf, nil
}

// EncodeBatch writes a framed batch request: the target estimator name
// and N queries. Items are validated the same way DecodeBatch validates
// them, so an encoder can never produce a frame its decoder rejects.
func EncodeBatch(out io.Writer, estimator string, items []BatchItem) error {
	frame, err := AppendBatch(nil, estimator, items)
	if err != nil {
		return err
	}
	_, err = out.Write(frame)
	return err
}

// AppendBatch appends a complete framed batch request to dst and returns
// the extended slice. It reuses dst's spare capacity, so a client that
// recycles its request buffer encodes steady-state batches without
// allocating. dst may be nil.
func AppendBatch(dst []byte, estimator string, items []BatchItem) ([]byte, error) {
	return AppendBatchAt(dst, estimator, 0, items)
}

// EncodeBatchAt is EncodeBatch targeting a specific snapshot version of
// the estimator's dataset (version > 0); version 0 targets the live
// estimator and emits a frame bit-identical to EncodeBatch's.
func EncodeBatchAt(out io.Writer, estimator string, version int, items []BatchItem) error {
	frame, err := AppendBatchAt(nil, estimator, version, items)
	if err != nil {
		return err
	}
	_, err = out.Write(frame)
	return err
}

// AppendBatchAt is AppendBatch targeting a specific snapshot version of
// the estimator's dataset. version 0 (the live estimator) emits a format
// v1 frame — bit-identical to what AppendBatch always produced, so
// version-unaware servers keep working; version > 0 emits a format v2
// frame carrying the snapshot version after the estimator name.
func AppendBatchAt(dst []byte, estimator string, version int, items []BatchItem) ([]byte, error) {
	if version < 0 {
		return nil, fmt.Errorf("query: batch snapshot version %d must be non-negative", version)
	}
	if len(items) == 0 {
		return nil, errors.New("query: batch must contain at least one item")
	}
	if len(items) > MaxBatchItems {
		return nil, fmt.Errorf("query: batch of %d items exceeds the %d-item bound", len(items), MaxBatchItems)
	}
	base := len(dst)
	w := frameWriter{buf: append(dst, zeroHeader[:]...)}
	w.str(estimator)
	format := uint16(batchFormatVersion)
	if version > 0 {
		format = batchFormatVersionAt
		w.uvarint(uint64(version))
	}
	w.uvarint(uint64(len(items)))
	for i, it := range items {
		if err := encodeItem(&w, it); err != nil {
			return nil, fmt.Errorf("query: batch item %d: %w", i, err)
		}
	}
	return w.seal(base, batchRequestMagic, format)
}

// encodeItem appends one batch item to the payload.
func encodeItem(w *frameWriter, it BatchItem) error {
	numAttrs := 0
	if it.Pred != nil {
		numAttrs = it.Pred.NumAttrs()
	}
	// A nil predicate still needs an arity for group-by validation; the
	// wire carries 0 and the server resolves it against the estimator.
	w.uvarint(uint64(numAttrs))
	w.uvarint(uint64(len(it.GroupBy)))
	for _, a := range it.GroupBy {
		if a < 0 {
			return fmt.Errorf("group-by attribute %d must be non-negative", a)
		}
		w.uvarint(uint64(a))
	}
	if it.Pred == nil {
		w.uvarint(0)
		return nil
	}
	attrs := it.Pred.ConstrainedAttrs()
	w.uvarint(uint64(len(attrs)))
	for _, a := range attrs {
		c := it.Pred.Constraint(a)
		w.uvarint(uint64(a))
		switch c.Kind {
		case InRange:
			w.buf = append(w.buf, 'r')
			w.uvarint(uint64(c.Range.Lo))
			w.uvarint(uint64(c.Range.Hi))
		case InSet:
			w.buf = append(w.buf, 's')
			w.uvarint(uint64(len(c.Values)))
			for _, v := range c.Values {
				w.uvarint(uint64(v))
			}
		default:
			return fmt.Errorf("cannot encode constraint kind %d on attribute %d", c.Kind, a)
		}
	}
	return nil
}

// EncodeAnswers writes a framed batch answer: the answering estimator
// name and one BatchAnswer per request item, in request order.
func EncodeAnswers(out io.Writer, estimator string, answers []BatchAnswer) error {
	frame, err := AppendAnswers(nil, estimator, answers)
	if err != nil {
		return err
	}
	_, err = out.Write(frame)
	return err
}

// AppendAnswers appends a complete framed batch answer to dst and returns
// the extended slice. It reuses dst's spare capacity, so a server that
// pools response buffers assembles steady-state answers without
// allocating. dst may be nil.
func AppendAnswers(dst []byte, estimator string, answers []BatchAnswer) ([]byte, error) {
	base := len(dst)
	w := frameWriter{buf: append(dst, zeroHeader[:]...)}
	w.str(estimator)
	w.uvarint(uint64(len(answers)))
	for _, a := range answers {
		var flags byte
		if a.Cached {
			flags |= 1
		}
		if a.IsGroup {
			flags |= 2
		}
		if a.Error != "" {
			flags |= 4
		}
		w.buf = append(w.buf, flags)
		switch {
		case a.Error != "":
			w.str(a.Error)
		case a.IsGroup:
			w.uvarint(uint64(len(a.Groups)))
			for _, g := range a.Groups {
				w.uvarint(uint64(len(g.Values)))
				for _, v := range g.Values {
					w.uvarint(uint64(v))
				}
				w.float(g.Estimate)
			}
		default:
			w.float(a.Count)
		}
	}
	return w.seal(base, batchAnswerMagic, batchFormatVersion)
}

// --- decoding ---------------------------------------------------------

// frameReader walks a verified payload with bounds-checked reads.
type frameReader struct {
	buf []byte
	off int
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrFrame, r.off)
	}
	r.off += n
	return v, nil
}

// count reads a varint bounded by max, guarding slice pre-allocation
// against length lies: a count can never exceed the bytes remaining
// (every counted element is at least one byte).
func (r *frameReader) count(max int, what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("%w: %s count %d exceeds the %d bound", ErrFrame, what, v, max)
	}
	if v > uint64(len(r.buf)-r.off) {
		return 0, fmt.Errorf("%w: %s count %d exceeds the %d bytes remaining", ErrFrame, what, v, len(r.buf)-r.off)
	}
	return int(v), nil
}

func (r *frameReader) str(max int, what string) (string, error) {
	n, err := r.count(max, what)
	if err != nil {
		return "", err
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s, nil
}

func (r *frameReader) float() (float64, error) {
	if len(r.buf)-r.off < 8 {
		return 0, fmt.Errorf("%w: truncated float at offset %d", ErrFrame, r.off)
	}
	bits := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

func (r *frameReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFrame, len(r.buf)-r.off)
	}
	return nil
}

// readFrame verifies the framing (magic, format version within
// [1, maxVersion], length, CRC32-C) and returns the payload and the
// format version the frame declared.
func readFrame(in io.Reader, magic string, maxVersion uint16) ([]byte, uint16, error) {
	var head [batchHeaderSize]byte
	if _, err := io.ReadFull(in, head[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: header truncated (%v)", ErrFrame, err)
	}
	if string(head[:8]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q (want %q)", ErrFrame, head[:8], magic)
	}
	version := binary.LittleEndian.Uint16(head[8:10])
	if version < batchFormatVersion || version > maxVersion {
		return nil, 0, fmt.Errorf("%w: format version %d, this build reads %d..%d", ErrFrame, version, batchFormatVersion, maxVersion)
	}
	length := binary.LittleEndian.Uint64(head[12:20])
	if length > MaxBatchFrameBytes {
		return nil, 0, fmt.Errorf("%w: payload length %d exceeds the %d-byte bound", ErrFrame, length, int64(MaxBatchFrameBytes))
	}
	want := binary.LittleEndian.Uint32(head[20:24])
	payload := make([]byte, length)
	if _, err := io.ReadFull(in, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: payload truncated (%v)", ErrFrame, err)
	}
	// Trailing bytes mean the length field and the frame disagree.
	var one [1]byte
	if n, _ := in.Read(one[:]); n != 0 {
		return nil, 0, fmt.Errorf("%w: %d-byte payload followed by trailing garbage", ErrFrame, length)
	}
	if got := crc32.Checksum(payload, batchCRCTable); got != want {
		return nil, 0, fmt.Errorf("%w: checksum %08x, header says %08x", ErrFrame, got, want)
	}
	return payload, version, nil
}

// DecodeBatch reads and validates a framed batch request, returning the
// estimator name and the decoded items. It accepts both format versions
// but discards a v2 frame's snapshot version — version-aware servers use
// DecodeBatchAt. Validation mirrors the JSON path's strictness —
// out-of-range or duplicate attributes, inverted ranges, and empty sets
// are rejected with errors that pinpoint the offending item — so a
// malformed frame never becomes a silently-wrong query.
func DecodeBatch(in io.Reader) (string, []BatchItem, error) {
	estimator, _, items, err := DecodeBatchAt(in)
	return estimator, items, err
}

// DecodeBatchAt is DecodeBatch returning the snapshot version the frame
// targets: 0 (the live estimator) for format v1 frames, the encoded
// version (> 0) for format v2.
func DecodeBatchAt(in io.Reader) (string, int, []BatchItem, error) {
	payload, format, err := readFrame(in, batchRequestMagic, batchFormatVersionAt)
	if err != nil {
		return "", 0, nil, err
	}
	r := &frameReader{buf: payload}
	estimator, err := r.str(1<<10, "estimator name")
	if err != nil {
		return "", 0, nil, err
	}
	version := 0
	if format >= batchFormatVersionAt {
		v, err := r.uvarint()
		if err != nil {
			return "", 0, nil, err
		}
		if v == 0 || v > 1<<31 {
			return "", 0, nil, fmt.Errorf("%w: snapshot version %d out of range [1, 2^31]", ErrFrame, v)
		}
		version = int(v)
	}
	n, err := r.count(MaxBatchItems, "batch item")
	if err != nil {
		return "", 0, nil, err
	}
	if n == 0 {
		return "", 0, nil, errors.New("query: batch must contain at least one item")
	}
	items := make([]BatchItem, n)
	for i := range items {
		it, err := decodeItem(r)
		if err != nil {
			return "", 0, nil, fmt.Errorf("query: batch item %d: %w", i, err)
		}
		items[i] = it
	}
	if err := r.done(); err != nil {
		return "", 0, nil, err
	}
	return estimator, version, items, nil
}

// decodeItem reads and validates one batch item.
func decodeItem(r *frameReader) (BatchItem, error) {
	numAttrs64, err := r.uvarint()
	if err != nil {
		return BatchItem{}, err
	}
	if numAttrs64 > 1<<20 {
		return BatchItem{}, fmt.Errorf("%w: num_attrs %d is absurd", ErrFrame, numAttrs64)
	}
	numAttrs := int(numAttrs64)

	var it BatchItem
	ng, err := r.count(1<<10, "group-by")
	if err != nil {
		return BatchItem{}, err
	}
	if ng > 0 {
		it.GroupBy = make([]int, ng)
		for k := range it.GroupBy {
			a, err := r.uvarint()
			if err != nil {
				return BatchItem{}, err
			}
			it.GroupBy[k] = int(a)
		}
	}

	nc, err := r.count(1<<16, "constraint")
	if err != nil {
		return BatchItem{}, err
	}
	if nc == 0 {
		// No constraints: a nil predicate (full-cardinality / pure group-by
		// query) when the item carried no arity either.
		if numAttrs == 0 {
			return it, nil
		}
		it.Pred = NewPredicate(numAttrs)
		return it, nil
	}
	if numAttrs == 0 {
		return BatchItem{}, errors.New("constraints without num_attrs")
	}
	pred := NewPredicate(numAttrs)
	prev := -1
	for k := 0; k < nc; k++ {
		a64, err := r.uvarint()
		if err != nil {
			return BatchItem{}, err
		}
		attr := int(a64)
		if attr >= numAttrs {
			return BatchItem{}, fmt.Errorf("attribute %d out of range [0,%d)", attr, numAttrs)
		}
		if attr <= prev {
			return BatchItem{}, fmt.Errorf("constraints not strictly ascending by attribute (%d after %d)", attr, prev)
		}
		prev = attr
		if r.off >= len(r.buf) {
			return BatchItem{}, fmt.Errorf("%w: truncated constraint tag", ErrFrame)
		}
		tag := r.buf[r.off]
		r.off++
		switch tag {
		case 'r':
			lo, err := r.uvarint()
			if err != nil {
				return BatchItem{}, err
			}
			hi, err := r.uvarint()
			if err != nil {
				return BatchItem{}, err
			}
			if hi < lo {
				return BatchItem{}, fmt.Errorf("empty range [%d,%d]", lo, hi)
			}
			pred.Where(attr, ValueIn(NewRange(int(lo), int(hi))))
		case 's':
			nv, err := r.count(1<<16, "set value")
			if err != nil {
				return BatchItem{}, err
			}
			if nv == 0 {
				return BatchItem{}, errors.New("set constraint needs a non-empty value list")
			}
			values := make([]int, nv)
			for j := range values {
				v, err := r.uvarint()
				if err != nil {
					return BatchItem{}, err
				}
				values[j] = int(v)
			}
			pred.Where(attr, ValueSet(values))
		default:
			return BatchItem{}, fmt.Errorf("unknown constraint tag %q (want 'r' or 's')", tag)
		}
	}
	it.Pred = pred
	return it, nil
}

// DecodeAnswers reads and validates a framed batch answer, returning the
// estimator name and the decoded answers.
func DecodeAnswers(in io.Reader) (string, []BatchAnswer, error) {
	payload, _, err := readFrame(in, batchAnswerMagic, batchFormatVersion)
	if err != nil {
		return "", nil, err
	}
	r := &frameReader{buf: payload}
	estimator, err := r.str(1<<10, "estimator name")
	if err != nil {
		return "", nil, err
	}
	n, err := r.count(MaxBatchItems, "answer")
	if err != nil {
		return "", nil, err
	}
	answers := make([]BatchAnswer, n)
	for i := range answers {
		if r.off >= len(r.buf) {
			return "", nil, fmt.Errorf("%w: truncated answer flags", ErrFrame)
		}
		flags := r.buf[r.off]
		r.off++
		if flags&^7 != 0 {
			return "", nil, fmt.Errorf("%w: answer %d has unknown flag bits %#x", ErrFrame, i, flags)
		}
		a := BatchAnswer{Cached: flags&1 != 0, IsGroup: flags&2 != 0}
		switch {
		case flags&4 != 0:
			msg, err := r.str(1<<12, "error message")
			if err != nil {
				return "", nil, err
			}
			if msg == "" {
				return "", nil, fmt.Errorf("%w: answer %d flags an error with an empty message", ErrFrame, i)
			}
			a.Error = msg
		case a.IsGroup:
			ngroups, err := r.count(1<<20, "group")
			if err != nil {
				return "", nil, err
			}
			if ngroups > 0 {
				a.Groups = make([]BatchGroup, ngroups)
			}
			for g := range a.Groups {
				nv, err := r.count(1<<8, "group value")
				if err != nil {
					return "", nil, err
				}
				values := make([]int, nv)
				for j := range values {
					v, err := r.uvarint()
					if err != nil {
						return "", nil, err
					}
					values[j] = int(v)
				}
				est, err := r.float()
				if err != nil {
					return "", nil, err
				}
				a.Groups[g] = BatchGroup{Values: values, Estimate: est}
			}
		default:
			c, err := r.float()
			if err != nil {
				return "", nil, err
			}
			a.Count = c
		}
		answers[i] = a
	}
	if err := r.done(); err != nil {
		return "", nil, err
	}
	return estimator, answers, nil
}
