// Package stats implements the statistics subsystem of EntropyDB (Sec. 3.1
// and Sec. 4.3 of the paper): the complete families of 1-dimensional
// per-value statistics, the selected 2-dimensional range statistics, the
// chi-squared correlation used to rank attribute pairs, the two pair
// selection policies (correlation-only vs. attribute-cover), and the three
// bucket-selection heuristics LARGE single cell, ZERO single cell, and
// COMPOSITE (KD-tree).
package stats

import (
	"fmt"
	"sort"

	"repro/internal/polynomial"
	"repro/internal/query"
	"repro/internal/relation"
)

// Statistic is one entry (c_j, s_j) of Φ: a conjunction of per-attribute
// ranges together with the observed count s_j = |σ_π(I)|.
type Statistic struct {
	// Attrs are the sorted attribute indexes the statistic constrains.
	Attrs []int
	// Ranges are the inclusive value ranges, aligned with Attrs.
	Ranges []query.Range
	// Count is the observed value s_j.
	Count float64
}

// Is1D reports whether the statistic is a single-attribute point statistic.
func (s Statistic) Is1D() bool {
	return len(s.Attrs) == 1 && s.Ranges[0].Lo == s.Ranges[0].Hi
}

// Predicate converts the statistic's structural part into a query predicate
// over a relation with numAttrs attributes.
func (s Statistic) Predicate(numAttrs int) *query.Predicate {
	p := query.NewPredicate(numAttrs)
	for k, a := range s.Attrs {
		p.Where(a, query.ValueIn(s.Ranges[k]))
	}
	return p
}

// Spec converts a multi-dimensional statistic to its polynomial
// specification.
func (s Statistic) Spec() polynomial.MultiStatSpec {
	return polynomial.MultiStatSpec{
		Attrs:  append([]int(nil), s.Attrs...),
		Ranges: append([]query.Range(nil), s.Ranges...),
	}
}

// String renders the statistic.
func (s Statistic) String() string {
	return fmt.Sprintf("%v%v = %g", s.Attrs, s.Ranges, s.Count)
}

// Set is the full collection Φ of statistics over one relation: the complete
// 1-dimensional families for every attribute plus the selected
// multi-dimensional statistics.
type Set struct {
	// N is the relation cardinality the statistics were computed from.
	N int
	// DomainSizes are the active-domain sizes [N_1 .. N_m].
	DomainSizes []int
	// OneD holds, for every attribute i and value v, the count
	// |σ_{A_i = v}(I)|. The family is complete and overcomplete: the counts
	// of one attribute sum to N.
	OneD [][]float64
	// Multi holds the selected multi-dimensional statistics.
	Multi []Statistic
}

// NewSet computes the complete 1-dimensional statistics of the relation and
// returns a Set with no multi-dimensional statistics yet.
func NewSet(rel *relation.Relation) *Set {
	sch := rel.Schema()
	s := &Set{
		N:           rel.NumRows(),
		DomainSizes: sch.DomainSizes(),
		OneD:        make([][]float64, sch.NumAttrs()),
	}
	for a := 0; a < sch.NumAttrs(); a++ {
		hist := rel.Histogram1D(a)
		col := make([]float64, len(hist))
		for v, c := range hist {
			col[v] = float64(c)
		}
		s.OneD[a] = col
	}
	return s
}

// Clone returns a deep copy of the statistic set. Refresh paths clone
// before applying deltas so the set a served summary answers from stays
// immutable.
func (s *Set) Clone() *Set {
	c := &Set{
		N:           s.N,
		DomainSizes: append([]int(nil), s.DomainSizes...),
		OneD:        make([][]float64, len(s.OneD)),
		Multi:       make([]Statistic, len(s.Multi)),
	}
	for a, col := range s.OneD {
		c.OneD[a] = append([]float64(nil), col...)
	}
	for j, st := range s.Multi {
		c.Multi[j] = Statistic{
			Attrs:  append([]int(nil), st.Attrs...),
			Ranges: append([]query.Range(nil), st.Ranges...),
			Count:  st.Count,
		}
	}
	return c
}

// ApplyDelta folds a batch of appended tuples into the counts: N, every
// 1-dimensional family, and the counts of the existing multi-dimensional
// statistics. The structural part of the set (which statistics exist, and
// over which ranges) is unchanged — that is what makes the incremental
// update sound: the statistics stay the complete families of Sec. 3.1 over
// the grown relation, just with refreshed observations. Cost is
// O(delta rows · (attrs + multi statistics)) — no rescan of the base data.
func (s *Set) ApplyDelta(delta *relation.Relation) error {
	sizes := delta.Schema().DomainSizes()
	if len(sizes) != len(s.DomainSizes) {
		return fmt.Errorf("stats: delta has %d attributes, set has %d", len(sizes), len(s.DomainSizes))
	}
	for a, n := range sizes {
		if n != s.DomainSizes[a] {
			return fmt.Errorf("stats: delta domain size %d for attribute %d, set has %d", n, a, s.DomainSizes[a])
		}
	}
	for a := range s.OneD {
		for v, c := range delta.Histogram1D(a) {
			s.OneD[a][v] += float64(c)
		}
	}
	for j := range s.Multi {
		st := &s.Multi[j]
		st.Count += float64(delta.Count(st.Predicate(len(sizes))))
	}
	s.N += delta.NumRows()
	return nil
}

// AddMulti appends multi-dimensional statistics, verifying that statistics
// over the same attribute set are pairwise disjoint (an assumption of the
// compression in Sec. 4.1).
func (s *Set) AddMulti(stats ...Statistic) error {
	for _, st := range stats {
		if len(st.Attrs) < 2 {
			return fmt.Errorf("stats: multi-dimensional statistic needs at least two attributes, got %v", st.Attrs)
		}
		if len(st.Attrs) != len(st.Ranges) {
			return fmt.Errorf("stats: statistic has %d attributes but %d ranges", len(st.Attrs), len(st.Ranges))
		}
		if !sort.IntsAreSorted(st.Attrs) {
			return fmt.Errorf("stats: statistic attributes must be sorted, got %v", st.Attrs)
		}
		for k, a := range st.Attrs {
			if a < 0 || a >= len(s.DomainSizes) {
				return fmt.Errorf("stats: attribute %d out of range", a)
			}
			r := st.Ranges[k]
			if r.Empty() || r.Lo < 0 || r.Hi >= s.DomainSizes[a] {
				return fmt.Errorf("stats: range %v out of domain for attribute %d", r, a)
			}
		}
		for _, existing := range s.Multi {
			if sameAttrs(existing.Attrs, st.Attrs) && overlaps(existing, st) {
				return fmt.Errorf("stats: statistics %v and %v over the same attributes overlap", existing, st)
			}
		}
		s.Multi = append(s.Multi, st)
	}
	return nil
}

func sameAttrs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func overlaps(a, b Statistic) bool {
	for k := range a.Attrs {
		if !a.Ranges[k].Overlaps(b.Ranges[k]) {
			return false
		}
	}
	return true
}

// NumStatistics returns the total number of statistics (1D + multi).
func (s *Set) NumStatistics() int {
	total := len(s.Multi)
	for _, col := range s.OneD {
		total += len(col)
	}
	return total
}

// MultiSpecs returns the polynomial specifications of the multi-dimensional
// statistics, index-aligned with Multi.
func (s *Set) MultiSpecs() []polynomial.MultiStatSpec {
	specs := make([]polynomial.MultiStatSpec, len(s.Multi))
	for j, st := range s.Multi {
		specs[j] = st.Spec()
	}
	return specs
}

// Budget returns the multi-dimensional budget usage B_a (distinct attribute
// sets) and the total number of multi-dimensional statistics.
func (s *Set) Budget() (attributeSets, total int) {
	seen := make(map[string]struct{})
	for _, st := range s.Multi {
		seen[fmt.Sprint(st.Attrs)] = struct{}{}
	}
	return len(seen), len(s.Multi)
}
