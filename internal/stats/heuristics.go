package stats

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Heuristic selects the Bs 2-dimensional range statistics for one attribute
// pair (Sec. 4.3).
type Heuristic int

const (
	// LargeSingleCell picks the Bs most populous (u1, u2) point cells.
	LargeSingleCell Heuristic = iota
	// ZeroSingleCell picks Bs empty cells first (so the MaxEnt model learns
	// where "phantom" tuples must not appear), falling back to the most
	// populous cells when fewer than Bs cells are empty.
	ZeroSingleCell
	// Composite partitions the 2D space into Bs disjoint rectangles with a
	// KD-tree whose splits minimize the within-partition sum of squared
	// deviation from the mean.
	Composite
)

// String returns the paper's name of the heuristic.
func (h Heuristic) String() string {
	switch h {
	case LargeSingleCell:
		return "LARGE"
	case ZeroSingleCell:
		return "ZERO"
	case Composite:
		return "COMPOSITE"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// ParseHeuristic converts the paper's heuristic name to the enum.
func ParseHeuristic(name string) (Heuristic, error) {
	switch name {
	case "LARGE", "large":
		return LargeSingleCell, nil
	case "ZERO", "zero":
		return ZeroSingleCell, nil
	case "COMPOSITE", "composite":
		return Composite, nil
	default:
		return 0, fmt.Errorf("stats: unknown heuristic %q", name)
	}
}

// SelectPairStatistics computes the 2D statistics for attribute pair
// (a1, a2) of the relation under the given heuristic and per-pair budget.
// Attribute indexes in the returned statistics are sorted.
func SelectPairStatistics(rel *relation.Relation, a1, a2 int, budget int, h Heuristic) ([]Statistic, error) {
	if a1 == a2 {
		return nil, fmt.Errorf("stats: 2D statistic needs two distinct attributes, got %d twice", a1)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("stats: per-pair budget must be positive, got %d", budget)
	}
	if a1 > a2 {
		a1, a2 = a2, a1
	}
	joint := rel.Histogram2D(a1, a2)
	switch h {
	case LargeSingleCell:
		return singleCells(a1, a2, joint, budget, false), nil
	case ZeroSingleCell:
		return singleCells(a1, a2, joint, budget, true), nil
	case Composite:
		return compositeRectangles(a1, a2, joint, budget), nil
	default:
		return nil, fmt.Errorf("stats: unknown heuristic %v", h)
	}
}

// SelectMulti runs the full multi-dimensional statistic selection pipeline
// of Sec. 4.3 against the relation: rank every attribute pair by
// correlation, choose at most pairBudget pairs under the policy, compute
// perPairBudget 2D statistics for each chosen pair with the heuristic, and
// add them to the set. It returns the chosen pairs for reporting.
func SelectMulti(rel *relation.Relation, set *Set, pairBudget, perPairBudget int, policy PairPolicy, h Heuristic) ([]PairCorrelation, error) {
	if pairBudget <= 0 {
		return nil, nil
	}
	ranked := RankPairs(rel, nil)
	chosen := SelectPairs(ranked, pairBudget, policy)
	for _, pc := range chosen {
		sts, err := SelectPairStatistics(rel, pc.A1, pc.A2, perPairBudget, h)
		if err != nil {
			return nil, err
		}
		if err := set.AddMulti(sts...); err != nil {
			return nil, err
		}
	}
	return chosen, nil
}

type cell struct {
	v1, v2 int
	count  int
}

// singleCells implements the LARGE and ZERO single-cell heuristics.
func singleCells(a1, a2 int, joint [][]int, budget int, zeroFirst bool) []Statistic {
	var cells []cell
	for v1 := range joint {
		for v2 := range joint[v1] {
			cells = append(cells, cell{v1: v1, v2: v2, count: joint[v1][v2]})
		}
	}
	var chosen []cell
	if zeroFirst {
		var zeros, nonZeros []cell
		for _, c := range cells {
			if c.count == 0 {
				zeros = append(zeros, c)
			} else {
				nonZeros = append(nonZeros, c)
			}
		}
		sortCellsDeterministic(zeros)
		sortCellsByCount(nonZeros)
		chosen = append(chosen, zeros...)
		if len(chosen) > budget {
			chosen = chosen[:budget]
		} else {
			remaining := budget - len(chosen)
			if remaining > len(nonZeros) {
				remaining = len(nonZeros)
			}
			chosen = append(chosen, nonZeros[:remaining]...)
		}
	} else {
		sortCellsByCount(cells)
		if budget > len(cells) {
			budget = len(cells)
		}
		chosen = cells[:budget]
	}
	out := make([]Statistic, 0, len(chosen))
	for _, c := range chosen {
		out = append(out, Statistic{
			Attrs:  []int{a1, a2},
			Ranges: []query.Range{query.Point(c.v1), query.Point(c.v2)},
			Count:  float64(c.count),
		})
	}
	return out
}

func sortCellsByCount(cells []cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].count != cells[j].count {
			return cells[i].count > cells[j].count
		}
		if cells[i].v1 != cells[j].v1 {
			return cells[i].v1 < cells[j].v1
		}
		return cells[i].v2 < cells[j].v2
	})
}

func sortCellsDeterministic(cells []cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].v1 != cells[j].v1 {
			return cells[i].v1 < cells[j].v1
		}
		return cells[i].v2 < cells[j].v2
	})
}

// rect is a node of the KD-tree over the 2D cell grid: an inclusive
// rectangle of cells together with aggregate statistics used to score
// splits.
type rect struct {
	r1, r2 query.Range
	count  int64
	sse    float64
}

// compositeRectangles implements the COMPOSITE heuristic: an adaptation of a
// KD-tree that repeatedly splits the rectangle with the largest
// sum-of-squared-error, alternating split dimensions, choosing the split
// value with the lowest post-split SSE (the paper's "lowest sum squared
// average value difference"), until the number of leaves reaches the budget.
func compositeRectangles(a1, a2 int, joint [][]int, budget int) []Statistic {
	n1 := len(joint)
	n2 := 0
	if n1 > 0 {
		n2 = len(joint[0])
	}
	if n1 == 0 || n2 == 0 {
		return nil
	}
	// Prefix sums over counts and squared counts for O(1) rectangle
	// aggregates.
	sum := newPrefix2D(joint, false)
	sumSq := newPrefix2D(joint, true)

	full := query.NewRange(0, n1-1)
	full2 := query.NewRange(0, n2-1)
	leaves := []rect{makeRect(full, full2, sum, sumSq)}

	for len(leaves) < budget {
		// Pick the leaf with the largest SSE that can still be split.
		best := -1
		for i, lf := range leaves {
			if lf.r1.Len() <= 1 && lf.r2.Len() <= 1 {
				continue
			}
			if best < 0 || lf.sse > leaves[best].sse ||
				(lf.sse == leaves[best].sse && lf.r1.Len()*lf.r2.Len() > leaves[best].r1.Len()*leaves[best].r2.Len()) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		left, right, ok := splitRect(leaves[best], sum, sumSq)
		if !ok {
			break
		}
		leaves[best] = left
		leaves = append(leaves, right)
	}

	out := make([]Statistic, 0, len(leaves))
	for _, lf := range leaves {
		out = append(out, Statistic{
			Attrs:  []int{a1, a2},
			Ranges: []query.Range{lf.r1, lf.r2},
			Count:  float64(lf.count),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ranges[0].Lo != out[j].Ranges[0].Lo {
			return out[i].Ranges[0].Lo < out[j].Ranges[0].Lo
		}
		return out[i].Ranges[1].Lo < out[j].Ranges[1].Lo
	})
	return out
}

// splitRect tries both dimensions and every split point, returning the two
// halves of the split minimizing the combined SSE.
func splitRect(lf rect, sum, sumSq *prefix2D) (rect, rect, bool) {
	bestSSE := -1.0
	var bestLeft, bestRight rect
	found := false

	try := func(left, right rect) {
		combined := left.sse + right.sse
		if !found || combined < bestSSE {
			found = true
			bestSSE = combined
			bestLeft, bestRight = left, right
		}
	}

	if lf.r1.Len() > 1 {
		for cut := lf.r1.Lo; cut < lf.r1.Hi; cut++ {
			left := makeRect(query.NewRange(lf.r1.Lo, cut), lf.r2, sum, sumSq)
			right := makeRect(query.NewRange(cut+1, lf.r1.Hi), lf.r2, sum, sumSq)
			try(left, right)
		}
	}
	if lf.r2.Len() > 1 {
		for cut := lf.r2.Lo; cut < lf.r2.Hi; cut++ {
			left := makeRect(lf.r1, query.NewRange(lf.r2.Lo, cut), sum, sumSq)
			right := makeRect(lf.r1, query.NewRange(cut+1, lf.r2.Hi), sum, sumSq)
			try(left, right)
		}
	}
	if !found {
		return rect{}, rect{}, false
	}
	return bestLeft, bestRight, true
}

func makeRect(r1, r2 query.Range, sum, sumSq *prefix2D) rect {
	total := sum.rectSum(r1, r2)
	totalSq := sumSq.rectSum(r1, r2)
	cells := float64(r1.Len() * r2.Len())
	mean := float64(total) / cells
	// SSE = Σ c² − cells · mean².
	sse := float64(totalSq) - cells*mean*mean
	if sse < 0 {
		sse = 0
	}
	return rect{r1: r1, r2: r2, count: total, sse: sse}
}

// prefix2D holds 2D prefix sums of the (optionally squared) joint counts.
type prefix2D struct {
	n1, n2 int
	data   []int64
}

func newPrefix2D(joint [][]int, squared bool) *prefix2D {
	n1 := len(joint)
	n2 := 0
	if n1 > 0 {
		n2 = len(joint[0])
	}
	p := &prefix2D{n1: n1, n2: n2, data: make([]int64, (n1+1)*(n2+1))}
	at := func(i, j int) *int64 { return &p.data[i*(n2+1)+j] }
	for i := 1; i <= n1; i++ {
		for j := 1; j <= n2; j++ {
			v := int64(joint[i-1][j-1])
			if squared {
				v *= int64(joint[i-1][j-1])
			}
			*at(i, j) = v + *at(i-1, j) + *at(i, j-1) - *at(i-1, j-1)
		}
	}
	return p
}

func (p *prefix2D) rectSum(r1, r2 query.Range) int64 {
	at := func(i, j int) int64 { return p.data[i*(p.n2+1)+j] }
	return at(r1.Hi+1, r2.Hi+1) - at(r1.Lo, r2.Hi+1) - at(r1.Hi+1, r2.Lo) + at(r1.Lo, r2.Lo)
}
