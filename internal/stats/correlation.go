package stats

import (
	"math"
	"sort"

	"repro/internal/relation"
)

// ChiSquared computes the chi-squared statistic of independence between two
// attributes of the relation (the quantity the paper uses to rank
// attribute-pair correlation in Sec. 4.3; it also mentions using it to test
// whether a pair is close to uniform/independent).
func ChiSquared(rel *relation.Relation, a1, a2 int) float64 {
	joint := rel.Histogram2D(a1, a2)
	n1 := len(joint)
	if n1 == 0 {
		return 0
	}
	n2 := len(joint[0])
	rowSum := make([]float64, n1)
	colSum := make([]float64, n2)
	total := 0.0
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			c := float64(joint[i][j])
			rowSum[i] += c
			colSum[j] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	chi := 0.0
	for i := 0; i < n1; i++ {
		if rowSum[i] == 0 {
			continue
		}
		for j := 0; j < n2; j++ {
			if colSum[j] == 0 {
				continue
			}
			expected := rowSum[i] * colSum[j] / total
			diff := float64(joint[i][j]) - expected
			chi += diff * diff / expected
		}
	}
	return chi
}

// CramersV normalizes the chi-squared statistic to [0, 1] so that pairs over
// domains of different sizes are comparable.
func CramersV(rel *relation.Relation, a1, a2 int) float64 {
	chi := ChiSquared(rel, a1, a2)
	n := float64(rel.NumRows())
	if n == 0 {
		return 0
	}
	k1 := rel.Schema().Attr(a1).Size()
	k2 := rel.Schema().Attr(a2).Size()
	minDim := float64(k1 - 1)
	if k2-1 < k1-1 {
		minDim = float64(k2 - 1)
	}
	if minDim <= 0 {
		return 0
	}
	return math.Sqrt(chi / (n * minDim))
}

// PairCorrelation is the correlation score of one attribute pair.
type PairCorrelation struct {
	A1, A2 int
	// Chi2 is the raw chi-squared statistic.
	Chi2 float64
	// V is Cramér's V, the normalized correlation in [0,1].
	V float64
}

// RankPairs computes the correlation of every attribute pair drawn from the
// candidate attribute list (all attributes when candidates is nil) and
// returns them sorted from most to least correlated (by Cramér's V, with
// chi-squared as a tie-breaker).
func RankPairs(rel *relation.Relation, candidates []int) []PairCorrelation {
	if candidates == nil {
		candidates = make([]int, rel.NumAttrs())
		for i := range candidates {
			candidates[i] = i
		}
	}
	var out []PairCorrelation
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			a1, a2 := candidates[i], candidates[j]
			out = append(out, PairCorrelation{
				A1:   a1,
				A2:   a2,
				Chi2: ChiSquared(rel, a1, a2),
				V:    CramersV(rel, a1, a2),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].V != out[j].V {
			return out[i].V > out[j].V
		}
		return out[i].Chi2 > out[j].Chi2
	})
	return out
}

// PairPolicy selects which attribute pairs receive 2D statistics given a
// breadth budget B_a (Sec. 4.3).
type PairPolicy int

const (
	// ByCorrelation picks the B_a most correlated pairs subject to each new
	// pair containing at least one attribute not already covered by a more
	// correlated chosen pair.
	ByCorrelation PairPolicy = iota
	// ByCover picks pairs greedily by correlation but requires every new
	// pair to cover at least one attribute no chosen pair covers yet, which
	// maximizes attribute cover for the same budget.
	ByCover
)

// SelectPairs applies the policy to the ranked pair list and returns at most
// budget pairs.
func SelectPairs(ranked []PairCorrelation, budget int, policy PairPolicy) []PairCorrelation {
	if budget <= 0 {
		return nil
	}
	var chosen []PairCorrelation
	covered := make(map[int]bool)
	for _, pc := range ranked {
		if len(chosen) >= budget {
			break
		}
		switch policy {
		case ByCorrelation:
			// Require at least one attribute not included in any previously
			// chosen, more correlated pair.
			if covered[pc.A1] && covered[pc.A2] {
				continue
			}
		case ByCover:
			// Require at least one newly covered attribute; prefer pairs
			// covering two new attributes when possible by a two-pass scan.
			if covered[pc.A1] && covered[pc.A2] {
				continue
			}
		}
		chosen = append(chosen, pc)
		covered[pc.A1] = true
		covered[pc.A2] = true
	}
	if policy == ByCover {
		chosen = improveCover(ranked, chosen, budget)
	}
	return chosen
}

// improveCover post-processes a correlation-greedy choice to maximize the
// number of covered attributes: while an unchosen pair would cover two
// currently uncovered attributes, it replaces the least-correlated chosen
// pair that contributes no unique attribute.
func improveCover(ranked, chosen []PairCorrelation, budget int) []PairCorrelation {
	covered := make(map[int]int)
	for _, pc := range chosen {
		covered[pc.A1]++
		covered[pc.A2]++
	}
	for _, cand := range ranked {
		if len(chosen) >= budget && !hasRedundant(chosen, covered) {
			break
		}
		if covered[cand.A1] > 0 || covered[cand.A2] > 0 {
			continue
		}
		if alreadyChosen(chosen, cand) {
			continue
		}
		if len(chosen) < budget {
			chosen = append(chosen, cand)
			covered[cand.A1]++
			covered[cand.A2]++
			continue
		}
		// Replace the least correlated redundant pair.
		idx := -1
		for i := len(chosen) - 1; i >= 0; i-- {
			pc := chosen[i]
			if covered[pc.A1] > 1 && covered[pc.A2] > 1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		old := chosen[idx]
		covered[old.A1]--
		covered[old.A2]--
		chosen[idx] = cand
		covered[cand.A1]++
		covered[cand.A2]++
	}
	return chosen
}

func hasRedundant(chosen []PairCorrelation, covered map[int]int) bool {
	for _, pc := range chosen {
		if covered[pc.A1] > 1 && covered[pc.A2] > 1 {
			return true
		}
	}
	return false
}

func alreadyChosen(chosen []PairCorrelation, cand PairCorrelation) bool {
	for _, pc := range chosen {
		if pc.A1 == cand.A1 && pc.A2 == cand.A2 {
			return true
		}
	}
	return false
}
