package stats

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
)

func deltaTestSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustCategorical("a", []string{"u", "v", "w", "x"}),
		schema.MustCategorical("b", []string{"p", "q", "r"}),
		schema.MustBinned("c", 0, 100, 5),
	)
}

func randomRelation(sch *schema.Schema, rows int, rng *rand.Rand) *relation.Relation {
	rel := relation.NewWithCapacity(sch, rows)
	tuple := make([]int, sch.NumAttrs())
	for i := 0; i < rows; i++ {
		for a := range tuple {
			tuple[a] = rng.Intn(sch.Attr(a).Size())
		}
		rel.MustAppend(tuple)
	}
	return rel
}

// TestApplyDeltaMatchesFullRecount appends random deltas to a random base
// and checks that incrementally updated statistics are exactly equal (counts
// are integers, so float64 addition is exact) to statistics recomputed from
// scratch over the combined relation.
func TestApplyDeltaMatchesFullRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sch := deltaTestSchema()
	for trial := 0; trial < 20; trial++ {
		baseRows := 50 + rng.Intn(400)
		deltaRows := 1 + rng.Intn(200)
		mut := relation.NewMutable(randomRelation(sch, baseRows, rng))

		base, _ := mut.Freeze()
		set := NewSet(base)
		// Give the set some multi statistics to maintain.
		multi, err := SelectPairStatistics(base, 0, 1, 4, Composite)
		if err != nil {
			t.Fatal(err)
		}
		if err := set.AddMulti(multi...); err != nil {
			t.Fatal(err)
		}

		tuple := make([]int, sch.NumAttrs())
		for i := 0; i < deltaRows; i++ {
			for a := range tuple {
				tuple[a] = rng.Intn(sch.Attr(a).Size())
			}
			if err := mut.Append(tuple); err != nil {
				t.Fatal(err)
			}
		}
		full, _ := mut.Freeze()
		delta, err := full.Slice(baseRows, full.NumRows())
		if err != nil {
			t.Fatal(err)
		}

		clone := set.Clone()
		if err := clone.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}

		// Recount from scratch with the same structure.
		want := NewSet(full)
		for _, st := range set.Multi {
			st.Count = float64(full.Count(st.Predicate(sch.NumAttrs())))
			if err := want.AddMulti(st); err != nil {
				t.Fatal(err)
			}
		}

		if clone.N != want.N {
			t.Fatalf("trial %d: N = %d, want %d", trial, clone.N, want.N)
		}
		for a := range clone.OneD {
			for v := range clone.OneD[a] {
				if clone.OneD[a][v] != want.OneD[a][v] {
					t.Fatalf("trial %d: OneD[%d][%d] = %g, want %g", trial, a, v, clone.OneD[a][v], want.OneD[a][v])
				}
			}
		}
		for j := range clone.Multi {
			if clone.Multi[j].Count != want.Multi[j].Count {
				t.Fatalf("trial %d: Multi[%d].Count = %g, want %g", trial, j, clone.Multi[j].Count, want.Multi[j].Count)
			}
		}

		// The base set must be untouched (Clone isolated it).
		if set.N != baseRows {
			t.Fatalf("trial %d: ApplyDelta mutated the original set (N=%d)", trial, set.N)
		}
	}
}

func TestApplyDeltaRejectsSchemaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := NewSet(randomRelation(deltaTestSchema(), 10, rng))

	other := schema.MustNew(schema.MustCategorical("a", []string{"u", "v"}))
	if err := set.ApplyDelta(randomRelation(other, 5, rng)); err == nil {
		t.Fatal("ApplyDelta accepted a delta with a different arity")
	}

	sameArity := schema.MustNew(
		schema.MustCategorical("a", []string{"u", "v", "w", "x"}),
		schema.MustCategorical("b", []string{"p", "q"}), // size 2, set has 3
		schema.MustBinned("c", 0, 100, 5),
	)
	if err := set.ApplyDelta(randomRelation(sameArity, 5, rng)); err == nil {
		t.Fatal("ApplyDelta accepted a delta with mismatched domain sizes")
	}
}
