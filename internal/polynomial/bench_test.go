package polynomial

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// benchSystem builds a realistically shaped system: 6 attributes with
// domain sizes up to 64 and 16 pairwise 2D statistics over three
// attribute pairs — the shape a B_a=3, B_s=16 summary produces.
func benchSystem(b *testing.B) (*System, *query.Predicate) {
	b.Helper()
	sizes := []int{64, 32, 16, 8, 8, 4}
	rng := rand.New(rand.NewSource(31))
	var specs []MultiStatSpec
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {0, 4}} {
		for k := 0; k < 16; k++ {
			a1, a2 := pair[0], pair[1]
			// Disjoint point cells along a diagonal stripe keep the specs
			// non-overlapping per pair, as statistic selection guarantees.
			v1 := (k * 3) % sizes[a1]
			v2 := k % sizes[a2]
			specs = append(specs, MultiStatSpec{
				Attrs:  []int{a1, a2},
				Ranges: []query.Range{query.Point(v1), query.Point(v2)},
			})
		}
	}
	comp, err := NewCompressed(sizes, specs)
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(comp)
	for _, ref := range sys.Variables() {
		sys.Set(ref, 0.05+rng.Float64())
	}
	pred := query.NewPredicate(len(sizes)).
		WhereRange(0, 4, 40).
		WhereEq(2, 3).
		WhereIn(4, 0, 2, 5)
	return sys, pred
}

func BenchmarkSystemEvalFull(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil) // warm the prefix caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Eval(nil)
	}
}

func BenchmarkSystemEvalMasked(b *testing.B) {
	sys, pred := benchSystem(b)
	sys.Eval(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Eval(pred)
	}
}

func BenchmarkSystemDerivOneD(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, nil)
	}
}

func BenchmarkSystemDerivOneDMasked(b *testing.B) {
	sys, pred := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, pred)
	}
}

func BenchmarkSystemDerivMulti(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: Multi, Stat: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSolverShapedSweep measures one synthetic coordinate sweep —
// an Eval plus a Deriv per variable — the solver's inner-loop shape.
func BenchmarkSolverShapedSweep(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	refs := sys.Variables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		_ = sys.Eval(nil)
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSolverShapedSweepUpdate is the full coordinate-update shape:
// a variable write (incremental cache maintenance) followed by the Eval
// and Deriv the closed-form update reads — what one solver coordinate
// step actually costs.
func BenchmarkSolverShapedSweepUpdate(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	refs := sys.Variables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		sys.Set(ref, 0.5+float64(i%7)*0.1)
		_ = sys.Eval(nil)
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSystemSetVar isolates the incremental maintenance cost of a
// single-variable update.
func BenchmarkSystemSetVar(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Set(ref, 0.5+float64(i%7)*0.1)
	}
}

// BenchmarkSystemRecompute measures the full cache rebuild — the per-sweep
// drift resynchronization, and the cost the incremental path saves per
// coordinate update.
func BenchmarkSystemRecompute(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Recompute()
	}
}
