package polynomial

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// benchSystem builds a realistically shaped system: 6 attributes with
// domain sizes up to 64 and 16 pairwise 2D statistics over three
// attribute pairs — the shape a B_a=3, B_s=16 summary produces.
func benchSystem(tb testing.TB) (*System, *query.Predicate) {
	tb.Helper()
	sizes := []int{64, 32, 16, 8, 8, 4}
	rng := rand.New(rand.NewSource(31))
	var specs []MultiStatSpec
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {0, 4}} {
		for k := 0; k < 16; k++ {
			a1, a2 := pair[0], pair[1]
			// Disjoint point cells along a diagonal stripe keep the specs
			// non-overlapping per pair, as statistic selection guarantees.
			v1 := (k * 3) % sizes[a1]
			v2 := k % sizes[a2]
			specs = append(specs, MultiStatSpec{
				Attrs:  []int{a1, a2},
				Ranges: []query.Range{query.Point(v1), query.Point(v2)},
			})
		}
	}
	comp, err := NewCompressed(sizes, specs)
	if err != nil {
		tb.Fatal(err)
	}
	sys := NewSystem(comp)
	for _, ref := range sys.Variables() {
		sys.Set(ref, 0.05+rng.Float64())
	}
	pred := query.NewPredicate(len(sizes)).
		WhereRange(0, 4, 40).
		WhereEq(2, 3).
		WhereIn(4, 0, 2, 5)
	return sys, pred
}

func BenchmarkSystemEvalFull(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil) // warm the prefix caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Eval(nil)
	}
}

func BenchmarkSystemEvalMasked(b *testing.B) {
	sys, pred := benchSystem(b)
	sys.Eval(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Eval(pred)
	}
}

// selectivePreds are the predicate shapes of the pruned-eval benchmarks:
// real workloads mostly constrain 1–2 attributes, and the pruned path's
// win grows with the fraction of terms the constrained set leaves
// untouched. The all-attr variant is the adversarial shape where nearly
// every term is touched and the delta bookkeeping buys nothing.
func selectivePreds(m int) map[string]*query.Predicate {
	return map[string]*query.Predicate{
		// One stat-bearing attribute, equality mask (the canonical
		// "how many tuples have A=v" query).
		"1attr": query.NewPredicate(m).WhereEq(1, 7),
		// One attribute, but the hottest one (attr 0 occurs in two of the
		// three statistic pairs) with a wide range mask.
		"1attrHot": query.NewPredicate(m).WhereRange(0, 4, 40),
		// Two attributes from one statistic pair.
		"2attr": query.NewPredicate(m).WhereEq(2, 3).WhereIn(4, 0, 2, 5),
		// Every attribute constrained: the touched set is the whole
		// polynomial.
		"allattr": query.NewPredicate(m).
			WhereRange(0, 4, 40).
			WhereRange(1, 0, 15).
			WhereEq(2, 3).
			WhereRange(3, 1, 6).
			WhereIn(4, 0, 2, 5).
			WhereEq(5, 1),
	}
}

var selectiveOrder = []string{"1attr", "1attrHot", "2attr", "allattr"}

// BenchmarkSystemEvalMaskedSelective measures the pruned masked
// evaluation across predicate selectivities; the FullWalk twin below runs
// the identical predicates through the pre-index reference walk, so the
// ratio between the two is the pruning win per shape.
func BenchmarkSystemEvalMaskedSelective(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	preds := selectivePreds(sys.Poly().NumAttrs())
	for _, name := range selectiveOrder {
		pred := preds[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sys.Eval(pred)
			}
		})
	}
}

func BenchmarkSystemEvalMaskedFullWalk(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	preds := selectivePreds(sys.Poly().NumAttrs())
	for _, name := range selectiveOrder {
		pred := preds[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = fullWalkEval(sys, pred)
			}
		})
	}
}

// BenchmarkSystemDerivMultiMasked measures the pruned masked statistic
// derivative (the conditioned-refresh shape).
func BenchmarkSystemDerivMultiMasked(b *testing.B) {
	sys, pred := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: Multi, Stat: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, pred)
	}
}

func BenchmarkSystemDerivOneD(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, nil)
	}
}

func BenchmarkSystemDerivOneDMasked(b *testing.B) {
	sys, pred := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, pred)
	}
}

func BenchmarkSystemDerivMulti(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: Multi, Stat: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSolverShapedSweep measures one synthetic coordinate sweep —
// an Eval plus a Deriv per variable — the solver's inner-loop shape.
func BenchmarkSolverShapedSweep(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	refs := sys.Variables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		_ = sys.Eval(nil)
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSolverShapedSweepUpdate is the full coordinate-update shape:
// a variable write (incremental cache maintenance) followed by the Eval
// and Deriv the closed-form update reads — what one solver coordinate
// step actually costs.
func BenchmarkSolverShapedSweepUpdate(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	refs := sys.Variables()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		sys.Set(ref, 0.5+float64(i%7)*0.1)
		_ = sys.Eval(nil)
		_ = sys.Deriv(ref, nil)
	}
}

// BenchmarkSystemSetVar isolates the incremental maintenance cost of a
// single-variable update.
func BenchmarkSystemSetVar(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Set(ref, 0.5+float64(i%7)*0.1)
	}
}

// BenchmarkSystemRecompute measures the full cache rebuild — the per-sweep
// drift resynchronization, and the cost the incremental path saves per
// coordinate update.
func BenchmarkSystemRecompute(b *testing.B) {
	sys, _ := benchSystem(b)
	sys.Eval(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Recompute()
	}
}
