package polynomial

import (
	"fmt"

	"repro/internal/query"
)

// Naive is the brute-force sum-of-products form of the MaxEnt polynomial: it
// enumerates every tuple of the cross-product tuple space and sums the
// corresponding monomials (Eq. (5) of the paper). It exists only as a
// correctness oracle for the compressed representation and is restricted to
// small domains.
type Naive struct {
	sizes []int
	specs []MultiStatSpec
}

// maxNaiveTuples bounds the tuple space a Naive polynomial will enumerate.
const maxNaiveTuples = 1 << 22

// NewNaive creates a Naive polynomial over the given domain sizes and
// multi-dimensional statistics.
func NewNaive(domainSizes []int, specs []MultiStatSpec) (*Naive, error) {
	sizes := append([]int(nil), domainSizes...)
	d := int64(1)
	for i, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("polynomial: attribute %d has non-positive domain size %d", i, n)
		}
		d *= int64(n)
		if d > maxNaiveTuples {
			return nil, fmt.Errorf("polynomial: tuple space too large for the naive polynomial (> %d)", maxNaiveTuples)
		}
	}
	for i, s := range specs {
		if err := s.Validate(sizes); err != nil {
			return nil, fmt.Errorf("statistic %d: %w", i, err)
		}
	}
	return &Naive{sizes: sizes, specs: append([]MultiStatSpec(nil), specs...)}, nil
}

// Eval computes the masked polynomial by explicit enumeration, reading the
// variable values from the System (which must be built over the same domain
// sizes and statistics).
func (nv *Naive) Eval(sys *System, pred *query.Predicate) float64 {
	total := 0.0
	tuple := make([]int, len(nv.sizes))
	nv.enumerate(tuple, 0, func(t []int) {
		if pred != nil && !pred.Matches(t) {
			return
		}
		total += sys.TupleWeight(t)
	})
	return total
}

// Deriv computes the partial derivative of the masked polynomial with
// respect to ref by explicit enumeration.
func (nv *Naive) Deriv(sys *System, ref VarRef, pred *query.Predicate) float64 {
	total := 0.0
	tuple := make([]int, len(nv.sizes))
	nv.enumerate(tuple, 0, func(t []int) {
		if pred != nil && !pred.Matches(t) {
			return
		}
		switch ref.Kind {
		case OneD:
			if t[ref.Attr] != ref.Value {
				return
			}
			// Monomial divided by α_{attr,value}: product of the other
			// factors.
			w := 1.0
			for a, v := range t {
				if a == ref.Attr {
					continue
				}
				w *= sys.OneD(a, v)
			}
			for j, spec := range nv.specs {
				if specMatches(spec, t) {
					w *= sys.MultiVar(j)
				}
			}
			total += w
		case Multi:
			spec := nv.specs[ref.Stat]
			if !specMatches(spec, t) {
				return
			}
			w := 1.0
			for a, v := range t {
				w *= sys.OneD(a, v)
			}
			for j, sp := range nv.specs {
				if j == ref.Stat {
					continue
				}
				if specMatches(sp, t) {
					w *= sys.MultiVar(j)
				}
			}
			total += w
		}
	})
	return total
}

// NumMonomials returns the number of monomials of the sum-of-products form.
func (nv *Naive) NumMonomials() int64 {
	d := int64(1)
	for _, n := range nv.sizes {
		d *= int64(n)
	}
	return d
}

func (nv *Naive) enumerate(tuple []int, attr int, visit func([]int)) {
	if attr == len(nv.sizes) {
		visit(tuple)
		return
	}
	for v := 0; v < nv.sizes[attr]; v++ {
		tuple[attr] = v
		nv.enumerate(tuple, attr+1, visit)
	}
}
