// Package polynomial implements the factorized MaxEnt polynomial P of the
// EntropyDB summary (Lemma 3.1 and Theorem 4.1 of the paper).
//
// The uncompressed polynomial has one monomial per possible tuple, which is
// far too large to materialize. The compressed representation built here has
// one term per compatible set S of multi-dimensional statistics (plus the
// base term S = ∅), where each term is a product of per-attribute sums of
// 1-dimensional variables and of (δ_j − 1) factors — exactly the
// inclusion/exclusion form of Theorem 4.1.
//
// The package provides:
//
//   - Compressed: the structural representation (terms), built from the
//     multi-dimensional statistic specifications.
//   - System: a Compressed polynomial together with concrete variable values
//     (α for 1D statistics, δ for multi-dimensional statistics), supporting
//     masked evaluation (Sec. 4.2: "set the non-qualifying 1D variables to
//     0") and analytic partial derivatives.
//   - Naive: a brute-force reference that enumerates the tuple space, used
//     by tests to validate the compression and the query-answering formulas.
package polynomial

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/query"
)

// VarKind distinguishes the two families of polynomial variables.
type VarKind int

const (
	// OneD is an α variable attached to a complete 1-dimensional statistic
	// (A_i = v).
	OneD VarKind = iota
	// Multi is a δ variable attached to a multi-dimensional range statistic.
	Multi
)

// VarRef identifies a single polynomial variable.
type VarRef struct {
	Kind  VarKind
	Attr  int // OneD: attribute index
	Value int // OneD: encoded domain value
	Stat  int // Multi: index of the multi-dimensional statistic
}

// String renders the variable reference.
func (v VarRef) String() string {
	if v.Kind == OneD {
		return fmt.Sprintf("α[%d,%d]", v.Attr, v.Value)
	}
	return fmt.Sprintf("δ[%d]", v.Stat)
}

// MultiStatSpec is the structural part of a multi-dimensional statistic: a
// conjunction of per-attribute inclusive ranges over a subset of attributes.
type MultiStatSpec struct {
	Attrs  []int         // sorted attribute indexes
	Ranges []query.Range // aligned with Attrs
}

// Validate checks structural invariants of the specification.
func (s MultiStatSpec) Validate(domainSizes []int) error {
	if len(s.Attrs) == 0 {
		return fmt.Errorf("polynomial: multi-dimensional statistic needs at least one attribute")
	}
	if len(s.Attrs) != len(s.Ranges) {
		return fmt.Errorf("polynomial: %d attributes but %d ranges", len(s.Attrs), len(s.Ranges))
	}
	if !sort.IntsAreSorted(s.Attrs) {
		return fmt.Errorf("polynomial: statistic attributes must be sorted, got %v", s.Attrs)
	}
	for i := 1; i < len(s.Attrs); i++ {
		if s.Attrs[i] == s.Attrs[i-1] {
			return fmt.Errorf("polynomial: duplicate attribute %d in statistic", s.Attrs[i])
		}
	}
	for k, a := range s.Attrs {
		if a < 0 || a >= len(domainSizes) {
			return fmt.Errorf("polynomial: attribute index %d out of range [0,%d)", a, len(domainSizes))
		}
		r := s.Ranges[k]
		if r.Empty() || r.Lo < 0 || r.Hi >= domainSizes[a] {
			return fmt.Errorf("polynomial: range %v out of domain [0,%d) for attribute %d", r, domainSizes[a], a)
		}
	}
	return nil
}

// rangeOn returns the statistic's range on attribute a and whether the
// statistic constrains a.
func (s MultiStatSpec) rangeOn(a int) (query.Range, bool) {
	i := sort.SearchInts(s.Attrs, a)
	if i < len(s.Attrs) && s.Attrs[i] == a {
		return s.Ranges[i], true
	}
	return query.Range{}, false
}

// term is one summand of the compressed polynomial: the set I of attributes
// covered by the statistics in S, the intersected per-attribute ranges ρ_iS,
// and the statistic indexes S themselves. The base term has empty attrs and
// stats.
type term struct {
	attrs  []int         // sorted attribute indexes in I
	ranges []query.Range // aligned with attrs: the intersection ρ_iS
	stats  []int         // sorted multi-statistic indexes in S
}

func (t term) key() string {
	parts := make([]string, len(t.stats))
	for i, s := range t.stats {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, ",")
}

// Compressed is the factorized polynomial structure. It depends only on the
// domain sizes and the multi-dimensional statistic specifications, not on
// the variable values. Alongside the terms it keeps two inverted indexes
// that the incremental System maintenance is built on: for every α variable
// the terms whose effective range covers it, and for every δ variable the
// terms whose statistic set contains it.
type Compressed struct {
	sizes []int
	specs []MultiStatSpec
	terms []term
	// touch[a][v] lists the indexes of the terms whose effective range
	// ρ_iS on attribute a contains value v, and loose[a] the terms that do
	// not constrain attribute a at all (their factor is the full-domain
	// sum, touched by every value). Together they are exactly the terms
	// whose value changes when α_{a,v} changes, and the terms ∂P/∂α_{a,v}
	// sums over; sharing one loose list per attribute keeps the index
	// O(Σ_terms Σ_a |ρ_iS|) instead of O(terms · Σ_a N_a).
	touch [][][]int32
	loose [][]int32
	// statTerms[j] lists the indexes of the terms whose statistic set S
	// contains j — the terms carrying a (δ_j − 1) factor.
	statTerms [][]int32
	// constrained[a] lists (in term order) the indexes of the terms whose
	// attribute set I contains a — the complement of loose[a], and the
	// per-attribute half of the attribute→term index behind the pruned
	// masked evaluation: a predicate constraining attribute set S can only
	// change the *range-restricted* factors of terms in ∪_{a∈S}
	// constrained[a]; every other term keeps its cached unmasked range
	// factors and is answered by the mask-delta identity without being
	// visited. conRanges[a] is aligned with constrained[a] and carries the
	// term's effective range ρ_iS on a, so InRange masks can reject terms
	// whose buckets provably miss the mask with one interval test and no
	// term-struct dereference.
	constrained [][]int32
	conRanges   [][]query.Range
	// conBits[a] is constrained[a] as a bitset over term indexes (bit i set
	// iff a ∈ terms[i].attrs) — the posting lists in popcountable form, so
	// the exact touched-set cardinality |∪_{a∈S} constrained[a]| behind the
	// route-to-full-walk cutoff costs O(|S|·terms/64) instead of a term walk.
	conBits [][]uint64
	// attrBits[i] is the bitmask of term i's attribute set I (bit a set
	// iff a ∈ terms[i].attrs). It makes the touched(S) membership test and
	// the first-constrained-attribute dedup of the union iterator O(1).
	// nil when the schema has more than 64 attributes, which disables the
	// pruned masked paths (they fall back to the full walk).
	attrBits []uint64
}

// NewCompressed builds the compressed polynomial for the given active-domain
// sizes and multi-dimensional statistics, closing the statistic sets under
// compatible combination exactly as described after Theorem 4.1.
func NewCompressed(domainSizes []int, specs []MultiStatSpec) (*Compressed, error) {
	sizes := append([]int(nil), domainSizes...)
	for i, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("polynomial: attribute %d has non-positive domain size %d", i, n)
		}
	}
	for i, s := range specs {
		if err := s.Validate(sizes); err != nil {
			return nil, fmt.Errorf("statistic %d: %w", i, err)
		}
	}
	c := &Compressed{sizes: sizes, specs: append([]MultiStatSpec(nil), specs...)}
	c.buildTerms()
	c.buildIndexes()
	return c, nil
}

// buildTerms seeds with the base term and one singleton term per statistic,
// then repeatedly combines compatible terms until a fixpoint.
func (c *Compressed) buildTerms() {
	seen := make(map[string]struct{})
	base := term{}
	c.terms = []term{base}
	seen[base.key()] = struct{}{}

	frontier := make([]term, 0, len(c.specs))
	for j, spec := range c.specs {
		t := term{
			attrs:  append([]int(nil), spec.Attrs...),
			ranges: append([]query.Range(nil), spec.Ranges...),
			stats:  []int{j},
		}
		c.terms = append(c.terms, t)
		seen[t.key()] = struct{}{}
		frontier = append(frontier, t)
	}

	// Combine existing terms with singleton statistics until no new
	// compatible sets appear. Because every compatible set can be built by
	// adding one statistic at a time to a compatible subset, pairing the
	// frontier against singletons is sufficient to enumerate them all.
	for len(frontier) > 0 {
		var next []term
		for _, t := range frontier {
			for j := range c.specs {
				nt, ok := c.combine(t, j)
				if !ok {
					continue
				}
				k := nt.key()
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				c.terms = append(c.terms, nt)
				next = append(next, nt)
			}
		}
		frontier = next
	}

	sort.Slice(c.terms, func(i, k int) bool {
		ti, tk := c.terms[i], c.terms[k]
		if len(ti.stats) != len(tk.stats) {
			return len(ti.stats) < len(tk.stats)
		}
		return ti.key() < tk.key()
	})
}

// buildIndexes derives the inverted variable→term indexes from the final
// (sorted) term list. Must run after buildTerms: the indexes store term
// positions.
func (c *Compressed) buildIndexes() {
	c.touch = make([][][]int32, len(c.sizes))
	c.loose = make([][]int32, len(c.sizes))
	for a, n := range c.sizes {
		c.touch[a] = make([][]int32, n)
	}
	c.statTerms = make([][]int32, len(c.specs))
	c.constrained = make([][]int32, len(c.sizes))
	c.conRanges = make([][]query.Range, len(c.sizes))
	words := (len(c.terms) + 63) / 64
	c.conBits = make([][]uint64, len(c.sizes))
	slab := make([]uint64, words*len(c.sizes))
	for a := range c.conBits {
		c.conBits[a], slab = slab[:words], slab[words:]
	}
	if len(c.sizes) <= 64 {
		c.attrBits = make([]uint64, len(c.terms))
	}
	for i, t := range c.terms {
		k := 0
		for a := range c.sizes {
			if k < len(t.attrs) && t.attrs[k] == a {
				r := t.ranges[k]
				k++
				for v := r.Lo; v <= r.Hi; v++ {
					c.touch[a][v] = append(c.touch[a][v], int32(i))
				}
				c.constrained[a] = append(c.constrained[a], int32(i))
				c.conRanges[a] = append(c.conRanges[a], r)
				c.conBits[a][i>>6] |= 1 << uint(i&63)
				if c.attrBits != nil {
					c.attrBits[i] |= 1 << uint(a)
				}
				continue
			}
			c.loose[a] = append(c.loose[a], int32(i))
		}
		for _, j := range t.stats {
			c.statTerms[j] = append(c.statTerms[j], int32(i))
		}
	}
}

// touchedCount returns the exact touched-set cardinality
// |touched(S)| = |∪_{a∈attrs} constrained[a]| by OR-ing the per-attribute
// term bitsets into buf (len ≥ ⌈terms/64⌉) and popcounting —
// O(|S|·terms/64), never a per-term walk. A single constrained attribute
// reads its posting-list length directly.
func (c *Compressed) touchedCount(attrs []int, buf []uint64) int {
	if len(attrs) == 1 {
		return len(c.constrained[attrs[0]])
	}
	for i := range buf {
		buf[i] = 0
	}
	for _, a := range attrs {
		for i, w := range c.conBits[a] {
			buf[i] |= w
		}
	}
	n := 0
	for _, w := range buf {
		n += bits.OnesCount64(w)
	}
	return n
}

// combine extends term t with statistic j. It returns false when j is
// already in t or when the combined per-attribute projections have an empty
// intersection (ρ_iS ≡ false for some attribute).
func (c *Compressed) combine(t term, j int) (term, bool) {
	for _, s := range t.stats {
		if s == j {
			return term{}, false
		}
	}
	spec := c.specs[j]
	attrs := append([]int(nil), t.attrs...)
	ranges := append([]query.Range(nil), t.ranges...)
	for k, a := range spec.Attrs {
		r := spec.Ranges[k]
		pos := sort.SearchInts(attrs, a)
		if pos < len(attrs) && attrs[pos] == a {
			inter := ranges[pos].Intersect(r)
			if inter.Empty() {
				return term{}, false
			}
			ranges[pos] = inter
			continue
		}
		attrs = append(attrs, 0)
		ranges = append(ranges, query.Range{})
		copy(attrs[pos+1:], attrs[pos:])
		copy(ranges[pos+1:], ranges[pos:])
		attrs[pos] = a
		ranges[pos] = r
	}
	stats := append(append([]int(nil), t.stats...), j)
	sort.Ints(stats)
	return term{attrs: attrs, ranges: ranges, stats: stats}, true
}

// NumAttrs returns the number of attributes m.
func (c *Compressed) NumAttrs() int { return len(c.sizes) }

// DomainSizes returns a copy of [N_1, ..., N_m].
func (c *Compressed) DomainSizes() []int { return append([]int(nil), c.sizes...) }

// NumMultiStats returns the number of multi-dimensional statistics.
func (c *Compressed) NumMultiStats() int { return len(c.specs) }

// MultiStat returns the j-th multi-dimensional statistic specification.
func (c *Compressed) MultiStat(j int) MultiStatSpec { return c.specs[j] }

// NumTerms returns the number of terms of the compressed representation
// (including the base term).
func (c *Compressed) NumTerms() int { return len(c.terms) }

// PrunedIndexed reports whether the attribute→term pruning index is
// available, i.e. whether masked evaluation can take the term-pruned
// delta path (polynomials over more than 64 attributes fall back to the
// full walk). Every construction path — including codec restore, which
// rebuilds the polynomial via NewCompressed — populates the index.
func (c *Compressed) PrunedIndexed() bool { return c.attrBits != nil }

// SizeReport summarizes the memory shape of the representation, mirroring
// the size analysis of Sec. 4.1.
type SizeReport struct {
	// Terms is the number of summands of the compressed polynomial
	// (including the base term for S = ∅).
	Terms int
	// CompressedFactors counts the 1D-variable slots referenced by the
	// compressed form: for every term, the sizes of the per-attribute sums
	// it touches plus one slot per (δ_j − 1) factor. This is the quantity
	// the paper compares against the uncompressed monomial count.
	CompressedFactors int64
	// OneDVariables is Σ_i N_i, the number of α variables.
	OneDVariables int
	// MultiVariables is the number of δ variables.
	MultiVariables int
	// UncompressedMonomials is Π_i N_i, the number of monomials of the
	// sum-of-products form (saturating at 2^62).
	UncompressedMonomials int64
}

// Size computes the SizeReport for the polynomial.
func (c *Compressed) Size() SizeReport {
	var rep SizeReport
	rep.Terms = len(c.terms)
	for _, n := range c.sizes {
		rep.OneDVariables += n
	}
	rep.MultiVariables = len(c.specs)
	d := int64(1)
	for _, n := range c.sizes {
		nn := int64(n)
		if d > (1<<62)/nn {
			d = 1 << 62
			break
		}
		d *= nn
	}
	rep.UncompressedMonomials = d
	for _, t := range c.terms {
		inTerm := make(map[int]query.Range, len(t.attrs))
		for k, a := range t.attrs {
			inTerm[a] = t.ranges[k]
		}
		for a, n := range c.sizes {
			if r, ok := inTerm[a]; ok {
				rep.CompressedFactors += int64(r.Len())
			} else {
				rep.CompressedFactors += int64(n)
			}
		}
		rep.CompressedFactors += int64(len(t.stats))
	}
	return rep
}

// String renders a compact structural description of the polynomial.
func (c *Compressed) String() string {
	return fmt.Sprintf("P{m=%d, multiStats=%d, terms=%d}", len(c.sizes), len(c.specs), len(c.terms))
}
