package polynomial

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// incrementalInstance builds a moderately sized system whose terms combine
// across statistics, so the factor caches see multi-statistic terms.
func incrementalInstance(t *testing.T) *System {
	t.Helper()
	sizes := []int{8, 6, 5, 4}
	specs := []MultiStatSpec{
		{Attrs: []int{0, 1}, Ranges: []query.Range{query.NewRange(0, 3), query.NewRange(0, 2)}},
		{Attrs: []int{0, 1}, Ranges: []query.Range{query.NewRange(4, 7), query.NewRange(3, 5)}},
		{Attrs: []int{1, 2}, Ranges: []query.Range{query.NewRange(0, 4), query.NewRange(1, 3)}},
		{Attrs: []int{2, 3}, Ranges: []query.Range{query.NewRange(0, 2), query.NewRange(0, 1)}},
		{Attrs: []int{0, 3}, Ranges: []query.Range{query.NewRange(2, 5), query.NewRange(2, 3)}},
	}
	comp, err := NewCompressed(sizes, specs)
	if err != nil {
		t.Fatal(err)
	}
	return NewSystem(comp)
}

// randomValue draws an update value exercising the cache's edge cases:
// exact zeros (pinned statistics), exact ones (δ − 1 = 0 factors), tiny
// clamped values, and ordinary positive values.
func randomValue(rng *rand.Rand) float64 {
	switch rng.Intn(8) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return 1e-12
	default:
		return 0.05 + 3*rng.Float64()
	}
}

// TestSystemIncrementalMatchesRebuild is the tentpole equivalence test:
// after randomized SetVar sequences, the incrementally maintained Eval(nil)
// and every cached derivative must match a from-scratch rebuild of the same
// variable assignment (Clone rebuilds its caches fully).
func TestSystemIncrementalMatchesRebuild(t *testing.T) {
	sys := incrementalInstance(t)
	refs := sys.Variables()
	rng := rand.New(rand.NewSource(71))
	for step := 1; step <= 3000; step++ {
		ref := refs[rng.Intn(len(refs))]
		sys.Set(ref, randomValue(rng))
		if step%250 != 0 {
			continue
		}
		fresh := sys.Clone()
		if got, want := sys.Eval(nil), fresh.Eval(nil); !approxEqual(got, want) {
			t.Fatalf("step %d: incremental P = %g, rebuilt P = %g", step, got, want)
		}
		for _, r := range refs {
			if got, want := sys.Deriv(r, nil), fresh.Deriv(r, nil); !approxEqual(got, want) {
				t.Fatalf("step %d var %v: incremental ∂P = %g, rebuilt ∂P = %g", step, r, got, want)
			}
		}
	}
}

// TestSystemIncrementalMatchesMaskedScan checks that the cached full value
// agrees with the masked-evaluation scan under an empty (all-Any)
// predicate, tying the incremental path to the independently computed
// masked path.
func TestSystemIncrementalMatchesMaskedScan(t *testing.T) {
	sys := incrementalInstance(t)
	refs := sys.Variables()
	rng := rand.New(rand.NewSource(113))
	empty := query.NewPredicate(sys.Poly().NumAttrs())
	for step := 1; step <= 500; step++ {
		sys.Set(refs[rng.Intn(len(refs))], randomValue(rng))
		if got, want := sys.Eval(nil), sys.Eval(empty); !approxEqual(got, want) {
			t.Fatalf("step %d: cached P = %g, masked scan P = %g", step, got, want)
		}
	}
}

// TestSystemRecomputeResynchronizes pins Recompute: it must leave the
// cached value equal to a from-scratch evaluation (bit-equal to a clone's).
func TestSystemRecomputeResynchronizes(t *testing.T) {
	sys := incrementalInstance(t)
	refs := sys.Variables()
	rng := rand.New(rand.NewSource(29))
	for step := 0; step < 1000; step++ {
		sys.Set(refs[rng.Intn(len(refs))], randomValue(rng))
	}
	sys.Recompute()
	if got, want := sys.Eval(nil), sys.Clone().Eval(nil); got != want {
		t.Fatalf("post-Recompute P = %g, rebuilt P = %g (must be bit-equal)", got, want)
	}
}

// TestSystemDriftRebuildTriggers drives more updates than the rebuild
// budget to cover the automatic resynchronization path.
func TestSystemDriftRebuildTriggers(t *testing.T) {
	sys := incrementalInstance(t)
	refs := sys.Variables()
	rng := rand.New(rand.NewSource(41))
	for step := 0; step < rebuildEvery+100; step++ {
		sys.Set(refs[rng.Intn(len(refs))], 0.05+3*rng.Float64())
	}
	if got, want := sys.Eval(nil), sys.Clone().Eval(nil); !approxEqual(got, want) {
		t.Fatalf("after %d updates: incremental P = %g, rebuilt P = %g", rebuildEvery+100, got, want)
	}
}
