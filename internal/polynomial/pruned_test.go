package polynomial

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/query"
)

// fullWalkEval runs the pre-index reference implementation of masked
// evaluation — the oracle the pruned path is equivalence-tested against.
func fullWalkEval(s *System, pred *query.Predicate) float64 {
	s.refreshAll()
	sc := s.getScratch(pred)
	defer s.putScratch(sc)
	if pred == nil {
		return s.total
	}
	return s.evalFullWalk(sc.cons)
}

// fullWalkDeriv runs the pre-index reference masked derivative.
func fullWalkDeriv(s *System, ref VarRef, pred *query.Predicate) float64 {
	s.refreshAll()
	sc := s.getScratch(pred)
	defer s.putScratch(sc)
	if ref.Kind == OneD {
		return s.derivOneD(ref.Attr, ref.Value, sc.cons)
	}
	return s.derivMulti(ref.Stat, sc.cons)
}

// closeEnough compares the pruned and full-walk values. The mask-delta
// identity subtracts touched-term values from the scaled total, so when
// the masked value is many orders of magnitude below the unmasked P the
// comparison must allow for cancellation at the total's magnitude —
// that is inherent to any delta evaluation, not a bug.
func closeEnough(got, want, magnitude float64) bool {
	diff := math.Abs(got - want)
	scale := math.Max(math.Abs(got), math.Abs(want))
	scale = math.Max(scale, math.Abs(magnitude))
	return diff <= 1e-9*math.Max(scale, 1)
}

// shapedConstraint draws one per-attribute constraint covering the shapes
// the pruned path special-cases: points, in-domain ranges, ranges
// straddling or entirely outside the domain, empty ranges, canonical
// InSet lists, and unsorted InSet lists with duplicates and out-of-domain
// values.
func shapedConstraint(n int, rng *rand.Rand) query.Constraint {
	switch rng.Intn(7) {
	case 0:
		return query.ValueEq(rng.Intn(n))
	case 1:
		lo := rng.Intn(n)
		return query.ValueIn(query.NewRange(lo, lo+rng.Intn(n-lo)))
	case 2:
		// Straddles the domain edges; clipping must not change the answer.
		return query.ValueIn(query.NewRange(-1-rng.Intn(2), n-1+rng.Intn(3)))
	case 3:
		// Empty or entirely out-of-domain: must evaluate to exactly 0.
		if rng.Intn(2) == 0 {
			return query.ValueIn(query.NewRange(2, 1))
		}
		return query.ValueIn(query.NewRange(n, n+2))
	case 4:
		vals := rng.Perm(n)[:1+rng.Intn(n)]
		return query.ValueSet(vals)
	case 5:
		// Unsorted, duplicated, partially out-of-domain value list built
		// without ValueSet's canonicalization.
		vals := []int{n - 1, -3, 1 % n, n + 4, 1 % n, 0}
		return query.Constraint{Kind: query.InSet, Values: vals}
	default:
		return query.ValueIn(query.Point(rng.Intn(n)).Intersect(query.NewRange(0, n-1)))
	}
}

// shapedPredicate constrains exactly k attributes (nil when k is 0 half
// the time, exercising the no-op mask path both ways).
func shapedPredicate(sizes []int, k int, rng *rand.Rand) *query.Predicate {
	if k == 0 && rng.Intn(2) == 0 {
		return nil
	}
	if k > len(sizes) {
		k = len(sizes)
	}
	p := query.NewPredicate(len(sizes))
	for _, a := range rng.Perm(len(sizes))[:k] {
		p.Where(a, shapedConstraint(sizes[a], rng))
	}
	return p
}

// TestPrunedEvalMatchesFullWalk is the randomized pruned-vs-naive masked
// equivalence test: across instances and predicate shapes (0, 1, 2, and
// all constrained attributes; InRange and InSet mixes; empty and
// out-of-domain ranges) the attribute→term-index evaluation must agree
// with the full-walk reference.
func TestPrunedEvalMatchesFullWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		sizes, _, sys := randomInstance(rng)
		sys.Eval(nil)
		for _, k := range []int{0, 1, 2, len(sizes)} {
			pred := shapedPredicate(sizes, k, rng)
			got := sys.Eval(pred)
			want := fullWalkEval(sys, pred)
			if !closeEnough(got, want, sys.Total()) {
				t.Fatalf("trial %d (%d attrs) pred %v: pruned Eval = %g, full walk = %g (sizes %v)",
					trial, k, pred, got, want, sizes)
			}
			if pred != nil && pred.Unsatisfiable() && got != 0 {
				t.Fatalf("trial %d pred %v: unsatisfiable predicate evaluated to %g, want exactly 0", trial, pred, got)
			}
		}
	}
}

// TestPrunedDerivMatchesFullWalk checks the pruned masked derivatives
// (both α and δ variables) against the full-walk reference across the
// same predicate shapes.
func TestPrunedDerivMatchesFullWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		sizes, _, sys := randomInstance(rng)
		sys.Eval(nil)
		refs := sys.Variables()
		for _, k := range []int{0, 1, 2, len(sizes)} {
			pred := shapedPredicate(sizes, k, rng)
			if pred == nil {
				continue
			}
			for _, ref := range refs {
				got := sys.Deriv(ref, pred)
				want := fullWalkDeriv(sys, ref, pred)
				if !closeEnough(got, want, sys.Total()) {
					t.Fatalf("trial %d (%d attrs) pred %v var %v: pruned Deriv = %g, full walk = %g",
						trial, k, pred, ref, got, want)
				}
			}
		}
	}
}

// TestPrunedEvalBenchShape pins the equivalence on the BENCH.md instance
// shape (118 variables, 48 2D statistics) for the benchmark predicates
// and a randomized predicate sweep — the exact shape the ≥5x acceptance
// criterion is measured on.
func TestPrunedEvalBenchShape(t *testing.T) {
	sys, pred := benchSystem(t)
	sys.Eval(nil)
	sizes := sys.Poly().DomainSizes()
	preds := []*query.Predicate{pred}
	for _, p := range selectivePreds(len(sizes)) {
		preds = append(preds, p)
	}
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 40; i++ {
		preds = append(preds, shapedPredicate(sizes, 1+rng.Intn(len(sizes)), rng))
	}
	for _, p := range preds {
		got := sys.Eval(p)
		want := fullWalkEval(sys, p)
		if !closeEnough(got, want, sys.Total()) {
			t.Fatalf("pred %v: pruned Eval = %g, full walk = %g", p, got, want)
		}
	}
	refs := []VarRef{
		{Kind: OneD, Attr: 0, Value: 10},
		{Kind: OneD, Attr: 5, Value: 2},
		{Kind: Multi, Stat: 7},
		{Kind: Multi, Stat: 40},
	}
	for _, p := range preds {
		for _, ref := range refs {
			got := sys.Deriv(ref, p)
			want := fullWalkDeriv(sys, ref, p)
			if !closeEnough(got, want, sys.Total()) {
				t.Fatalf("pred %v var %v: pruned Deriv = %g, full walk = %g", p, ref, got, want)
			}
		}
	}
}

// TestPrunedEvalZeroAlphaFactors exercises the zero-factor bookkeeping:
// variables forced to exactly 0 make cached factors and nz/zeros states
// that the term-local factor swap must reproduce.
func TestPrunedEvalZeroAlphaFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 60; trial++ {
		sizes, _, sys := randomInstance(rng)
		// Zero out a few variables (sometimes a whole attribute column,
		// driving full-domain sums to 0 — the pruned path must fall back).
		for _, ref := range sys.Variables() {
			if rng.Intn(4) == 0 {
				sys.Set(ref, 0)
			}
		}
		if rng.Intn(3) == 0 {
			a := rng.Intn(len(sizes))
			for v := 0; v < sizes[a]; v++ {
				sys.SetOneD(a, v, 0)
			}
		}
		sys.Eval(nil)
		for q := 0; q < 6; q++ {
			pred := shapedPredicate(sizes, 1+rng.Intn(len(sizes)), rng)
			got := sys.Eval(pred)
			want := fullWalkEval(sys, pred)
			if !closeEnough(got, want, sys.Total()) {
				t.Fatalf("trial %d pred %v: pruned Eval = %g, full walk = %g (with zeroed vars)",
					trial, pred, got, want)
			}
		}
	}
}

// TestMaskedEvalConcurrentReaders exercises the documented contract: after
// one Eval(nil) handoff, concurrent masked Eval/Deriv calls are safe and
// agree with their serial answers. Run under -race this also proves the
// pruned path and its pooled scratch stay read-only.
func TestMaskedEvalConcurrentReaders(t *testing.T) {
	sys, pred := benchSystem(t)
	sys.Eval(nil)
	preds := []*query.Predicate{pred}
	for _, p := range selectivePreds(sys.Poly().NumAttrs()) {
		preds = append(preds, p)
	}
	ref := VarRef{Kind: OneD, Attr: 0, Value: 10}
	wantEval := make([]float64, len(preds))
	wantDeriv := make([]float64, len(preds))
	for i, p := range preds {
		wantEval[i] = sys.Eval(p)
		wantDeriv[i] = sys.Deriv(ref, p)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				i := (g + it) % len(preds)
				if got := sys.Eval(preds[i]); got != wantEval[i] {
					errs <- "concurrent Eval diverged from serial answer"
					return
				}
				if got := sys.Deriv(ref, preds[i]); got != wantDeriv[i] {
					errs <- "concurrent Deriv diverged from serial answer"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestTouchedCountExact checks the popcounted touched-set cardinality
// against a brute-force union of the posting lists across random instances
// and attribute subsets.
func TestTouchedCountExact(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 40; trial++ {
		sizes, _, sys := randomInstance(rng)
		p := sys.Poly()
		buf := make([]uint64, (len(p.terms)+63)/64)
		for k := 1; k <= len(sizes); k++ {
			attrs := rng.Perm(len(sizes))[:k]
			sort.Ints(attrs)
			want := map[int32]struct{}{}
			for _, a := range attrs {
				for _, ti := range p.constrained[a] {
					want[ti] = struct{}{}
				}
			}
			if got := p.touchedCount(attrs, buf); got != len(want) {
				t.Fatalf("trial %d attrs %v: touchedCount = %d, want %d", trial, attrs, got, len(want))
			}
		}
	}
}

// TestCutoffRoutesBenchShapes pins the route-to-full-walk calibration on the
// BENCH.md instance: the all-attrs predicate (whose touched set is the whole
// polynomial, the documented pruned-path regression) must route to the full
// walk, while every selective shape stays on the pruned path.
func TestCutoffRoutesBenchShapes(t *testing.T) {
	sys, _ := benchSystem(t)
	sys.Eval(nil)
	for name, pred := range selectivePreds(sys.Poly().NumAttrs()) {
		sc := sys.getScratch(pred)
		_, pruned := sys.evalPruned(sc)
		sys.putScratch(sc)
		if name == "allattr" && pruned {
			t.Fatalf("allattr predicate stayed on the pruned path; want full-walk routing")
		}
		if name != "allattr" && !pruned {
			t.Fatalf("%s predicate routed to the full walk; want pruned path", name)
		}
	}
}

// TestMaskedPrefixEquivalence checks the O(1) masked prefix-column factor
// sums against the direct maskedSum scan across random instances, constraint
// shapes, and (clipped, straddling, empty) ranges.
func TestMaskedPrefixEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		sizes, _, sys := randomInstance(rng)
		sys.Eval(nil)
		pred := shapedPredicate(sizes, 1+rng.Intn(len(sizes)), rng)
		if pred == nil {
			continue
		}
		sc := sys.getScratch(pred)
		for a := range sizes {
			n := sizes[a]
			ranges := []query.Range{
				fullRange(n),
				query.NewRange(rng.Intn(n), rng.Intn(2*n)),
				query.NewRange(-2, rng.Intn(n)),
				query.NewRange(3, 1),
				query.Point(rng.Intn(n)),
			}
			for _, r := range ranges {
				got := sys.maskedSumSC(sc, a, r)
				want := sys.maskedSum(a, r, sc.cons[a])
				if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					t.Fatalf("trial %d attr %d range %v cons %v: maskedSumSC = %g, maskedSum = %g",
						trial, a, r, sc.cons[a], got, want)
				}
			}
		}
		sys.putScratch(sc)
	}
}

// TestCanonValues pins the once-per-query InSet canonicalization: sorted
// inputs pass through untouched (no copy), unsorted inputs are sorted and
// deduplicated into the scratch, and both are clipped to the domain.
func TestCanonValues(t *testing.T) {
	sc := &evalScratch{}
	got := sc.canonValues([]int{-2, 0, 3, 7, 9}, 8)
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("clip sorted: got %v, want [0 3 7]", got)
	}
	got = sc.canonValues([]int{5, 1, 5, -1, 9, 3, 1}, 8)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("canonicalize unsorted: got %v, want [1 3 5]", got)
	}
	if got := sc.canonValues(nil, 8); len(got) != 0 {
		t.Fatalf("nil values: got %v, want empty", got)
	}
}
