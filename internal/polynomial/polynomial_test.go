package polynomial

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
)

// randomInstance draws a random small polynomial instance: domain sizes,
// multi-dimensional statistic specs (pairwise disjoint is not required by
// the polynomial itself), and a random variable assignment.
func randomInstance(rng *rand.Rand) ([]int, []MultiStatSpec, *System) {
	m := 2 + rng.Intn(3) // 2..4 attributes
	sizes := make([]int, m)
	for i := range sizes {
		sizes[i] = 2 + rng.Intn(4) // 2..5 values
	}
	numStats := rng.Intn(4) // 0..3 multi statistics
	specs := make([]MultiStatSpec, 0, numStats)
	for j := 0; j < numStats; j++ {
		k := 2
		if m > 2 && rng.Intn(3) == 0 {
			k = 3
		}
		attrs := rng.Perm(m)[:k]
		sortInts(attrs)
		ranges := make([]query.Range, k)
		for i, a := range attrs {
			lo := rng.Intn(sizes[a])
			hi := lo + rng.Intn(sizes[a]-lo)
			ranges[i] = query.NewRange(lo, hi)
		}
		specs = append(specs, MultiStatSpec{Attrs: attrs, Ranges: ranges})
	}
	comp, err := NewCompressed(sizes, specs)
	if err != nil {
		panic(err)
	}
	sys := NewSystem(comp)
	for _, ref := range sys.Variables() {
		sys.Set(ref, 0.1+2*rng.Float64())
	}
	return sizes, specs, sys
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// randomPredicate draws a random predicate over the domain sizes, nil one
// time in four.
func randomPredicate(sizes []int, rng *rand.Rand) *query.Predicate {
	if rng.Intn(4) == 0 {
		return nil
	}
	p := query.NewPredicate(len(sizes))
	for a, n := range sizes {
		switch rng.Intn(3) {
		case 0:
			// unconstrained
		case 1:
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			p.WhereRange(a, lo, hi)
		case 2:
			var vals []int
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				vals = []int{rng.Intn(n)}
			}
			p.WhereIn(a, vals...)
		}
	}
	return p
}

func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestCompressedMatchesNaiveEval checks the central claim of Theorem 4.1:
// the compressed polynomial evaluates (masked and unmasked) to exactly
// the brute-force sum-of-products value, on random instances.
func TestCompressedMatchesNaiveEval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		sizes, specs, sys := randomInstance(rng)
		naive, err := NewNaive(sizes, specs)
		if err != nil {
			t.Fatalf("trial %d: NewNaive: %v", trial, err)
		}
		for q := 0; q < 4; q++ {
			pred := randomPredicate(sizes, rng)
			got := sys.Eval(pred)
			want := naive.Eval(sys, pred)
			if !approxEqual(got, want) {
				t.Fatalf("trial %d pred %v: compressed Eval = %g, naive = %g (sizes %v, %d stats)",
					trial, pred, got, want, sizes, len(specs))
			}
		}
	}
}

// TestCompressedMatchesNaiveDeriv checks the analytic partial derivatives
// of the compressed form against brute-force enumeration, for both α and
// δ variables, masked and unmasked.
func TestCompressedMatchesNaiveDeriv(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		sizes, specs, sys := randomInstance(rng)
		naive, err := NewNaive(sizes, specs)
		if err != nil {
			t.Fatalf("trial %d: NewNaive: %v", trial, err)
		}
		refs := sys.Variables()
		for q := 0; q < 2; q++ {
			pred := randomPredicate(sizes, rng)
			for _, ref := range refs {
				got := sys.Deriv(ref, pred)
				want := naive.Deriv(sys, ref, pred)
				if !approxEqual(got, want) {
					t.Fatalf("trial %d pred %v var %v: compressed Deriv = %g, naive = %g",
						trial, pred, ref, got, want)
				}
			}
		}
	}
}

// TestEvalMultilinearIdentity checks x·∂P/∂x + P|_{x=0} = P, the
// multilinearity identity both the solver update and Eq. (8) rely on.
func TestEvalMultilinearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		_, _, sys := randomInstance(rng)
		p := sys.Eval(nil)
		for _, ref := range sys.Variables() {
			x := sys.Get(ref)
			pd := sys.Deriv(ref, nil)
			sys.Set(ref, 0)
			rest := sys.Eval(nil)
			sys.Set(ref, x)
			if !approxEqual(x*pd+rest, p) {
				t.Fatalf("trial %d var %v: x·P' + P|0 = %g, want P = %g", trial, ref, x*pd+rest, p)
			}
		}
	}
}

// TestUnsatisfiableMaskEvaluatesToZero pins the masked-evaluation edge
// case: a predicate with an empty constraint yields 0.
func TestUnsatisfiableMaskEvaluatesToZero(t *testing.T) {
	comp, err := NewCompressed([]int{3, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(comp)
	pred := query.NewPredicate(2).Where(0, query.ValueIn(query.NewRange(2, 1)))
	if got := sys.Eval(pred); got != 0 {
		t.Fatalf("Eval(empty constraint) = %g, want 0", got)
	}
}
