package polynomial

import (
	"fmt"

	"repro/internal/query"
)

// System couples a Compressed polynomial structure with concrete variable
// values: α values for the complete 1-dimensional statistics and δ values
// for the multi-dimensional statistics. It supports masked evaluation and
// analytic partial derivatives, both computed in a single pass over the
// compressed terms.
//
// A System is not safe for concurrent mutation; concurrent read-only use
// (Eval/Deriv with no SetVar in between) is safe.
type System struct {
	poly   *Compressed
	alpha  [][]float64 // per attribute, per domain value
	delta  []float64   // per multi-dimensional statistic
	prefix [][]float64 // per attribute: prefix sums of alpha (len N_i + 1)
	dirty  []bool      // per attribute: prefix sums need rebuilding
}

// NewSystem creates a System over the polynomial with every variable
// initialized to 1 (the uniform starting point used by the solver).
func NewSystem(poly *Compressed) *System {
	s := &System{poly: poly}
	s.alpha = make([][]float64, len(poly.sizes))
	s.prefix = make([][]float64, len(poly.sizes))
	s.dirty = make([]bool, len(poly.sizes))
	for i, n := range poly.sizes {
		s.alpha[i] = make([]float64, n)
		for v := range s.alpha[i] {
			s.alpha[i][v] = 1
		}
		s.prefix[i] = make([]float64, n+1)
		s.dirty[i] = true
	}
	s.delta = make([]float64, len(poly.specs))
	for j := range s.delta {
		s.delta[j] = 1
	}
	return s
}

// Poly returns the underlying compressed polynomial structure.
func (s *System) Poly() *Compressed { return s.poly }

// OneD returns the value of α_{attr,value}.
func (s *System) OneD(attr, value int) float64 { return s.alpha[attr][value] }

// MultiVar returns the value of δ_stat.
func (s *System) MultiVar(stat int) float64 { return s.delta[stat] }

// SetOneD assigns α_{attr,value}.
func (s *System) SetOneD(attr, value int, x float64) {
	s.alpha[attr][value] = x
	s.dirty[attr] = true
}

// SetMulti assigns δ_stat.
func (s *System) SetMulti(stat int, x float64) { s.delta[stat] = x }

// Get returns the value of the referenced variable.
func (s *System) Get(v VarRef) float64 {
	if v.Kind == OneD {
		return s.alpha[v.Attr][v.Value]
	}
	return s.delta[v.Stat]
}

// Set assigns the referenced variable.
func (s *System) Set(v VarRef, x float64) {
	if v.Kind == OneD {
		s.SetOneD(v.Attr, v.Value, x)
		return
	}
	s.SetMulti(v.Stat, x)
}

// Clone returns a deep copy of the system (sharing the immutable Compressed
// structure).
func (s *System) Clone() *System {
	c := &System{poly: s.poly}
	c.alpha = make([][]float64, len(s.alpha))
	c.prefix = make([][]float64, len(s.prefix))
	c.dirty = make([]bool, len(s.dirty))
	for i := range s.alpha {
		c.alpha[i] = append([]float64(nil), s.alpha[i]...)
		c.prefix[i] = make([]float64, len(s.prefix[i]))
		c.dirty[i] = true
	}
	c.delta = append([]float64(nil), s.delta...)
	return c
}

// Variables returns references to every variable of the system: all α
// variables in attribute-then-value order followed by all δ variables.
func (s *System) Variables() []VarRef {
	var out []VarRef
	for a := range s.alpha {
		for v := range s.alpha[a] {
			out = append(out, VarRef{Kind: OneD, Attr: a, Value: v})
		}
	}
	for j := range s.delta {
		out = append(out, VarRef{Kind: Multi, Stat: j})
	}
	return out
}

func (s *System) refresh(attr int) {
	if !s.dirty[attr] {
		return
	}
	p := s.prefix[attr]
	p[0] = 0
	col := s.alpha[attr]
	for v, x := range col {
		p[v+1] = p[v] + x
	}
	s.dirty[attr] = false
}

func (s *System) refreshAll() {
	for a := range s.alpha {
		s.refresh(a)
	}
}

// rangeSum returns Σ_{v ∈ [lo,hi]} α_{attr,v} using the prefix cache. The
// range is clipped to the domain.
func (s *System) rangeSum(attr int, r query.Range) float64 {
	if r.Empty() {
		return 0
	}
	lo, hi := r.Lo, r.Hi
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.alpha[attr]) {
		hi = len(s.alpha[attr]) - 1
	}
	if hi < lo {
		return 0
	}
	p := s.prefix[attr]
	return p[hi+1] - p[lo]
}

// maskedSum returns the sum of α_{attr,v} over values v that lie in the
// given range and satisfy the constraint.
func (s *System) maskedSum(attr int, r query.Range, c query.Constraint) float64 {
	switch c.Kind {
	case query.Any:
		return s.rangeSum(attr, r)
	case query.InRange:
		return s.rangeSum(attr, r.Intersect(c.Range))
	case query.InSet:
		sum := 0.0
		col := s.alpha[attr]
		for _, v := range c.Values {
			if v >= 0 && v < len(col) && r.Contains(v) {
				sum += col[v]
			}
		}
		return sum
	default:
		return 0
	}
}

func fullRange(n int) query.Range { return query.Range{Lo: 0, Hi: n - 1} }

// constraintFor extracts the per-attribute constraint from the predicate
// (Any when the predicate is nil).
func constraintFor(pred *query.Predicate, attr int) query.Constraint {
	if pred == nil {
		return query.AnyValue()
	}
	return pred.Constraint(attr)
}

// Eval computes P with every 1D variable that does not satisfy the
// predicate's per-attribute constraint set to 0 (Sec. 4.2). A nil predicate
// evaluates the full polynomial P.
func (s *System) Eval(pred *query.Predicate) float64 {
	s.refreshAll()
	total := 0.0
	m := len(s.alpha)
	// Per-attribute constraints are extracted once per call.
	cons := make([]query.Constraint, m)
	for a := 0; a < m; a++ {
		cons[a] = constraintFor(pred, a)
	}
	for _, t := range s.poly.terms {
		total += s.evalTerm(t, cons)
	}
	return total
}

// evalTerm computes one summand under the per-attribute constraints.
func (s *System) evalTerm(t term, cons []query.Constraint) float64 {
	v := 1.0
	k := 0
	for a := range s.alpha {
		var r query.Range
		if k < len(t.attrs) && t.attrs[k] == a {
			r = t.ranges[k]
			k++
		} else {
			r = fullRange(len(s.alpha[a]))
		}
		f := s.maskedSum(a, r, cons[a])
		if f == 0 {
			return 0
		}
		v *= f
	}
	for _, j := range t.stats {
		v *= s.delta[j] - 1
	}
	return v
}

// Deriv computes the partial derivative of the (masked) polynomial with
// respect to the referenced variable. Because P is multi-linear, the
// derivative is the sum over terms of the product of all other factors.
func (s *System) Deriv(ref VarRef, pred *query.Predicate) float64 {
	s.refreshAll()
	m := len(s.alpha)
	cons := make([]query.Constraint, m)
	for a := 0; a < m; a++ {
		cons[a] = constraintFor(pred, a)
	}
	switch ref.Kind {
	case OneD:
		return s.derivOneD(ref.Attr, ref.Value, cons)
	case Multi:
		return s.derivMulti(ref.Stat, cons)
	default:
		panic(fmt.Sprintf("polynomial: unknown variable kind %d", ref.Kind))
	}
}

func (s *System) derivOneD(attr, value int, cons []query.Constraint) float64 {
	// If the mask excludes the value, the variable does not occur in the
	// masked polynomial at all.
	if !cons[attr].Matches(value) {
		return 0
	}
	total := 0.0
	for _, t := range s.poly.terms {
		prod := 1.0
		k := 0
		skip := false
		for a := range s.alpha {
			var r query.Range
			if k < len(t.attrs) && t.attrs[k] == a {
				r = t.ranges[k]
				k++
			} else {
				r = fullRange(len(s.alpha[a]))
			}
			if a == attr {
				// The factor for the differentiated attribute becomes the
				// indicator that the value lies in the term's range.
				if !r.Contains(value) {
					skip = true
					break
				}
				continue
			}
			f := s.maskedSum(a, r, cons[a])
			if f == 0 {
				skip = true
				break
			}
			prod *= f
		}
		if skip {
			continue
		}
		for _, j := range t.stats {
			prod *= s.delta[j] - 1
		}
		total += prod
	}
	return total
}

func (s *System) derivMulti(stat int, cons []query.Constraint) float64 {
	total := 0.0
	for _, t := range s.poly.terms {
		contains := false
		for _, j := range t.stats {
			if j == stat {
				contains = true
				break
			}
		}
		if !contains {
			continue
		}
		prod := 1.0
		k := 0
		skip := false
		for a := range s.alpha {
			var r query.Range
			if k < len(t.attrs) && t.attrs[k] == a {
				r = t.ranges[k]
				k++
			} else {
				r = fullRange(len(s.alpha[a]))
			}
			f := s.maskedSum(a, r, cons[a])
			if f == 0 {
				skip = true
				break
			}
			prod *= f
		}
		if skip {
			continue
		}
		for _, j := range t.stats {
			if j == stat {
				continue
			}
			prod *= s.delta[j] - 1
		}
		total += prod
	}
	return total
}

// Expectation returns E[⟨c,I⟩] = n · x · ∂P/∂x / P for the statistic whose
// variable is ref (Eq. (8)), given the relation cardinality n and the
// current full polynomial value p (p must equal Eval(nil)).
func (s *System) Expectation(ref VarRef, n, p float64) float64 {
	if p == 0 {
		return 0
	}
	return n * s.Get(ref) * s.Deriv(ref, nil) / p
}

// TupleWeight returns the monomial value of a single encoded tuple under the
// current variable assignment: Π_i α_{i,t_i} · Π_{j: t ⊨ stat_j} δ_j. The
// tuple probability is TupleWeight(t) / Eval(nil).
func (s *System) TupleWeight(tuple []int) float64 {
	w := 1.0
	for a, v := range tuple {
		w *= s.alpha[a][v]
	}
	for j, spec := range s.poly.specs {
		if specMatches(spec, tuple) {
			w *= s.delta[j]
		}
	}
	return w
}

func specMatches(spec MultiStatSpec, tuple []int) bool {
	for k, a := range spec.Attrs {
		if !spec.Ranges[k].Contains(tuple[a]) {
			return false
		}
	}
	return true
}
