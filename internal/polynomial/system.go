package polynomial

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/query"
)

// rebuildEvery bounds how many incremental variable updates may pass before
// the factor caches are recomputed from scratch, so floating-point drift
// from the multiply/divide maintenance cannot accumulate unboundedly.
const rebuildEvery = 1 << 13

// System couples a Compressed polynomial structure with concrete variable
// values: α values for the complete 1-dimensional statistics and δ values
// for the multi-dimensional statistics. It supports masked evaluation and
// analytic partial derivatives.
//
// The system is incremental: it caches, per term, the current value of
// every factor (the per-attribute range sums and the (δ_j − 1) statistic
// factors) together with the running total P. A single-variable update
// touches only the terms whose effective range covers the variable
// (Compressed.touch / Compressed.statTerms), so after a SetVar the full
// polynomial value Eval(nil) and the unmasked derivatives Deriv(·, nil)
// are available in O(terms touching the variable) instead of a full
// re-evaluation — the property the solver's inner loop is built on.
//
// A System is not safe for concurrent mutation; concurrent read-only use
// (Eval/Deriv with no SetVar in between) is safe.
type System struct {
	poly   *Compressed
	alpha  [][]float64 // per attribute, per domain value
	delta  []float64   // per multi-dimensional statistic
	prefix [][]float64 // per attribute: prefix sums of alpha (len N_i + 1)
	dirty  []bool      // per attribute: prefix sums need rebuilding

	// Incremental term caches. For term i, nz[i] is the product of its
	// non-zero factors and zeros[i] counts its zero factors, so the term
	// value is nz[i] when zeros[i] == 0 and 0 otherwise; fac[i][a] is the
	// current value of the attribute-a factor. total is Σ_i value(i) = P.
	fac     [][]float64
	nz      []float64
	zeros   []int
	total   float64
	updates int // SetVar count since the last full rebuild

	// scratchPool recycles the per-call scratch of masked Eval/Deriv so
	// the hot path is allocation-free yet still safe for concurrent
	// read-only use.
	scratchPool sync.Pool
}

// evalScratch is the pooled per-call state of the masked Eval/Deriv paths:
// the per-attribute constraint snapshot, the constrained attribute set S,
// the masked full-domain sums M_a, and a backing buffer for canonicalizing
// InSet value lists that arrive unsorted.
type evalScratch struct {
	cons    []query.Constraint
	attrs   []int     // constrained attribute indexes, ascending
	maskedF []float64 // per attribute: masked full-domain sum M_a (set for attrs)
	vals    []int     // backing storage for canonicalized InSet values
	// termBits is the union-bitset buffer of the touched-set cardinality
	// cutoff (len ⌈terms/64⌉).
	termBits []uint64
	// mprefix[a] is the per-call masked prefix column of an InSet-constrained
	// attribute (M[i] = Σ_{v<i, v∈set} α_{a,v}, len N_a+1), built lazily on
	// the attribute's first masked factor so every later factor is O(1)
	// regardless of the set size. mpBuilt[a] marks columns valid for this
	// call; the backing arrays persist in the pool across calls.
	mprefix [][]float64
	mpBuilt []bool
}

// NewSystem creates a System over the polynomial with every variable
// initialized to 1 (the uniform starting point used by the solver).
func NewSystem(poly *Compressed) *System {
	s := newSystemShell(poly)
	s.rebuild()
	return s
}

// newSystemShell allocates a System with every variable at 1 but leaves the
// term caches unbuilt; callers must rebuild (possibly after overwriting the
// variable values, as Clone does) before use.
func newSystemShell(poly *Compressed) *System {
	s := &System{poly: poly}
	s.alpha = make([][]float64, len(poly.sizes))
	s.prefix = make([][]float64, len(poly.sizes))
	s.dirty = make([]bool, len(poly.sizes))
	for i, n := range poly.sizes {
		s.alpha[i] = make([]float64, n)
		for v := range s.alpha[i] {
			s.alpha[i][v] = 1
		}
		s.prefix[i] = make([]float64, n+1)
		s.dirty[i] = true
	}
	s.delta = make([]float64, len(poly.specs))
	for j := range s.delta {
		s.delta[j] = 1
	}
	m := len(poly.sizes)
	s.fac = make([][]float64, len(poly.terms))
	flat := make([]float64, len(poly.terms)*m)
	for i := range s.fac {
		s.fac[i], flat = flat[:m], flat[m:]
	}
	s.nz = make([]float64, len(poly.terms))
	s.zeros = make([]int, len(poly.terms))
	s.scratchPool.New = func() any {
		return &evalScratch{
			cons:     make([]query.Constraint, m),
			attrs:    make([]int, 0, m),
			maskedF:  make([]float64, m),
			termBits: make([]uint64, (len(poly.terms)+63)/64),
			mprefix:  make([][]float64, m),
			mpBuilt:  make([]bool, m),
		}
	}
	return s
}

// Poly returns the underlying compressed polynomial structure.
func (s *System) Poly() *Compressed { return s.poly }

// OneD returns the value of α_{attr,value}.
func (s *System) OneD(attr, value int) float64 { return s.alpha[attr][value] }

// MultiVar returns the value of δ_stat.
func (s *System) MultiVar(stat int) float64 { return s.delta[stat] }

// SetOneD assigns α_{attr,value}, incrementally maintaining the cached
// term factors and the polynomial total.
func (s *System) SetOneD(attr, value int, x float64) {
	dx := x - s.alpha[attr][value]
	if dx == 0 {
		return
	}
	s.alpha[attr][value] = x
	s.dirty[attr] = true
	for _, ti := range s.poly.touch[attr][value] {
		s.shiftFactor(int(ti), attr, dx)
	}
	for _, ti := range s.poly.loose[attr] {
		s.shiftFactor(int(ti), attr, dx)
	}
	s.noteUpdate()
}

// SetMulti assigns δ_stat, incrementally maintaining the cached term
// factors and the polynomial total.
func (s *System) SetMulti(stat int, x float64) {
	old := s.delta[stat]
	if x == old {
		return
	}
	s.delta[stat] = x
	for _, ti := range s.poly.statTerms[stat] {
		s.replaceFactor(int(ti), old-1, x-1)
	}
	s.noteUpdate()
}

// shiftFactor adds dx to term i's attribute-attr range-sum factor.
func (s *System) shiftFactor(i, attr int, dx float64) {
	old := s.fac[i][attr]
	nf := old + dx
	s.fac[i][attr] = nf
	s.replaceFactor(i, old, nf)
}

// replaceFactor swaps one factor of term i from value old to value nf,
// updating nz/zeros and the running total.
func (s *System) replaceFactor(i int, old, nf float64) {
	if s.zeros[i] == 0 {
		s.total -= s.nz[i]
	}
	if old == 0 {
		s.zeros[i]--
	} else {
		s.nz[i] /= old
	}
	if nf == 0 {
		s.zeros[i]++
	} else {
		s.nz[i] *= nf
	}
	if s.zeros[i] == 0 {
		s.total += s.nz[i]
	}
}

// noteUpdate counts one variable update and triggers a full cache rebuild
// when the drift budget is exhausted or the total went non-finite.
func (s *System) noteUpdate() {
	s.updates++
	if s.updates >= rebuildEvery || math.IsNaN(s.total) || math.IsInf(s.total, 0) {
		s.rebuild()
	}
}

// rebuild recomputes every cached term factor, nz/zeros, and the running
// total from the current variable values.
func (s *System) rebuild() {
	s.refreshAll()
	total := 0.0
	for i, t := range s.poly.terms {
		f := s.fac[i]
		nz, zeros := 1.0, 0
		k := 0
		for a := range s.alpha {
			var r query.Range
			if k < len(t.attrs) && t.attrs[k] == a {
				r = t.ranges[k]
				k++
			} else {
				r = fullRange(len(s.alpha[a]))
			}
			v := s.rangeSum(a, r)
			f[a] = v
			if v == 0 {
				zeros++
			} else {
				nz *= v
			}
		}
		for _, j := range t.stats {
			d := s.delta[j] - 1
			if d == 0 {
				zeros++
			} else {
				nz *= d
			}
		}
		s.nz[i] = nz
		s.zeros[i] = zeros
		if zeros == 0 {
			total += nz
		}
	}
	s.total = total
	s.updates = 0
}

// Recompute discards the incremental caches and rebuilds them from the
// current variable values, re-synchronizing the cached P with a full
// evaluation. The solver calls it once per sweep so incremental
// floating-point drift cannot accumulate across sweeps.
func (s *System) Recompute() { s.rebuild() }

// Get returns the value of the referenced variable.
func (s *System) Get(v VarRef) float64 {
	if v.Kind == OneD {
		return s.alpha[v.Attr][v.Value]
	}
	return s.delta[v.Stat]
}

// Set assigns the referenced variable.
func (s *System) Set(v VarRef, x float64) {
	if v.Kind == OneD {
		s.SetOneD(v.Attr, v.Value, x)
		return
	}
	s.SetMulti(v.Stat, x)
}

// Clone returns a deep copy of the system (sharing the immutable Compressed
// structure). The copy's caches are rebuilt from scratch, so a clone also
// serves as a drift-free re-evaluation of the same variable assignment.
func (s *System) Clone() *System {
	c := newSystemShell(s.poly)
	for i := range s.alpha {
		copy(c.alpha[i], s.alpha[i])
	}
	copy(c.delta, s.delta)
	c.rebuild()
	return c
}

// CopyVarsFrom overwrites this system's variable assignment with the one
// of other and rebuilds the caches. The two systems must have the same
// shape (identical domain sizes and multi-statistic count); the polynomial
// structures need not be the same object, which lets a freshly built
// system warm-start from a previously solved one.
func (s *System) CopyVarsFrom(other *System) error {
	if len(s.alpha) != len(other.alpha) || len(s.delta) != len(other.delta) {
		return fmt.Errorf("polynomial: shape mismatch: %d/%d attributes, %d/%d statistics",
			len(s.alpha), len(other.alpha), len(s.delta), len(other.delta))
	}
	for a := range s.alpha {
		if len(s.alpha[a]) != len(other.alpha[a]) {
			return fmt.Errorf("polynomial: attribute %d has domain size %d here, %d there",
				a, len(s.alpha[a]), len(other.alpha[a]))
		}
	}
	for a := range s.alpha {
		copy(s.alpha[a], other.alpha[a])
		s.dirty[a] = true
	}
	copy(s.delta, other.delta)
	s.rebuild()
	return nil
}

// Variables returns references to every variable of the system: all α
// variables in attribute-then-value order followed by all δ variables.
func (s *System) Variables() []VarRef {
	var out []VarRef
	for a := range s.alpha {
		for v := range s.alpha[a] {
			out = append(out, VarRef{Kind: OneD, Attr: a, Value: v})
		}
	}
	for j := range s.delta {
		out = append(out, VarRef{Kind: Multi, Stat: j})
	}
	return out
}

func (s *System) refresh(attr int) {
	if !s.dirty[attr] {
		return
	}
	p := s.prefix[attr]
	p[0] = 0
	col := s.alpha[attr]
	for v, x := range col {
		p[v+1] = p[v] + x
	}
	s.dirty[attr] = false
}

func (s *System) refreshAll() {
	for a := range s.alpha {
		s.refresh(a)
	}
}

// rangeSum returns Σ_{v ∈ [lo,hi]} α_{attr,v} using the prefix cache. The
// range is clipped to the domain.
func (s *System) rangeSum(attr int, r query.Range) float64 {
	if r.Empty() {
		return 0
	}
	lo, hi := r.Lo, r.Hi
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.alpha[attr]) {
		hi = len(s.alpha[attr]) - 1
	}
	if hi < lo {
		return 0
	}
	p := s.prefix[attr]
	return p[hi+1] - p[lo]
}

// maskedSum returns the sum of α_{attr,v} over values v that lie in the
// given range and satisfy the constraint.
func (s *System) maskedSum(attr int, r query.Range, c query.Constraint) float64 {
	switch c.Kind {
	case query.Any:
		return s.rangeSum(attr, r)
	case query.InRange:
		return s.rangeSum(attr, r.Intersect(c.Range))
	case query.InSet:
		// Values are canonical here (ascending, deduplicated, clipped to
		// the domain — getScratch guarantees it), so the scan can clip the
		// range once and stop at the first value past it instead of
		// bounds-testing every listed value for every term factor.
		col := s.alpha[attr]
		lo, hi := r.Lo, r.Hi
		if lo < 0 {
			lo = 0
		}
		if hi >= len(col) {
			hi = len(col) - 1
		}
		sum := 0.0
		for _, v := range c.Values {
			if v > hi {
				break
			}
			if v >= lo {
				sum += col[v]
			}
		}
		return sum
	default:
		return 0
	}
}

// maskedSumSC is maskedSum over the scratch's per-attribute constraint with
// every kind resolved in O(1): Any and InRange already go through the global
// prefix cache, and InSet reads a per-call masked prefix column instead of
// scanning the value list once per term factor. Columns are built lazily on
// an attribute's first masked factor (O(N_a) once per call), so queries whose
// touched terms never hit an InSet attribute pay nothing.
func (s *System) maskedSumSC(sc *evalScratch, attr int, r query.Range) float64 {
	c := sc.cons[attr]
	if c.Kind != query.InSet {
		return s.maskedSum(attr, r, c)
	}
	if !sc.mpBuilt[attr] {
		s.buildMaskedPrefix(sc, attr)
	}
	if r.Empty() {
		return 0
	}
	lo, hi := r.Lo, r.Hi
	if lo < 0 {
		lo = 0
	}
	if hi >= len(s.alpha[attr]) {
		hi = len(s.alpha[attr]) - 1
	}
	if hi < lo {
		return 0
	}
	p := sc.mprefix[attr]
	return p[hi+1] - p[lo]
}

// buildMaskedPrefix materializes the masked prefix column of an
// InSet-constrained attribute into the pooled scratch. The set values are
// canonical (ascending, in-domain — getScratch guarantees it), so one merge
// pass accumulates the column in the same value order the direct scan sums
// in.
func (s *System) buildMaskedPrefix(sc *evalScratch, attr int) {
	col := s.alpha[attr]
	p := sc.mprefix[attr]
	if cap(p) < len(col)+1 {
		p = make([]float64, len(col)+1)
	} else {
		p = p[:len(col)+1]
	}
	vals := sc.cons[attr].Values
	p[0] = 0
	j := 0
	sum := 0.0
	for v := range col {
		if j < len(vals) && vals[j] == v {
			sum += col[v]
			j++
		}
		p[v+1] = sum
	}
	sc.mprefix[attr] = p
	sc.mpBuilt[attr] = true
}

func fullRange(n int) query.Range { return query.Range{Lo: 0, Hi: n - 1} }

// constraintFor extracts the per-attribute constraint from the predicate
// (Any when the predicate is nil).
func constraintFor(pred *query.Predicate, attr int) query.Constraint {
	if pred == nil {
		return query.AnyValue()
	}
	return pred.Constraint(attr)
}

// getScratch fills a pooled scratch with the predicate's per-attribute
// constraints (InSet value lists canonicalized once per call, not per term
// factor) and the constrained attribute set S. Callers must return it with
// putScratch.
func (s *System) getScratch(pred *query.Predicate) *evalScratch {
	sc := s.scratchPool.Get().(*evalScratch)
	sc.attrs = sc.attrs[:0]
	sc.vals = sc.vals[:0]
	for a := range sc.cons {
		c := constraintFor(pred, a)
		if c.Kind == query.InSet {
			c.Values = sc.canonValues(c.Values, len(s.alpha[a]))
		}
		sc.cons[a] = c
		sc.mpBuilt[a] = false
		if c.Kind != query.Any {
			sc.attrs = append(sc.attrs, a)
		}
	}
	return sc
}

// canonValues returns the value list sorted, deduplicated, and clipped to
// the domain [0, n). Predicates built by query.ValueSet (the JSON and
// binary decoders, WhereIn) are already sorted and deduplicated, so the
// common case only trims the out-of-domain ends; genuinely unsorted lists
// are canonicalized into the scratch's backing buffer, never by mutating
// the caller's predicate.
func (sc *evalScratch) canonValues(vals []int, n int) []int {
	canonical := true
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			canonical = false
			break
		}
	}
	if !canonical {
		start := len(sc.vals)
		sc.vals = append(sc.vals, vals...)
		seg := sc.vals[start:]
		sort.Ints(seg)
		k := 0
		for i, v := range seg {
			if i > 0 && v == seg[k-1] {
				continue
			}
			seg[k] = v
			k++
		}
		vals = seg[:k]
	}
	lo := sort.SearchInts(vals, 0)
	hi := sort.SearchInts(vals, n)
	return vals[lo:hi]
}

func (s *System) putScratch(sc *evalScratch) { s.scratchPool.Put(sc) }

// Total returns the incrementally maintained full polynomial value P in
// O(1), without flushing the prefix caches — the solver's hot-path
// accessor. Unlike Eval(nil) it does not establish the flushed-cache
// handoff required before concurrent masked evaluation.
func (s *System) Total() float64 { return s.total }

// Eval computes P with every 1D variable that does not satisfy the
// predicate's per-attribute constraint set to 0 (Sec. 4.2). A nil predicate
// returns the incrementally maintained full polynomial value P after
// flushing the prefix caches (use Total for the flush-free O(1) read).
//
// Masked evaluation is answered through the attribute→term index in
// O(terms touching the constrained attribute set S) via the mask-delta
// identity (see evalPruned) instead of walking every term; evalFullWalk
// remains the fallback for the shapes the index cannot cover.
func (s *System) Eval(pred *query.Predicate) float64 {
	if pred == nil {
		// Flush the prefix caches even though the cached total does not
		// need them: Eval(nil) is the documented way to make subsequent
		// concurrent read-only (masked) evaluation safe.
		s.refreshAll()
		return s.total
	}
	s.refreshAll()
	sc := s.getScratch(pred)
	defer s.putScratch(sc)
	if v, ok := s.evalPruned(sc); ok {
		return v
	}
	return s.evalFullWalk(sc.cons)
}

// evalFullWalk is the pre-index reference implementation of masked
// evaluation: every term re-derives its full product under the
// constraints. It is the fallback when the pruned path cannot run (more
// than 64 attributes, a zero or non-finite full-domain sum) and the oracle
// the randomized pruned-vs-naive equivalence tests compare against.
func (s *System) evalFullWalk(cons []query.Constraint) float64 {
	total := 0.0
	for _, t := range s.poly.terms {
		total += s.evalTerm(t, cons)
	}
	return total
}

// evalPruned answers masked evaluation through the attribute→term index.
//
// For a predicate constraining attribute set S, a term whose attribute set
// I is disjoint from S keeps every cached range factor except that each
// a ∈ S contributes the masked full-domain sum M_a in place of the
// unmasked full-domain sum F_a — its masked value is its cached unmasked
// value times scale = Π_{a∈S} M_a/F_a. Summing over all terms:
//
//	Eval(pred) = scale·(total − Σ_{t∈touched(S)} value(t)) + Σ_{t∈touched(S)} masked(t)
//
// with touched(S) = { t : I(t) ∩ S ≠ ∅ } = ∪_{a∈S} constrained[a], so the
// walk visits O(touched(S)) terms instead of all of them. Within the
// touched set, interval pruning skips the masked-value computation for
// terms whose bucket range on the iterated attribute provably misses an
// InRange mask (their masked value is exactly 0); their cached value is
// still subtracted, as the identity requires.
//
// The second return reports whether the pruned path was applicable; when
// false the caller must fall back to evalFullWalk.
func (s *System) evalPruned(sc *evalScratch) (float64, bool) {
	p := s.poly
	if p.attrBits == nil || !isFinite(s.total) {
		return 0, false
	}
	if len(sc.attrs) == 0 {
		// No constrained attribute: the mask is a no-op.
		return s.total, true
	}
	// Route to the full walk when the touched set covers (nearly) the whole
	// polynomial: the delta identity then pays a factor swap per constrained
	// attribute per touched term on top of the subtraction bookkeeping, while
	// the straight walk pays one m-factor pass per term with no overhead —
	// the documented all-attrs regression. touched is exact (popcount over
	// the per-attribute term bitsets, O(|S|·terms/64)), and the crossover
	//
	//	touched·(|S|+2) ≥ terms·m
	//
	// sends the all-attrs shape to the walk while keeping every selective
	// shape — even ones touching most terms through a single hot attribute —
	// on the pruned path.
	if touched := p.touchedCount(sc.attrs, sc.termBits); touched*(len(sc.attrs)+2) >= len(p.terms)*len(s.alpha) {
		return 0, false
	}
	scale := 1.0
	var sMask uint64
	for _, a := range sc.attrs {
		full := fullRange(len(s.alpha[a]))
		f := s.rangeSum(a, full)
		if f == 0 {
			return 0, false
		}
		m := s.maskedSumSC(sc, a, full)
		sc.maskedF[a] = m
		scale *= m / f
		sMask |= 1 << uint(a)
	}
	if !isFinite(scale) {
		return 0, false
	}
	total := scale * s.total
	nzs, zeros, bits := s.nz, s.zeros, p.attrBits
	for _, a := range sc.attrs {
		aBit := uint64(1) << uint(a)
		below := aBit - 1
		consA := sc.cons[a]
		var pruneRange query.Range
		prune := false
		var pruneSet []int
		switch consA.Kind {
		case query.InRange:
			prune, pruneRange = true, consA.Range
		case query.InSet:
			pruneSet = consA.Values
		}
		conR := p.conRanges[a]
		for idx, ti := range p.constrained[a] {
			i := int(ti)
			if bits[i]&sMask&below != 0 {
				// The term is also constrained on a lower attribute of S;
				// it was already processed there.
				continue
			}
			z := zeros[i]
			if z == 0 {
				total -= scale * nzs[i]
			}
			// Interval pruning: when the term's bucket range on a provably
			// misses the mask its masked value is exactly 0, so only the
			// subtraction above applies and the term is never dereferenced.
			if prune {
				if !conR[idx].Overlaps(pruneRange) {
					continue
				}
			} else if pruneSet != nil && !setIntersects(pruneSet, conR[idx]) {
				continue
			}
			val, z := s.maskedFactorSwap(i, -1, sc, nzs[i], z)
			if z == 0 {
				total += val
			}
		}
	}
	return total, true
}

// setIntersects reports whether the ascending value list has an element in
// the (non-empty, in-domain) range.
func setIntersects(vals []int, r query.Range) bool {
	j := sort.SearchInts(vals, r.Lo)
	return j < len(vals) && vals[j] <= r.Hi
}

// maskedFactorSwap replaces, in the running (value, zero-count) product
// state of term i, each constrained attribute's cached factor with its
// masked counterpart — the term-local analogue of replaceFactor, without
// writing the caches. The factor of attribute skip (pass -1 for none) is
// left untouched; derivative paths use it for the differentiated
// attribute, whose factor they remove separately.
func (s *System) maskedFactorSwap(i, skip int, sc *evalScratch, val float64, z int) (float64, int) {
	t := &s.poly.terms[i]
	fac := s.fac[i]
	k := 0
	if z == 0 {
		// Fast path: no cached factor is zero, so every fOld divides
		// cleanly and the first zero masked factor decides the term.
		for _, a := range sc.attrs {
			if a == skip {
				continue
			}
			for k < len(t.attrs) && t.attrs[k] < a {
				k++
			}
			var fNew float64
			if k < len(t.attrs) && t.attrs[k] == a {
				fNew = s.maskedSumSC(sc, a, t.ranges[k])
			} else {
				fNew = sc.maskedF[a]
			}
			if fNew == 0 {
				return 0, 1
			}
			if fOld := fac[a]; fOld != fNew {
				val = val / fOld * fNew
			}
		}
		return val, 0
	}
	for _, a := range sc.attrs {
		if a == skip {
			continue
		}
		for k < len(t.attrs) && t.attrs[k] < a {
			k++
		}
		fOld := fac[a]
		var fNew float64
		if k < len(t.attrs) && t.attrs[k] == a {
			fNew = s.maskedSumSC(sc, a, t.ranges[k])
		} else {
			fNew = sc.maskedF[a]
		}
		if fOld == fNew {
			continue
		}
		if fOld == 0 {
			z--
		} else {
			val /= fOld
		}
		if fNew == 0 {
			z++
		} else {
			val *= fNew
		}
	}
	return val, z
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// evalTerm computes one summand under the per-attribute constraints.
func (s *System) evalTerm(t term, cons []query.Constraint) float64 {
	v := 1.0
	k := 0
	for a := range s.alpha {
		var r query.Range
		if k < len(t.attrs) && t.attrs[k] == a {
			r = t.ranges[k]
			k++
		} else {
			r = fullRange(len(s.alpha[a]))
		}
		f := s.maskedSum(a, r, cons[a])
		if f == 0 {
			return 0
		}
		v *= f
	}
	for _, j := range t.stats {
		v *= s.delta[j] - 1
	}
	return v
}

// Deriv computes the partial derivative of the (masked) polynomial with
// respect to the referenced variable. Because P is multi-linear, the
// derivative is the sum over terms of the product of all other factors.
// With a nil predicate the cached term factors answer it in O(terms
// touching the variable).
func (s *System) Deriv(ref VarRef, pred *query.Predicate) float64 {
	if pred == nil {
		switch ref.Kind {
		case OneD:
			return s.derivOneDCached(ref.Attr, ref.Value)
		case Multi:
			return s.derivMultiCached(ref.Stat)
		default:
			panic(fmt.Sprintf("polynomial: unknown variable kind %d", ref.Kind))
		}
	}
	s.refreshAll()
	sc := s.getScratch(pred)
	defer s.putScratch(sc)
	switch ref.Kind {
	case OneD:
		if v, ok := s.derivOneDPruned(ref.Attr, ref.Value, sc); ok {
			return v
		}
		return s.derivOneD(ref.Attr, ref.Value, sc.cons)
	case Multi:
		if v, ok := s.derivMultiPruned(ref.Stat, sc); ok {
			return v
		}
		return s.derivMulti(ref.Stat, sc.cons)
	default:
		panic(fmt.Sprintf("polynomial: unknown variable kind %d", ref.Kind))
	}
}

// exceptFactor returns term i's product of all factors except one whose
// current value is f, read off the nz/zeros cache.
func (s *System) exceptFactor(i int, f float64) float64 {
	switch {
	case s.zeros[i] == 0:
		return s.nz[i] / f
	case s.zeros[i] == 1 && f == 0:
		return s.nz[i]
	default:
		return 0
	}
}

// derivOneDCached computes ∂P/∂α_{attr,value} from the cached factors: the
// touch and loose indexes together list exactly the terms whose effective
// range contains the value, and the derivative removes the term's attr
// factor.
func (s *System) derivOneDCached(attr, value int) float64 {
	total := 0.0
	for _, ti := range s.poly.touch[attr][value] {
		i := int(ti)
		total += s.exceptFactor(i, s.fac[i][attr])
	}
	for _, ti := range s.poly.loose[attr] {
		i := int(ti)
		total += s.exceptFactor(i, s.fac[i][attr])
	}
	return total
}

// derivMultiCached computes ∂P/∂δ_stat from the cached factors: the terms
// containing the statistic each carry a (δ_stat − 1) factor.
func (s *System) derivMultiCached(stat int) float64 {
	f := s.delta[stat] - 1
	total := 0.0
	for _, ti := range s.poly.statTerms[stat] {
		total += s.exceptFactor(int(ti), f)
	}
	return total
}

// derivOneDPruned computes ∂(masked P)/∂α_{attr,value} as a delta over the
// cached derivative structure: exactly the terms whose effective range on
// attr contains the value occur (touch[attr][value] ∪ loose[attr], the
// same set the cached unmasked derivative walks), the differentiated
// attribute's factor becomes the indicator that the value satisfies the
// mask, and within each term only the factors of the other constrained
// attributes differ from the caches. Terms disjoint from S \ {attr} reuse
// exceptFactor rescaled by Π_{a∈S\{attr}} M_a/F_a; the rest swap factors
// term-locally. The second return reports applicability, as in evalPruned.
func (s *System) derivOneDPruned(attr, value int, sc *evalScratch) (float64, bool) {
	p := s.poly
	if p.attrBits == nil {
		return 0, false
	}
	if !sc.cons[attr].Matches(value) {
		// The mask excludes the value: the variable does not occur in the
		// masked polynomial at all.
		return 0, true
	}
	if len(sc.attrs) == 0 {
		return s.derivOneDCached(attr, value), true
	}
	scaleExcl := 1.0
	var sMask uint64
	for _, a := range sc.attrs {
		if a == attr {
			continue
		}
		full := fullRange(len(s.alpha[a]))
		f := s.rangeSum(a, full)
		if f == 0 {
			return 0, false
		}
		m := s.maskedSumSC(sc, a, full)
		sc.maskedF[a] = m
		scaleExcl *= m / f
		sMask |= 1 << uint(a)
	}
	if !isFinite(scaleExcl) {
		return 0, false
	}
	total := 0.0
	for _, ti := range p.touch[attr][value] {
		total += s.maskedExceptAttr(int(ti), attr, sc, sMask, scaleExcl)
	}
	for _, ti := range p.loose[attr] {
		total += s.maskedExceptAttr(int(ti), attr, sc, sMask, scaleExcl)
	}
	return total, true
}

// maskedExceptAttr returns term i's masked product of all factors except
// the attribute attr's one (already known to admit the differentiated
// value). sMask/scaleExcl describe the constrained attributes minus attr.
func (s *System) maskedExceptAttr(i, attr int, sc *evalScratch, sMask uint64, scaleExcl float64) float64 {
	if s.poly.attrBits[i]&sMask == 0 {
		// The term constrains no masked attribute besides possibly attr:
		// its remaining factors are the cached ones with every a ∈ S\{attr}
		// full-domain factor F_a replaced by M_a — a pure rescale.
		return scaleExcl * s.exceptFactor(i, s.fac[i][attr])
	}
	val, z := s.nz[i], s.zeros[i]
	if f := s.fac[i][attr]; f == 0 {
		z--
	} else {
		val /= f
	}
	val, z = s.maskedFactorSwap(i, attr, sc, val, z)
	if z != 0 {
		return 0
	}
	return val
}

// derivMultiPruned computes ∂(masked P)/∂δ_stat over statTerms[stat] using
// the cached factor products: the (δ_stat − 1) factor is removed
// term-locally and only the constrained attributes' factors are swapped
// for their masked counterparts; terms disjoint from S reuse exceptFactor
// rescaled by Π_{a∈S} M_a/F_a. The second return reports applicability.
func (s *System) derivMultiPruned(stat int, sc *evalScratch) (float64, bool) {
	p := s.poly
	if p.attrBits == nil {
		return 0, false
	}
	if len(sc.attrs) == 0 {
		return s.derivMultiCached(stat), true
	}
	scale := 1.0
	var sMask uint64
	for _, a := range sc.attrs {
		full := fullRange(len(s.alpha[a]))
		f := s.rangeSum(a, full)
		if f == 0 {
			return 0, false
		}
		m := s.maskedSumSC(sc, a, full)
		sc.maskedF[a] = m
		scale *= m / f
		sMask |= 1 << uint(a)
	}
	if !isFinite(scale) {
		return 0, false
	}
	d := s.delta[stat] - 1
	total := 0.0
	for _, ti := range p.statTerms[stat] {
		i := int(ti)
		if p.attrBits[i]&sMask == 0 {
			total += scale * s.exceptFactor(i, d)
			continue
		}
		val, z := s.nz[i], s.zeros[i]
		if d == 0 {
			z--
		} else {
			val /= d
		}
		val, z = s.maskedFactorSwap(i, -1, sc, val, z)
		if z == 0 {
			total += val
		}
	}
	return total, true
}

// derivOneD is the full-walk masked derivative — the fallback for the
// shapes derivOneDPruned cannot cover and the reference implementation the
// equivalence tests compare against.
func (s *System) derivOneD(attr, value int, cons []query.Constraint) float64 {
	// If the mask excludes the value, the variable does not occur in the
	// masked polynomial at all.
	if !cons[attr].Matches(value) {
		return 0
	}
	total := 0.0
	for _, t := range s.poly.terms {
		prod := 1.0
		k := 0
		skip := false
		for a := range s.alpha {
			var r query.Range
			if k < len(t.attrs) && t.attrs[k] == a {
				r = t.ranges[k]
				k++
			} else {
				r = fullRange(len(s.alpha[a]))
			}
			if a == attr {
				// The factor for the differentiated attribute becomes the
				// indicator that the value lies in the term's range.
				if !r.Contains(value) {
					skip = true
					break
				}
				continue
			}
			f := s.maskedSum(a, r, cons[a])
			if f == 0 {
				skip = true
				break
			}
			prod *= f
		}
		if skip {
			continue
		}
		for _, j := range t.stats {
			prod *= s.delta[j] - 1
		}
		total += prod
	}
	return total
}

// derivMulti is the full-walk masked statistic derivative — the fallback
// for the shapes derivMultiPruned cannot cover and the reference
// implementation the equivalence tests compare against.
func (s *System) derivMulti(stat int, cons []query.Constraint) float64 {
	total := 0.0
	for _, ti := range s.poly.statTerms[stat] {
		t := s.poly.terms[ti]
		prod := 1.0
		k := 0
		skip := false
		for a := range s.alpha {
			var r query.Range
			if k < len(t.attrs) && t.attrs[k] == a {
				r = t.ranges[k]
				k++
			} else {
				r = fullRange(len(s.alpha[a]))
			}
			f := s.maskedSum(a, r, cons[a])
			if f == 0 {
				skip = true
				break
			}
			prod *= f
		}
		if skip {
			continue
		}
		for _, j := range t.stats {
			if j == stat {
				continue
			}
			prod *= s.delta[j] - 1
		}
		total += prod
	}
	return total
}

// Expectation returns E[⟨c,I⟩] = n · x · ∂P/∂x / P for the statistic whose
// variable is ref (Eq. (8)), given the relation cardinality n and the
// current full polynomial value p (p must equal Eval(nil)).
func (s *System) Expectation(ref VarRef, n, p float64) float64 {
	if p == 0 {
		return 0
	}
	return n * s.Get(ref) * s.Deriv(ref, nil) / p
}

// TupleWeight returns the monomial value of a single encoded tuple under the
// current variable assignment: Π_i α_{i,t_i} · Π_{j: t ⊨ stat_j} δ_j. The
// tuple probability is TupleWeight(t) / Eval(nil).
func (s *System) TupleWeight(tuple []int) float64 {
	w := 1.0
	for a, v := range tuple {
		w *= s.alpha[a][v]
	}
	for j, spec := range s.poly.specs {
		if specMatches(spec, tuple) {
			w *= s.delta[j]
		}
	}
	return w
}

func specMatches(spec MultiStatSpec, tuple []int) bool {
	for k, a := range spec.Attrs {
		if !spec.Ranges[k].Contains(tuple[a]) {
			return false
		}
	}
	return true
}
