package ci

import (
	"strings"
	"testing"
)

// TestExtractFlags pins the flag inventory regex: package-level flag
// declarations are collected (deduped, sorted), subcommand flag sets are
// not part of a command's CLI surface.
func TestExtractFlags(t *testing.T) {
	src := `
		addr := flag.String("addr", ":8080", "listen address")
		rows = flag.Int("rows", 20000, "cardinality")
		dup := flag.Int("rows", 1, "duplicate declaration")
		mix := flag.String("version-mix", "", "versions")
		sub := fs.String("baseline", "", "subcommand flag, ignored")
	`
	got := ExtractFlags(src)
	want := []string{"addr", "rows", "version-mix"}
	if len(got) != len(want) {
		t.Fatalf("ExtractFlags = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExtractFlags = %v, want %v", got, want)
		}
	}
}

// TestDocLintPassesOnCompleteDoc: a doc mentioning every route and flag
// produces no problems.
func TestDocLintPassesOnCompleteDoc(t *testing.T) {
	doc := strings.Join([]string{
		"POST /query answers counts; POST /query/batch carries many.",
		"GET /diff/{dataset} reports drift. POST /branch/{parent} forks.",
		"summaryd takes -store DIR and -version N; loadgen takes -version-mix 0,1,2.",
	}, "\n")
	problems := DocLint(doc,
		[]string{"/query", "/query/batch", "/diff/", "/branch/"},
		map[string][]string{
			"summaryd": {"store", "version"},
			"loadgen":  {"version-mix"},
		})
	if len(problems) != 0 {
		t.Fatalf("complete doc flagged: %v", problems)
	}
}

// TestDocLintFailsOnOmissions is the acceptance-criterion failure demo:
// an undocumented route and an undocumented flag each produce a problem,
// and a documented -version-mix cannot mask a missing -version (boundary
// matching).
func TestDocLintFailsOnOmissions(t *testing.T) {
	doc := "POST /query is documented. loadgen takes -version-mix 0,1,2."
	problems := DocLint(doc,
		[]string{"/query", "/branch/"},
		map[string][]string{"loadgen": {"version", "version-mix"}})
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the /branch/ route and the -version flag", problems)
	}
	if !strings.Contains(problems[0], `"/branch/"`) {
		t.Errorf("first problem %q does not name the missing route", problems[0])
	}
	if !strings.Contains(problems[1], "-version ") && !strings.HasSuffix(problems[1], "-version is not documented") {
		t.Errorf("second problem %q does not name the missing -version flag", problems[1])
	}

	// A route mentioned only as a longer path does not count: /query must
	// not satisfy itself via /query/batch.
	problems = DocLint("POST /query/batch only.", []string{"/query"}, nil)
	if len(problems) != 1 {
		t.Fatalf("substring route match leaked through: %v", problems)
	}
}
