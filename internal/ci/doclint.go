package ci

import (
	"fmt"
	"regexp"
	"sort"
)

// flagDecl matches a top-level standard-library flag declaration in a
// command's source, e.g. `flag.String("store", ...)` — the machine-checked
// inventory of a command's user-facing surface. Subcommand flag sets
// (`fs.String(...)`) deliberately do not match.
var flagDecl = regexp.MustCompile(`flag\.\w+\("([a-zA-Z0-9][a-zA-Z0-9-]*)"`)

// ExtractFlags returns the sorted flag names a command's Go source
// declares via the package-level flag functions.
func ExtractFlags(src string) []string {
	seen := make(map[string]bool)
	var names []string
	for _, m := range flagDecl.FindAllStringSubmatch(src, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			names = append(names, m[1])
		}
	}
	sort.Strings(names)
	return names
}

// DocLint checks that an API reference documents the server's full
// serving surface: every registered HTTP route must appear verbatim in
// the doc, and every command flag must appear as `-name` (matched with a
// boundary, so documenting -version-mix cannot mask a missing -version).
// It returns one problem string per omission; an empty slice means the
// doc covers everything. This is the drift gate: adding an endpoint or a
// flag without documenting it fails CI.
func DocLint(doc string, routes []string, flags map[string][]string) []string {
	var problems []string
	for _, route := range routes {
		if !regexp.MustCompile(regexp.QuoteMeta(route) + `($|[^a-zA-Z0-9/])`).MatchString(doc) {
			problems = append(problems, fmt.Sprintf("route %q is not documented", route))
		}
	}
	var cmds []string
	for cmd := range flags {
		cmds = append(cmds, cmd)
	}
	sort.Strings(cmds)
	for _, cmd := range cmds {
		for _, name := range flags[cmd] {
			re := regexp.MustCompile(`-` + regexp.QuoteMeta(name) + `($|[^a-zA-Z0-9-])`)
			if !re.MatchString(doc) {
				problems = append(problems, fmt.Sprintf("%s flag -%s is not documented", cmd, name))
			}
		}
	}
	return problems
}
