// Package ci implements the repository's CI quality gates: a
// benchstat-style benchmark regression comparator (fail on geomean
// slowdown beyond a tolerance) and a golden accuracy comparator that
// diffs experiment reports on their deterministic fields only. Both are
// exercised by cmd/cigates in the gates CI job; their tests prove the
// gates actually fail on injected regressions.
package ci

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSystemEvalFull-8   177859011   6.710 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines survive core-count
// changes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// ParseBench extracts name → ns/op from `go test -bench` output. When a
// benchmark appears several times (e.g. -count > 1), the runs are averaged.
func ParseBench(r io.Reader) (map[string]float64, error) {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("ci: benchmark %s: bad ns/op %q: %w", m[1], m[2], err)
		}
		sums[m[1]] += ns
		counts[m[1]]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ci: reading benchmark output: %w", err)
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

// BenchRow is the per-benchmark outcome of a comparison.
type BenchRow struct {
	Name   string
	BaseNS float64
	CurNS  float64
	// Ratio is CurNS/BaseNS: 1.0 unchanged, 2.0 twice as slow.
	Ratio float64
}

// BenchComparison is the outcome of CompareBench.
type BenchComparison struct {
	Rows []BenchRow
	// Geomean is the geometric mean of the ratios — the benchstat-style
	// aggregate the gate thresholds on.
	Geomean float64
	// MissingFromCurrent lists baseline benchmarks absent from the current
	// run (renamed or deleted hot paths fail the gate loudly rather than
	// silently shrinking coverage).
	MissingFromCurrent []string
}

// CompareBench compares a current benchmark run against the committed
// baseline on the benchmarks they share.
func CompareBench(base, cur map[string]float64) (*BenchComparison, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("ci: the baseline contains no benchmarks")
	}
	cmp := &BenchComparison{}
	logSum := 0.0
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			cmp.MissingFromCurrent = append(cmp.MissingFromCurrent, name)
			continue
		}
		if b <= 0 || c <= 0 {
			return nil, fmt.Errorf("ci: benchmark %s has non-positive ns/op (base %g, current %g)", name, b, c)
		}
		ratio := c / b
		cmp.Rows = append(cmp.Rows, BenchRow{Name: name, BaseNS: b, CurNS: c, Ratio: ratio})
		logSum += math.Log(ratio)
	}
	if len(cmp.Rows) == 0 {
		return nil, fmt.Errorf("ci: no benchmarks in common between baseline and current run")
	}
	cmp.Geomean = math.Exp(logSum / float64(len(cmp.Rows)))
	return cmp, nil
}

// Gate returns an error when the comparison violates the tolerance: a
// geomean slowdown beyond 1+tolerance, or baseline benchmarks missing
// from the current run.
func (c *BenchComparison) Gate(tolerance float64) error {
	var problems []string
	if len(c.MissingFromCurrent) > 0 {
		problems = append(problems, fmt.Sprintf("baseline benchmarks missing from current run: %s (refresh the baseline if they were intentionally renamed)",
			strings.Join(c.MissingFromCurrent, ", ")))
	}
	if limit := 1 + tolerance; c.Geomean > limit {
		problems = append(problems, fmt.Sprintf("geomean slowdown %.2fx exceeds the %.2fx budget", c.Geomean, limit))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("bench gate failed: %s", strings.Join(problems, "; "))
}

// String renders the comparison as an aligned table.
func (c *BenchComparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "current ns/op", "ratio")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-40s %14.1f %14.1f %7.2fx\n", r.Name, r.BaseNS, r.CurNS, r.Ratio)
	}
	fmt.Fprintf(&b, "%-40s %14s %14s %7.2fx\n", "geomean", "", "", c.Geomean)
	return b.String()
}
