package ci

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/experiment"
)

// CompareReports diffs a current cmd/experiment report against the
// committed golden report on its deterministic fields — accuracy metrics,
// estimates, footprints, and workload identity — ignoring every latency
// and elapsed-time field. Numeric fields must agree within tol (absolute).
// The returned slice lists every difference (empty means the gate passes).
func CompareReports(golden, current []byte, tol float64) ([]string, error) {
	var g, c experiment.Report
	if err := json.Unmarshal(golden, &g); err != nil {
		return nil, fmt.Errorf("ci: golden report: %w", err)
	}
	if err := json.Unmarshal(current, &c); err != nil {
		return nil, fmt.Errorf("ci: current report: %w", err)
	}
	var diffs []string
	add := func(format string, args ...interface{}) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	neq := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return !(math.IsNaN(a) && math.IsNaN(b))
		}
		return math.Abs(a-b) > tol
	}

	if g.Rows != c.Rows {
		add("rows: golden %d, current %d", g.Rows, c.Rows)
	}
	if g.Schema != c.Schema {
		add("schema: golden %q, current %q", g.Schema, c.Schema)
	}
	if g.NumQueries != c.NumQueries {
		add("num_queries: golden %d, current %d", g.NumQueries, c.NumQueries)
	}
	if len(g.Estimators) != len(c.Estimators) {
		add("estimator count: golden %d, current %d", len(g.Estimators), len(c.Estimators))
		return diffs, nil
	}
	for i := range g.Estimators {
		ge, ce := &g.Estimators[i], &c.Estimators[i]
		label := ge.Estimator
		if ge.Estimator != ce.Estimator {
			add("estimator %d: golden %q, current %q", i, ge.Estimator, ce.Estimator)
			continue
		}
		if ge.ApproxBytes != ce.ApproxBytes {
			add("%s: approx_bytes golden %d, current %d", label, ge.ApproxBytes, ce.ApproxBytes)
		}
		if ge.Failures != ce.Failures {
			add("%s: failures golden %d, current %d", label, ge.Failures, ce.Failures)
		}
		if neq(ge.MeanFMeasure, ce.MeanFMeasure) {
			add("%s: mean_f_measure golden %v, current %v", label, ge.MeanFMeasure, ce.MeanFMeasure)
		}
		diffSummary := func(kind string, gs, cs [5]float64) {
			fields := [5]string{"count", "mean", "median", "p95", "max"}
			for j := range gs {
				if neq(gs[j], cs[j]) {
					add("%s: %s_errors.%s golden %v, current %v", label, kind, fields[j], gs[j], cs[j])
				}
			}
		}
		diffSummary("count",
			[5]float64{float64(ge.CountErrors.Count), ge.CountErrors.Mean, ge.CountErrors.Median, ge.CountErrors.P95, ge.CountErrors.Max},
			[5]float64{float64(ce.CountErrors.Count), ce.CountErrors.Mean, ce.CountErrors.Median, ce.CountErrors.P95, ce.CountErrors.Max})
		diffSummary("group",
			[5]float64{float64(ge.GroupErrors.Count), ge.GroupErrors.Mean, ge.GroupErrors.Median, ge.GroupErrors.P95, ge.GroupErrors.Max},
			[5]float64{float64(ce.GroupErrors.Count), ce.GroupErrors.Mean, ce.GroupErrors.Median, ce.GroupErrors.P95, ce.GroupErrors.Max})

		if len(ge.Queries) != len(ce.Queries) {
			add("%s: query count golden %d, current %d", label, len(ge.Queries), len(ce.Queries))
			continue
		}
		for j := range ge.Queries {
			gq, cq := &ge.Queries[j], &ce.Queries[j]
			qlabel := fmt.Sprintf("%s %s", label, gq.Query)
			if gq.Query != cq.Query || gq.Kind != cq.Kind {
				add("%s: query identity golden %s/%s, current %s/%s", label, gq.Query, gq.Kind, cq.Query, cq.Kind)
				continue
			}
			if gq.Err != cq.Err {
				add("%s: error golden %q, current %q", qlabel, gq.Err, cq.Err)
				continue
			}
			if neq(gq.Truth, cq.Truth) {
				add("%s: truth golden %v, current %v", qlabel, gq.Truth, cq.Truth)
			}
			if neq(gq.Estimate, cq.Estimate) {
				add("%s: estimate golden %v, current %v", qlabel, gq.Estimate, cq.Estimate)
			}
			if neq(gq.RelativeError, cq.RelativeError) {
				add("%s: relative_error golden %v, current %v", qlabel, gq.RelativeError, cq.RelativeError)
			}
			if neq(gq.FMeasure, cq.FMeasure) {
				add("%s: f_measure golden %v, current %v", qlabel, gq.FMeasure, cq.FMeasure)
			}
		}
	}
	return diffs, nil
}
