package ci

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/polynomial
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSystemEvalFull-8      	177859011	         6.710 ns/op	       0 B/op	       0 allocs/op
BenchmarkSystemEvalMasked-8    	     68254	     17600 ns/op	       0 B/op	       0 allocs/op
BenchmarkSolverShapedSweep-8   	   4633812	       259.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/polynomial	5.118s
BenchmarkSolve-30             	       277	   4333199 ns/op	   29936 B/op	     139 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSystemEvalFull":    6.710,
		"BenchmarkSystemEvalMasked":  17600,
		"BenchmarkSolverShapedSweep": 259.0,
		"BenchmarkSolve":             4333199,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchAveragesRepeats(t *testing.T) {
	out := "BenchmarkX-8 100 10.0 ns/op\nBenchmarkX-8 100 30.0 ns/op\n"
	got, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"] != 20.0 {
		t.Fatalf("BenchmarkX = %v, want 20.0 (mean of repeats)", got["BenchmarkX"])
	}
}

// TestBenchGateFailsOnInjectedRegression is the acceptance check for the
// regression gate: a 2x slowdown on every hot path must fail, a run within
// tolerance must pass.
func TestBenchGateFailsOnInjectedRegression(t *testing.T) {
	base, err := ParseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}

	// Identical run: geomean exactly 1, passes.
	cmp, err := CompareBench(base, base)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Geomean != 1.0 {
		t.Fatalf("self-comparison geomean = %v, want 1.0", cmp.Geomean)
	}
	if err := cmp.Gate(0.30); err != nil {
		t.Fatalf("self-comparison failed the gate: %v", err)
	}

	// Injected regression: everything 2x slower fails the 30% budget.
	slow := make(map[string]float64, len(base))
	for name, ns := range base {
		slow[name] = 2 * ns
	}
	cmp, err = CompareBench(base, slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.Gate(0.30); err == nil {
		t.Fatal("2x regression passed the 30% gate")
	} else if !strings.Contains(err.Error(), "geomean slowdown 2.00x") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// A single benchmark regressing 2x among four moves the geomean to
	// 2^(1/4) ≈ 1.19 — inside the 30% budget by design (benchstat-style
	// aggregate, not per-benchmark).
	one := make(map[string]float64, len(base))
	for name, ns := range base {
		one[name] = ns
	}
	one["BenchmarkSolve"] *= 2
	cmp, err = CompareBench(base, one)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.Gate(0.30); err != nil {
		t.Fatalf("single 2x regression among 4 should pass the geomean gate: %v", err)
	}

	// Within-noise slowdown (10% across the board) passes.
	noisy := make(map[string]float64, len(base))
	for name, ns := range base {
		noisy[name] = 1.1 * ns
	}
	cmp, err = CompareBench(base, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.Gate(0.30); err != nil {
		t.Fatalf("10%% slowdown failed the 30%% gate: %v", err)
	}
}

func TestBenchGateFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]float64{"BenchmarkA": 10, "BenchmarkB": 20}
	cur := map[string]float64{"BenchmarkA": 10}
	cmp, err := CompareBench(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmp.Gate(0.30); err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Fatalf("missing benchmark not reported: %v", err)
	}
}

// sampleReport fabricates a deterministic experiment report.
func sampleReport() *experiment.Report {
	return &experiment.Report{
		Rows:       1000,
		Schema:     "R(a:4, b:6)",
		NumQueries: 2,
		Estimators: []experiment.EstimatorReport{{
			Estimator:    "maxent[COMPOSITE,Ba=2,Bs=8]",
			ApproxBytes:  680,
			CountErrors:  metrics.ErrorSummary{Count: 1, Mean: 0.015, Median: 0.015, P95: 0.015, Max: 0.015},
			GroupErrors:  metrics.ErrorSummary{Count: 1, Mean: 0.12, Median: 0.12, P95: 0.12, Max: 0.12},
			MeanFMeasure: 0.9,
			// Latency fields differ between runs and must be ignored.
			TotalLatencyNS: 123456,
			Queries: []experiment.QueryScore{
				{Query: "q000", Kind: "count", Truth: 250, Estimate: 253.5, RelativeError: 0.015, LatencyNS: 999},
				{Query: "q001", Kind: "groupby", RelativeError: 0.12, FMeasure: 0.9, LatencyNS: 888},
			},
		}},
		ElapsedNS:   555555,
		WorkerCount: 8,
	}
}

func mustJSON(t *testing.T, r *experiment.Report) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenGateIgnoresLatency asserts that two runs differing only in
// timing fields compare clean.
func TestGoldenGateIgnoresLatency(t *testing.T) {
	golden := sampleReport()
	current := sampleReport()
	current.ElapsedNS = 1
	current.WorkerCount = 2
	current.Estimators[0].TotalLatencyNS = 1
	for i := range current.Estimators[0].Queries {
		current.Estimators[0].Queries[i].LatencyNS = 1
	}
	diffs, err := CompareReports(mustJSON(t, golden), mustJSON(t, current), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("latency-only changes reported as drift: %v", diffs)
	}
}

// TestGoldenGateFailsOnInjectedDrift is the acceptance check for the
// accuracy gate: a 1e-8 drift on one error metric must fail at 1e-9
// tolerance, and sub-tolerance drift must pass.
func TestGoldenGateFailsOnInjectedDrift(t *testing.T) {
	golden := sampleReport()

	drifted := sampleReport()
	drifted.Estimators[0].CountErrors.Mean += 1e-8
	diffs, err := CompareReports(mustJSON(t, golden), mustJSON(t, drifted), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("1e-8 drift passed the 1e-9 gate")
	}
	if !strings.Contains(diffs[0], "count_errors.mean") {
		t.Fatalf("drift reported on the wrong field: %v", diffs)
	}

	tiny := sampleReport()
	tiny.Estimators[0].CountErrors.Mean += 1e-12
	diffs, err = CompareReports(mustJSON(t, golden), mustJSON(t, tiny), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("sub-tolerance drift failed the gate: %v", diffs)
	}

	// A changed estimate (the accuracy-bearing field) is caught too.
	wrong := sampleReport()
	wrong.Estimators[0].Queries[0].Estimate += 0.5
	diffs, err = CompareReports(mustJSON(t, golden), mustJSON(t, wrong), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("estimate drift passed the gate")
	}

	// Structural drift (a dropped query) is caught.
	short := sampleReport()
	short.Estimators[0].Queries = short.Estimators[0].Queries[:1]
	diffs, err = CompareReports(mustJSON(t, golden), mustJSON(t, short), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("dropped query passed the gate")
	}
}
