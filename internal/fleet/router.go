package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// NodeConfig names one summaryd node of the fleet. The first node of a
// router's list is the primary: the only node holding the mutable
// relations, so writes (/ingest, /snapshots save, /branch) always land
// there while reads spread across every healthy replica.
type NodeConfig struct {
	Name string
	URL  string
}

// Options configure a Router. The zero value selects the defaults noted
// per field.
type Options struct {
	// Timeout bounds each proxied attempt (default 10s).
	Timeout time.Duration
	// Retries bounds how many additional attempts a retryable request
	// gets after its first (default: one per remaining node).
	Retries int
	// RetryBackoff is the pause before the first retry, doubled per
	// subsequent retry (default 10ms).
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// node's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds traffic before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// MaxBodyBytes bounds proxied request bodies (default 1 MiB) — the
	// router buffers bodies so retries can resend them.
	MaxBodyBytes int64
	// FanoutBatch is the batch size at and above which /query/batch is
	// split across healthy nodes instead of forwarded whole (default 64;
	// < 0 disables fan-out).
	FanoutBatch int
	// CacheSize bounds the router's read cache in entries (default 4096;
	// < 0 disables router-side caching). Warm reads are then answered on
	// the router without a node round trip, kept provably fresh by the
	// generation fencing described on genTable.
	CacheSize int
	// Placements maps dataset names to their partition count K. A count
	// or group-by query against "<dataset>/partitioned" is then scattered
	// as K per-partition queries ("<dataset>/partitioned.p<k>") across
	// the fleet and merged on the router — remotely distributed exactly
	// like summary.Partitioned distributes locally. Versioned (time
	// travel) requests bypass placement and proxy whole.
	Placements map[string]int
	// Client overrides the HTTP client used for proxying (default: a
	// dedicated client; the per-attempt timeout comes from Timeout).
	Client *http.Client
	// Now overrides the wall clock, for tests (default time.Now).
	Now func() time.Time
}

func (o *Options) setDefaults() {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.FanoutBatch == 0 {
		o.FanoutBatch = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
}

// node is one summaryd replica with its runtime routing state.
type node struct {
	name     string
	url      string
	breaker  *breaker
	inflight atomic.Int64
	proxied  atomic.Uint64
	failures atomic.Uint64
}

// Router is the fleet coordinator: it proxies the summaryd serving
// surface across a replica set with health-aware, load-aware node
// selection, retry-with-backoff on replica failure, and per-node circuit
// breaking. Reads go to the least-loaded healthy node; writes go to the
// primary and fan a sync notification out to the replicas, so an ingest
// on one node propagates fleet-wide without re-solving.
type Router struct {
	nodes  []*node
	opts   Options
	mux    *http.ServeMux
	routes []string
	start  time.Time

	// Read-cache state (all nil when Options.CacheSize < 0): answers,
	// the per-estimator generation table proving them fresh, and the
	// in-flight miss collapser.
	cache   *server.Cache
	gens    *genTable
	flights *flightGroup

	rr         atomic.Uint64
	requests   atomic.Uint64
	retries    atomic.Uint64
	notifies   atomic.Uint64
	exhausted  atomic.Uint64
	scattered  atomic.Uint64
	fannedOut  atomic.Uint64
	collapsed  atomic.Uint64
	staleSkips atomic.Uint64
}

// NewRouter builds a router over the replica set. The first node is the
// primary (write target); at least one node is required.
func NewRouter(nodes []NodeConfig, opts Options) (*Router, error) {
	if len(nodes) == 0 {
		return nil, errors.New("fleet: a router needs at least one node")
	}
	opts.setDefaults()
	if opts.Retries <= 0 {
		opts.Retries = len(nodes) - 1
		if opts.Retries < 1 {
			opts.Retries = 1
		}
	}
	rt := &Router{opts: opts, start: opts.Now()}
	if opts.CacheSize > 0 {
		rt.cache = server.NewCache(opts.CacheSize)
		rt.gens = newGenTable()
		rt.flights = newFlightGroup()
	}
	seen := make(map[string]bool, len(nodes))
	for i, nc := range nodes {
		if nc.URL == "" {
			return nil, fmt.Errorf("fleet: node %d has no URL", i)
		}
		name := nc.Name
		if name == "" {
			name = fmt.Sprintf("node%d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate node name %q", name)
		}
		seen[name] = true
		rt.nodes = append(rt.nodes, &node{
			name:    name,
			url:     strings.TrimRight(nc.URL, "/"),
			breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Now),
		})
	}
	rt.mux = http.NewServeMux()
	rt.handle("/query", rt.handleQuery)
	rt.handle("/groupby", rt.handleGroupBy)
	rt.handle("/query/batch", rt.handleBatch)
	rt.handle("/estimators", rt.handleRead)
	rt.handle("/snapshots", rt.handleRead)
	rt.handle("/snapshots/", rt.handleWrite)
	rt.handle("/ingest/", rt.handleWrite)
	rt.handle("/branch/", rt.handleWrite)
	rt.handle("/diff/", rt.handleRead)
	rt.handle("/healthz", rt.handleHealthz)
	rt.handle("/metrics", rt.handleMetrics)
	return rt, nil
}

func (rt *Router) handle(pattern string, fn http.HandlerFunc) {
	rt.mux.HandleFunc(pattern, fn)
	rt.routes = append(rt.routes, pattern)
}

// Routes returns every route pattern the router serves, sorted — the
// inventory the documentation lint gate checks docs/API.md against,
// exactly like server.Routes().
func (rt *Router) Routes() []string {
	out := append([]string(nil), rt.routes...)
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler serving the router surface.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Add(1)
		rt.mux.ServeHTTP(w, r)
	})
}

// --- node selection ---------------------------------------------------

// pick orders candidate nodes for one attempt: breaker-allowed nodes
// first, least in-flight load first, round-robin rotation breaking ties —
// and never a node in tried. prefer (>= 0) pins a preferred node to the
// front when its breaker allows, which placement uses to spread partition
// owners deterministically.
func (rt *Router) pick(tried map[*node]bool, prefer int) *node {
	type cand struct {
		n    *node
		load int64
		pos  int
	}
	rot := int(rt.rr.Add(1))
	var best *cand
	for i, n := range rt.nodes {
		if tried[n] || !n.breaker.Allow() {
			continue
		}
		c := &cand{n: n, load: n.inflight.Load(), pos: (i + rot) % len(rt.nodes)}
		if prefer >= 0 && i == prefer%len(rt.nodes) {
			return n
		}
		if best == nil || c.load < best.load || (c.load == best.load && c.pos < best.pos) {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	return best.n
}

// healthyCount counts nodes whose breaker currently passes traffic.
func (rt *Router) healthyCount() int {
	n := 0
	for _, nd := range rt.nodes {
		if st, _ := nd.breaker.State(); st != BreakerOpen {
			n++
		}
	}
	return n
}

// --- proxy core -------------------------------------------------------

// retryableStatus reports whether a response status marks the node (not
// the request) as the problem: upstream gateway failures and saturation.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// attempt sends one proxied request to one node and returns the response.
// The caller owns breaker/metric accounting via the returned error class.
func (rt *Router) attempt(ctx context.Context, n *node, method, pathAndQuery string, header http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
	req, err := http.NewRequestWithContext(ctx, method, n.url+pathAndQuery, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	for _, k := range []string{"Content-Type", "Accept"} {
		if v := header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	n.inflight.Add(1)
	resp, err := rt.opts.Client.Do(req)
	n.inflight.Add(-1)
	if err != nil {
		cancel()
		return nil, err
	}
	// Tie the context cancel to the body: the caller drains or closes it.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// forward proxies a request across the replica set with retry-with-
// backoff: transport errors and 502/503/504 move on to the next healthy
// node; a 404 is treated as a soft miss (another node may serve an
// estimator this one does not replicate) and retried without penalizing
// the breaker, with the first 404 replayed if every node misses. Any
// other response is relayed as-is. prefer pins the first attempt to a
// node index (-1 = load-based).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, prefer int) {
	resp, n, herr := rt.roundTrip(r.Context(), r.Method, requestPath(r), r.Header, body, prefer)
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	defer resp.Body.Close()
	relayResponse(w, resp, n)
}

// roundTrip is forward without the ResponseWriter: it returns the first
// relayable response and the node that served it.
func (rt *Router) roundTrip(ctx context.Context, method, pathAndQuery string, header http.Header, body []byte, prefer int) (*http.Response, *node, *routeError) {
	tried := make(map[*node]bool, len(rt.nodes))
	var miss *http.Response
	var missNode *node
	var lastErr error
	attempts := rt.opts.Retries + 1
	for i := 0; i < attempts; i++ {
		n := rt.pick(tried, prefer)
		prefer = -1
		if n == nil {
			break
		}
		tried[n] = true
		if i > 0 {
			rt.retries.Add(1)
			backoff(ctx, rt.opts.RetryBackoff<<(i-1))
		}
		resp, err := rt.attempt(ctx, n, method, pathAndQuery, header, body)
		if err != nil {
			n.breaker.Failure()
			n.failures.Add(1)
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) {
			n.breaker.Failure()
			n.failures.Add(1)
			lastErr = fmt.Errorf("%s answered %d", n.name, resp.StatusCode)
			drain(resp)
			continue
		}
		n.breaker.Success()
		if resp.StatusCode == http.StatusNotFound && miss == nil && len(tried) < len(rt.nodes) {
			// Soft miss: hold the 404 and ask a node that may replicate
			// the estimator this one lacks.
			miss, missNode = resp, n
			continue
		}
		if miss != nil {
			drain(miss)
		}
		n.proxied.Add(1)
		return resp, n, nil
	}
	if miss != nil {
		missNode.proxied.Add(1)
		return miss, missNode, nil
	}
	rt.exhausted.Add(1)
	msg := "no healthy replica"
	if lastErr != nil {
		msg = fmt.Sprintf("no healthy replica: last error: %v", lastErr)
	}
	return nil, nil, &routeError{status: http.StatusBadGateway, msg: msg}
}

type routeError struct {
	status int
	msg    string
}

func requestPath(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}

func relayResponse(w http.ResponseWriter, resp *http.Response, n *node) {
	relayHeaders(w, resp, n)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// relayBytes is relayResponse for a body the router already buffered
// (the cache-capture path reads the body before relaying it).
func relayBytes(w http.ResponseWriter, resp *http.Response, n *node, body []byte) {
	relayHeaders(w, resp, n)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func relayHeaders(w http.ResponseWriter, resp *http.Response, n *node) {
	for _, k := range []string{"Content-Type", server.EstimatorGenerationHeader,
		server.SnapshotVersionHeader, server.SnapshotChecksumHeader, server.SnapshotEstimatorHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set(FleetNodeHeader, n.name)
}

// FleetNodeHeader names the node that served a routed response.
const FleetNodeHeader = "X-Fleet-Node"

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// backoff sleeps for d or until ctx is done.
func backoff(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return nil, false
	}
	return body, true
}

// --- read/write handlers ----------------------------------------------

// handleRead proxies a read-only endpoint with retry, preferring the
// primary (which registers estimators replicas may not).
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	rt.forward(w, r, body, 0)
}

// handleWrite proxies a mutating endpoint to the primary, exactly once:
// ingest and snapshot writes are not idempotent, so the router never
// retries them — a failure is the client's to handle. A successful write
// that published new snapshot versions triggers a sync notification to
// every replica, so the fleet converges within one round trip instead of
// one poll interval.
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodGet {
		// The /snapshots/{dataset} and /branch/{...} prefixes also carry
		// read forms; only actual writes are primary-pinned without retry.
		rt.forward(w, r, body, 0)
		return
	}
	primary := rt.nodes[0]
	resp, err := rt.attempt(r.Context(), primary, r.Method, requestPath(r), r.Header, body)
	if err != nil {
		primary.breaker.Failure()
		primary.failures.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("primary %s: %v", primary.name, err))
		return
	}
	defer resp.Body.Close()
	if retryableStatus(resp.StatusCode) {
		primary.breaker.Failure()
		primary.failures.Add(1)
	} else {
		primary.breaker.Success()
		primary.proxied.Add(1)
	}

	// Relay the response, keeping a copy to decide whether new snapshot
	// versions were published (ingest refresh or snapshot save).
	bodyCopy, _ := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
	for _, k := range []string{"Content-Type"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set(FleetNodeHeader, primary.name)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(bodyCopy)

	if resp.StatusCode == http.StatusOK && rt.publishedSnapshots(r.URL.Path, bodyCopy) {
		dataset := datasetOfWrite(r.URL.Path)
		rt.invalidateDataset(dataset)
		rt.notifyReplicas(r.Context(), dataset)
	}
}

// publishedSnapshots reports whether a successful write response implies
// new snapshot versions replicas should pull.
func (rt *Router) publishedSnapshots(path string, body []byte) bool {
	switch {
	case strings.HasPrefix(path, "/ingest/"):
		var res server.IngestResult
		if err := json.Unmarshal(body, &res); err != nil {
			return false
		}
		return res.Refreshed
	case strings.HasPrefix(path, "/snapshots/"), strings.HasPrefix(path, "/branch/"):
		return true
	default:
		return false
	}
}

// datasetOfWrite extracts the dataset segment of a write path ("" when
// the path shape is unexpected — replicas then sync everything).
func datasetOfWrite(path string) string {
	parts := strings.SplitN(strings.Trim(path, "/"), "/", 3)
	if len(parts) >= 2 {
		return parts[1]
	}
	return ""
}

// notifyReplicas POSTs /sync/notify to every non-primary node,
// best-effort: a replica that misses the nudge still converges on its
// next poll.
func (rt *Router) notifyReplicas(ctx context.Context, dataset string) {
	if len(rt.nodes) < 2 {
		return
	}
	payload, _ := json.Marshal(server.SyncNotifyRequest{Dataset: dataset})
	header := http.Header{"Content-Type": []string{"application/json"}}
	var wg sync.WaitGroup
	for _, n := range rt.nodes[1:] {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			resp, err := rt.attempt(ctx, n, http.MethodPost, "/sync/notify", header, payload)
			if err == nil {
				drain(resp)
				rt.notifies.Add(1)
			}
		}(n)
	}
	wg.Wait()
}

// --- health and metrics -----------------------------------------------

// NodeStatus is one node's routing state on /healthz and /metrics.
type NodeStatus struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Breaker      string `json:"breaker"`
	Inflight     int64  `json:"inflight"`
	Proxied      uint64 `json:"proxied"`
	Failures     uint64 `json:"failures"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

// FleetMetricsResponse is the body of the router's GET /metrics.
type FleetMetricsResponse struct {
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      uint64  `json:"requests"`
	Retries       uint64  `json:"retries"`
	Exhausted     uint64  `json:"exhausted"`
	Notifies      uint64  `json:"notifies"`
	Scattered     uint64  `json:"scattered"`
	FannedOut     uint64  `json:"fanned_out"`
	// Collapsed counts reads answered by joining an identical in-flight
	// miss (singleflight): they paid no node round trip of their own.
	Collapsed uint64 `json:"singleflight_collapsed"`
	// StaleSkips counts node answers relayed but refused by the cache
	// because the answering node had not yet applied a routed write.
	StaleSkips uint64             `json:"cache_stale_skips"`
	Cache      *server.CacheStats `json:"cache,omitempty"`
	Nodes      []NodeStatus       `json:"nodes"`
}

func (rt *Router) nodeStatuses() []NodeStatus {
	out := make([]NodeStatus, len(rt.nodes))
	for i, n := range rt.nodes {
		st, opens := n.breaker.State()
		out[i] = NodeStatus{
			Name:         n.name,
			URL:          n.url,
			Breaker:      st.String(),
			Inflight:     n.inflight.Load(),
			Proxied:      n.proxied.Load(),
			Failures:     n.failures.Load(),
			BreakerOpens: opens,
		}
	}
	return out
}

// handleHealthz reports the router's own liveness plus per-node breaker
// state; "degraded" when any breaker is not closed, but always 200 — the
// router is up either way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	status := "ok"
	nodes := rt.nodeStatuses()
	for _, n := range nodes {
		if n.Breaker != BreakerClosed.String() {
			status = "degraded"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"status": status,
		"role":   "router",
		"nodes":  nodes,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	out := FleetMetricsResponse{
		Role:          "router",
		UptimeSeconds: rt.opts.Now().Sub(rt.start).Seconds(),
		Requests:      rt.requests.Load(),
		Retries:       rt.retries.Load(),
		Exhausted:     rt.exhausted.Load(),
		Notifies:      rt.notifies.Load(),
		Scattered:     rt.scattered.Load(),
		FannedOut:     rt.fannedOut.Load(),
		Collapsed:     rt.collapsed.Load(),
		StaleSkips:    rt.staleSkips.Load(),
		Nodes:         rt.nodeStatuses(),
	}
	if rt.cache != nil {
		st := rt.cache.Stats()
		out.Cache = &st
	}
	_ = json.NewEncoder(w).Encode(out)
}

// --- query routing ----------------------------------------------------

// placement returns the partition count for a "<dataset>/partitioned"
// estimator name with a configured placement, or 0.
func (rt *Router) placement(estimator string) int {
	if len(rt.opts.Placements) == 0 {
		return 0
	}
	dataset, ok := strings.CutSuffix(estimator, "/partitioned")
	if !ok {
		return 0
	}
	return rt.opts.Placements[dataset]
}

// handleQuery proxies /query. A POST against a placed partitioned
// estimator (live version only) is scattered: the K per-partition counts
// are fetched across the fleet and summed in partition index order —
// the exact reduction summary.Partitioned performs locally, so the
// scattered answer is bit-identical to a single node's.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodPost && r.URL.Query().Get("version") == "" {
		var req server.QueryRequest
		if err := json.Unmarshal(body, &req); err == nil && req.Version <= 0 {
			if k := rt.placement(req.Estimator); k > 0 {
				rt.scatterQuery(w, r, req, k)
				return
			}
		}
	}
	if read, ok := rt.parseRead(r, body, false); ok {
		rt.serveRead(w, r, body, read)
		return
	}
	rt.forward(w, r, body, -1)
}

func (rt *Router) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if r.Method == http.MethodPost && r.URL.Query().Get("version") == "" {
		var req server.GroupByRequest
		if err := json.Unmarshal(body, &req); err == nil && req.Version <= 0 {
			if k := rt.placement(req.Estimator); k > 0 {
				rt.scatterGroupBy(w, r, req, k)
				return
			}
		}
	}
	if read, ok := rt.parseRead(r, body, true); ok {
		rt.serveRead(w, r, body, read)
		return
	}
	rt.forward(w, r, body, -1)
}

// scatterPartition runs one JSON sub-request per partition concurrently,
// each owner-pinned to node k mod N with failover to any healthy node,
// and hands the decoded bodies back in partition index order.
func (rt *Router) scatterPartition(ctx context.Context, k int, build func(part int) ([]byte, string)) ([][]byte, *routeError) {
	rt.scattered.Add(1)
	bodies := make([][]byte, k)
	errs := make([]*routeError, k)
	header := http.Header{"Content-Type": []string{"application/json"}}
	var wg sync.WaitGroup
	for part := 0; part < k; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			payload, path := build(part)
			resp, _, herr := rt.roundTrip(ctx, http.MethodPost, path, header, payload, part)
			if herr != nil {
				errs[part] = herr
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
			if err != nil {
				errs[part] = &routeError{status: http.StatusBadGateway, msg: err.Error()}
				return
			}
			if resp.StatusCode != http.StatusOK {
				var e struct {
					Error string `json:"error"`
				}
				_ = json.Unmarshal(b, &e)
				errs[part] = &routeError{status: resp.StatusCode, msg: fmt.Sprintf("partition %d: %s", part, e.Error)}
				return
			}
			bodies[part] = b
		}(part)
	}
	wg.Wait()
	for _, herr := range errs {
		if herr != nil {
			return nil, herr
		}
	}
	return bodies, nil
}

func (rt *Router) scatterQuery(w http.ResponseWriter, r *http.Request, req server.QueryRequest, k int) {
	dataset := strings.TrimSuffix(req.Estimator, "/partitioned")
	bodies, herr := rt.scatterPartition(r.Context(), k, func(part int) ([]byte, string) {
		sub := server.QueryRequest{Estimator: server.PartitionEntryName(dataset, part), Predicate: req.Predicate}
		payload, _ := json.Marshal(sub)
		return payload, "/query"
	})
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	// Sum in partition index order — float addition is not associative,
	// so the order IS the contract for bit-identity with local serving.
	total := 0.0
	for part, b := range bodies {
		var qr server.QueryResponse
		if err := json.Unmarshal(b, &qr); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("partition %d: %v", part, err))
			return
		}
		total += qr.Count
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(server.QueryResponse{Estimator: req.Estimator, Count: total})
}

func (rt *Router) scatterGroupBy(w http.ResponseWriter, r *http.Request, req server.GroupByRequest, k int) {
	dataset := strings.TrimSuffix(req.Estimator, "/partitioned")
	bodies, herr := rt.scatterPartition(r.Context(), k, func(part int) ([]byte, string) {
		sub := server.GroupByRequest{
			Estimator: server.PartitionEntryName(dataset, part),
			Predicate: req.Predicate,
			GroupBy:   req.GroupBy,
		}
		payload, _ := json.Marshal(sub)
		return payload, "/groupby"
	})
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return
	}
	partial := make([][]core.GroupEstimate, k)
	for part, b := range bodies {
		var gr server.GroupByResponse
		if err := json.Unmarshal(b, &gr); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("partition %d: %v", part, err))
			return
		}
		groups := make([]core.GroupEstimate, len(gr.Groups))
		for i, g := range gr.Groups {
			groups[i] = core.GroupEstimate{Values: g.Values, Estimate: g.Estimate}
		}
		partial[part] = groups
	}
	merged := core.MergeGroupEstimates(partial...)
	rows := make([]server.GroupRow, len(merged))
	for i, g := range merged {
		rows[i] = server.GroupRow{Values: g.Values, Estimate: g.Estimate}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(server.GroupByResponse{Estimator: req.Estimator, Groups: rows})
}
