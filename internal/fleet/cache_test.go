package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/fleet/fleettest"
	"repro/internal/query"
	"repro/internal/server"
)

// postTagged posts a JSON body and returns the status, the X-Router-Cache
// header value, and the raw response body.
func postTagged(t testing.TB, url string, body interface{}) (int, string, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get(fleet.RouterCacheHeader), raw
}

// TestRouterCacheEquivalenceAndHotSwap is the read cache's correctness
// oracle. A randomized workload is asked through the router twice on the
// JSON wire and once through each batch wire: repeat asks must be served
// from the router cache (X-Router-Cache: hit) and every answer — cached
// or not — must stay bit-identical to a direct summaryd query. Then a
// routed ingest crosses the refresh threshold and hot-swaps the
// estimator's generation: the very next ask of every cached query must
// MISS (no cached answer survives a generation change) and match the
// fresh direct answer, and the ask after that must be a hit again.
func TestRouterCacheEquivalenceAndHotSwap(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes:       1,
		RefreshRows: 300,
		Router:      fleet.Options{Timeout: 5 * time.Second},
	})
	primary := f.Primary().URL()
	routed := f.RouterURL()
	est := "demo/maxent"
	rng := rand.New(rand.NewSource(31))

	// Dedupe the workload: the miss-after-invalidation assertion below
	// needs every query to be distinct, or a duplicate's "first" ask would
	// legitimately hit on its twin's entry.
	var workload []experiment.Query
	seen := map[string]bool{}
	for _, q := range experiment.GenerateWorkload(experiment.SyntheticSchema(), 24, rng) {
		key, err := json.Marshal(struct {
			P *query.Predicate
			G []int
		}{q.Pred, q.GroupBy})
		if err != nil {
			t.Fatal(err)
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			workload = append(workload, q)
		}
	}

	// check asks one query through the router and compares it bitwise
	// against a fresh direct answer. want is "hit", "miss", or "" (don't
	// care) for the X-Router-Cache header.
	check := func(phase string, qi int, q experiment.Query, want string) {
		t.Helper()
		label := fmt.Sprintf("%s: query %d", phase, qi)
		assertTag := func(tag string) {
			t.Helper()
			if hit := tag == "hit"; want != "" && hit != (want == "hit") {
				t.Fatalf("%s: cache hit = %v, want %s", label, hit, want)
			}
		}
		if q.IsGroupBy() {
			req := server.GroupByRequest{Estimator: est, Predicate: q.Pred, GroupBy: q.GroupBy}
			var direct server.GroupByResponse
			if s := postJSON(t, primary+"/groupby", req, &direct); s != http.StatusOK {
				t.Fatalf("%s: direct status %d", label, s)
			}
			s, tag, raw := postTagged(t, routed+"/groupby", req)
			if s != http.StatusOK {
				t.Fatalf("%s: routed status %d: %s", label, s, raw)
			}
			assertTag(tag)
			var got server.GroupByResponse
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatal(err)
			}
			sameGroups(t, label, direct.Groups, got.Groups)
			return
		}
		req := server.QueryRequest{Estimator: est, Predicate: q.Pred}
		var direct server.QueryResponse
		if s := postJSON(t, primary+"/query", req, &direct); s != http.StatusOK {
			t.Fatalf("%s: direct status %d", label, s)
		}
		s, tag, raw := postTagged(t, routed+"/query", req)
		if s != http.StatusOK {
			t.Fatalf("%s: routed status %d: %s", label, s, raw)
		}
		assertTag(tag)
		var got server.QueryResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		sameCount(t, label, direct.Count, got.Count)
	}

	// checkBatches drives the same workload through both batch wires and
	// asserts the expected cache tag plus bitwise equivalence with the
	// primary's own batch answers.
	items := make([]query.BatchItem, len(workload))
	jsonItems := make([]server.BatchQueryItem, len(workload))
	for i, q := range workload {
		items[i] = query.BatchItem{Pred: q.Pred, GroupBy: q.GroupBy}
		jsonItems[i] = server.BatchQueryItem{Predicate: q.Pred, GroupBy: q.GroupBy}
	}
	frame, err := query.AppendBatchAt(nil, est, 0, items)
	if err != nil {
		t.Fatal(err)
	}
	checkBatches := func(phase, want string) {
		t.Helper()
		direct := postBinaryBatch(t, primary, frame)

		resp, err := http.Post(routed+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		tag := resp.Header.Get(fleet.RouterCacheHeader)
		_, answers, err := query.DecodeAnswers(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hit := tag == "hit"; want != "" && hit != (want == "hit") {
			t.Fatalf("%s: binary batch cache hit = %v, want %s", phase, hit, want)
		}
		if err := sameAnswers(direct, answers); err != nil {
			t.Fatalf("%s: binary batch: %v", phase, err)
		}

		var directJSON server.BatchQueryResponse
		req := server.BatchQueryRequest{Estimator: est, Queries: jsonItems}
		if s := postJSON(t, primary+"/query/batch", req, &directJSON); s != http.StatusOK {
			t.Fatalf("%s: direct json batch status %d", phase, s)
		}
		s, jtag, raw := postTagged(t, routed+"/query/batch", req)
		if s != http.StatusOK {
			t.Fatalf("%s: routed json batch status %d: %s", phase, s, raw)
		}
		if jtag != "hit" {
			// The binary pass above cached every item, so the JSON pass over
			// the same items must be served on the router.
			t.Fatalf("%s: json batch after binary batch was not a cache hit", phase)
		}
		var gotJSON server.BatchQueryResponse
		if err := json.Unmarshal(raw, &gotJSON); err != nil {
			t.Fatal(err)
		}
		if len(directJSON.Answers) != len(gotJSON.Answers) {
			t.Fatalf("%s: routed %d json answers, direct %d", phase, len(gotJSON.Answers), len(directJSON.Answers))
		}
		for i := range directJSON.Answers {
			w, g := directJSON.Answers[i], gotJSON.Answers[i]
			label := fmt.Sprintf("%s: json batch item %d", phase, i)
			if w.Error != g.Error || w.IsGroup != g.IsGroup {
				t.Fatalf("%s: routed %+v, direct %+v", label, g, w)
			}
			if w.IsGroup {
				sameGroups(t, label, w.Groups, g.Groups)
			} else if w.Error == "" {
				sameCount(t, label, w.Count, g.Count)
			}
		}
	}

	for qi, q := range workload {
		check("pre-swap first ask", qi, q, "") // may hit only if a prior query shares the entry — deduped, so effectively cold
		check("pre-swap second ask", qi, q, "hit")
	}
	checkBatches("pre-swap", "hit") // every item was cached by the sequential pass

	// Time travel: version-1 answers are immutable; the second ask must be
	// a router-cache hit with the bit-identical count.
	var firstCount experiment.Query
	found := false
	for _, q := range workload {
		if !q.IsGroupBy() {
			firstCount, found = q, true
			break
		}
	}
	if !found {
		t.Fatal("workload has no count query")
	}
	vreq := server.QueryRequest{Estimator: est, Predicate: firstCount.Pred, Version: 1}
	var directV1 server.QueryResponse
	if s := postJSON(t, primary+"/query", vreq, &directV1); s != http.StatusOK {
		t.Fatalf("direct v1 query status %d", s)
	}
	if s, _, _ := postTagged(t, routed+"/query", vreq); s != http.StatusOK {
		t.Fatalf("routed v1 query status %d", s)
	}
	s, tag, raw := postTagged(t, routed+"/query", vreq)
	if s != http.StatusOK {
		t.Fatalf("routed v1 repeat status %d", s)
	}
	if tag != "hit" {
		t.Fatal("repeat time-travel query was not a cache hit")
	}
	var gotV1 server.QueryResponse
	if err := json.Unmarshal(raw, &gotV1); err != nil {
		t.Fatal(err)
	}
	sameCount(t, "time travel v1", directV1.Count, gotV1.Count)

	// The hot swap: a routed ingest crosses the 300-row refresh threshold,
	// bumping the live generation and fencing the router cache.
	var ing server.IngestResult
	if s := postJSON(t, routed+"/ingest/demo", server.IngestRequest{Rows: fleettest.Rows(400, 2)}, &ing); s != http.StatusOK {
		t.Fatalf("routed ingest status %d", s)
	}
	if !ing.Refreshed {
		t.Fatalf("ingest of 400 rows above the 300-row threshold did not refresh: %+v", ing)
	}
	if err := f.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The zero-staleness drill: every query was cached above, and every
	// first re-ask must now MISS and match the post-swap direct answer;
	// the re-cached entry then serves hits again.
	for qi, q := range workload {
		check("post-swap first ask", qi, q, "miss")
		check("post-swap second ask", qi, q, "hit")
	}
	checkBatches("post-swap", "hit")

	m := routerMetrics(t, routed)
	if m.Cache == nil {
		t.Fatal("router metrics carry no cache stats with the cache enabled")
	}
	if m.Cache.Hits == 0 || m.Cache.Invalidations == 0 {
		t.Fatalf("cache stats do not reflect the run: %+v", *m.Cache)
	}
	if m.StaleSkips != 0 {
		t.Fatalf("%d node answers were refused as stale in a single-node fleet", m.StaleSkips)
	}
}

// TestRouterCacheOversizedResponseStreamsWhole guards against the cache
// capture path truncating node responses: a 200 whose body exceeds the
// router's MaxBodyBytes cap must reach the client COMPLETE (the cap
// bounds what the router buffers, not what the client receives) and must
// never be cached — while responses under the cap keep caching normally.
func TestRouterCacheOversizedResponseStreamsWhole(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes: 1,
		Router: fleet.Options{
			Timeout: 5 * time.Second,
			// Small enough that a 48-group group-by response (~2 KB)
			// overflows it while request bodies and match-all count
			// responses stay under it.
			MaxBodyBytes: 512,
		},
	})
	primary := f.Primary().URL()
	routed := f.RouterURL()
	est := "demo/maxent"

	// The oversized read: group-by over attrs 1 and 3 (domains 6 x 8 = 48
	// rows). Direct answer first, as the bit-identity oracle.
	greq := server.GroupByRequest{Estimator: est, GroupBy: []int{1, 3}}
	var direct server.GroupByResponse
	if s := postJSON(t, primary+"/groupby", greq, &direct); s != http.StatusOK {
		t.Fatalf("direct groupby status %d", s)
	}
	if raw, _ := json.Marshal(direct); len(raw) <= 512 {
		t.Fatalf("fixture too small: direct response is %d bytes, need > MaxBodyBytes=512", len(raw))
	}
	for ask := 1; ask <= 2; ask++ {
		s, tag, raw := postTagged(t, routed+"/groupby", greq)
		if s != http.StatusOK {
			t.Fatalf("routed groupby ask %d: status %d: %s", ask, s, raw)
		}
		if tag == "hit" {
			t.Fatalf("routed groupby ask %d: an oversized response was served from the cache", ask)
		}
		var got server.GroupByResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("routed groupby ask %d: body is not complete JSON (truncated relay?): %v", ask, err)
		}
		sameGroups(t, fmt.Sprintf("oversized ask %d", ask), direct.Groups, got.Groups)
	}

	// A read under the cap still caches: the second ask is a router hit.
	qreq := server.QueryRequest{Estimator: est}
	var directQ server.QueryResponse
	if s := postJSON(t, primary+"/query", qreq, &directQ); s != http.StatusOK {
		t.Fatalf("direct query status %d", s)
	}
	if s, _, _ := postTagged(t, routed+"/query", qreq); s != http.StatusOK {
		t.Fatalf("routed query status %d", s)
	}
	s, tag, raw := postTagged(t, routed+"/query", qreq)
	if s != http.StatusOK {
		t.Fatalf("routed query repeat status %d", s)
	}
	if tag != "hit" {
		t.Fatal("an under-cap read did not cache with a small MaxBodyBytes")
	}
	var gotQ server.QueryResponse
	if err := json.Unmarshal(raw, &gotQ); err != nil {
		t.Fatal(err)
	}
	sameCount(t, "under-cap hit", directQ.Count, gotQ.Count)
}

// TestRouterSingleflightCollapse proves the duplicate-suppression
// guarantee: N concurrent identical cold reads cost the fleet exactly ONE
// node round trip. The node-side request counters are the ground truth —
// any request that neither joined the in-flight leader nor hit the cache
// would show up there.
func TestRouterSingleflightCollapse(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes:  2,
		Router: fleet.Options{Timeout: 5 * time.Second},
	})
	routed := f.RouterURL()

	nodeRequests := func() uint64 {
		var total uint64
		for _, n := range f.Nodes {
			resp, err := http.Get(n.URL() + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			var m server.MetricsResponse
			err = json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			total += m.RequestsTotal
		}
		return total
	}

	// The oracle answer, fetched directly BEFORE the baseline is taken.
	var direct server.QueryResponse
	if s := postJSON(t, f.Primary().URL()+"/query", server.QueryRequest{Estimator: "demo/maxent"}, &direct); s != http.StatusOK {
		t.Fatalf("direct query status %d", s)
	}
	before := nodeRequests()
	m0 := routerMetrics(t, routed)

	const concurrent = 16
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(routed+"/query", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs <- fmt.Errorf("worker %d: %v", i, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("worker %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			var got server.QueryResponse
			if err := json.Unmarshal(raw, &got); err != nil {
				errs <- fmt.Errorf("worker %d: %v", i, err)
				return
			}
			if math.Float64bits(got.Count) != math.Float64bits(direct.Count) {
				errs <- fmt.Errorf("worker %d: count %v, want %v", i, got.Count, direct.Count)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if d := nodeRequests() - before; d != 1 {
		t.Fatalf("%d concurrent identical cold reads reached the nodes %d times, want exactly 1 (singleflight + cache must absorb the rest)", concurrent, d)
	}
	// The other N-1 were either collapsed onto the leader's flight or —
	// if they arrived after the leader finished — served from the cache.
	// Which way each one fell depends on scheduling; the sum does not.
	m1 := routerMetrics(t, routed)
	if m1.Cache == nil || m0.Cache == nil {
		t.Fatal("router metrics carry no cache stats with the cache enabled")
	}
	collapsed := m1.Collapsed - m0.Collapsed
	hits := m1.Cache.Hits - m0.Cache.Hits
	if collapsed+hits != concurrent-1 {
		t.Fatalf("collapsed %d + cache hits %d = %d, want %d — some duplicate was neither collapsed nor cached",
			collapsed, hits, collapsed+hits, concurrent-1)
	}
}
