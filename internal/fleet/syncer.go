package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/store"
)

// SyncerOptions configure a replica's pull loop.
type SyncerOptions struct {
	// Interval is the poll period (default 2s); notifications wake the
	// loop sooner.
	Interval time.Duration
	// Timeout bounds each HTTP call to the origin (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client (default: a dedicated one).
	Client *http.Client
}

// Syncer keeps a replica's snapshot store and registry converged with an
// origin node, pull-by-version: it lists the origin's manifests, fetches
// every snapshot version the local store lacks over GET /sync/snapshot,
// imports each AT the origin's version number, and hot-swaps the latest
// of every dataset key into the registry via the same Register/Swap path
// a local refresh uses. Because snapshot restore is bit-identical, a
// converged replica answers exactly like the origin — including
// ?version=N time travel, since historical versions replicate too.
type Syncer struct {
	origin string
	st     *store.Store
	reg    *server.Registry
	opts   SyncerOptions

	mu      sync.Mutex
	cache   *server.Cache
	lastErr string

	wake     chan struct{}
	syncs    atomic.Uint64
	imported atomic.Uint64
	swaps    atomic.Uint64
}

// NewSyncer builds a syncer pulling from the origin node's base URL into
// the local store and registry. Call AttachCache before Run when the
// serving cache should be invalidated on swaps, then run the loop:
//
//	syncer := fleet.NewSyncer(originURL, st, reg, fleet.SyncerOptions{})
//	srv := server.New(reg, server.Options{SyncNotify: syncer.Notify, ...})
//	syncer.AttachCache(srv.Cache())
//	go syncer.Run(ctx)
func NewSyncer(origin string, st *store.Store, reg *server.Registry, opts SyncerOptions) *Syncer {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	return &Syncer{
		origin: origin,
		st:     st,
		reg:    reg,
		opts:   opts,
		wake:   make(chan struct{}, 1),
	}
}

// AttachCache hands the syncer the serving result cache so a hot swap
// invalidates the replaced generation's answers, mirroring Live.refresh.
func (s *Syncer) AttachCache(c *server.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// Notify wakes the sync loop without blocking: it is the hook behind
// POST /sync/notify (server.Options.SyncNotify). The dataset argument is
// accepted for the hook signature; a pass syncs everything — pulls are
// cheap no-ops for converged datasets.
func (s *Syncer) Notify(string) {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Run pulls once immediately, then on every poll tick or notification,
// until ctx is done. Errors are retained for Status, never fatal: an
// origin outage leaves the replica serving its current versions.
func (s *Syncer) Run(ctx context.Context) {
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	s.syncLogged(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		case <-s.wake:
		}
		s.syncLogged(ctx)
	}
}

func (s *Syncer) syncLogged(ctx context.Context) {
	_, err := s.SyncOnce(ctx)
	s.mu.Lock()
	if err != nil {
		s.lastErr = err.Error()
	} else {
		s.lastErr = ""
	}
	s.mu.Unlock()
}

// SyncReport summarizes one pull pass.
type SyncReport struct {
	// Imported counts snapshot versions fetched and stored.
	Imported int
	// Swapped lists the registry entries that moved to a new latest
	// version (registered fresh or hot-swapped), sorted.
	Swapped []string
}

// SyncOnce runs one pull pass and reports what moved. Per-dataset
// problems abort the pass with an error; everything imported before the
// failure stays imported (the pass is resumable by construction).
func (s *Syncer) SyncOnce(ctx context.Context) (SyncReport, error) {
	var rep SyncReport
	s.syncs.Add(1)
	manifests, err := s.fetchManifests(ctx)
	if err != nil {
		return rep, err
	}
	for _, man := range manifests {
		local := make(map[int]bool)
		if lman, err := s.st.Versions(man.Dataset); err == nil {
			for _, sn := range lman.Snapshots {
				local[sn.Version] = true
			}
		}
		fetchedLatest := false
		latest := 0
		for _, sn := range man.Snapshots {
			if sn.Version > latest {
				latest = sn.Version
			}
			if local[sn.Version] {
				continue
			}
			if err := s.fetchSnapshot(ctx, man.Dataset, sn.Version); err != nil {
				return rep, err
			}
			rep.Imported++
			s.imported.Add(1)
			if sn.Version >= latest {
				fetchedLatest = true
			}
		}
		_, registered := s.reg.Get(man.Dataset)
		if latest == 0 || (registered && !fetchedLatest) {
			continue
		}
		if err := s.swapLatest(man.Dataset); err != nil {
			return rep, err
		}
		rep.Swapped = append(rep.Swapped, man.Dataset)
		s.swaps.Add(1)
	}
	sort.Strings(rep.Swapped)
	return rep, nil
}

// fetchManifests lists the origin's datasets via GET /snapshots.
func (s *Syncer) fetchManifests(ctx context.Context) ([]store.Manifest, error) {
	ctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.origin+"/snapshots", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: sync: list %s: %w", s.origin, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("fleet: sync: list %s: %d: %s", s.origin, resp.StatusCode, b)
	}
	var out server.SnapshotsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("fleet: sync: list %s: %w", s.origin, err)
	}
	return out.Datasets, nil
}

// fetchSnapshot pulls one framed snapshot and imports it at the origin's
// version number. ImportFramed verifies the frame end to end and treats
// a concurrent identical import as success.
func (s *Syncer) fetchSnapshot(ctx context.Context, dataset string, version int) error {
	ctx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	url := fmt.Sprintf("%s/sync/snapshot?dataset=%s&version=%d", s.origin, dataset, version)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: sync %q v%d: %w", dataset, version, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("fleet: sync %q v%d: %d: %s", dataset, version, resp.StatusCode, b)
	}
	framed, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("fleet: sync %q v%d: %w", dataset, version, err)
	}
	if _, err := s.st.ImportFramed(dataset, version, framed); err != nil {
		return err
	}
	return nil
}

// swapLatest loads the dataset's latest local version and registers or
// hot-swaps it into the registry, invalidating the serving cache — the
// replica-side twin of Live.refresh's swap stage.
func (s *Syncer) swapLatest(dataset string) error {
	est, info, err := s.st.Load(dataset, 0)
	if err != nil {
		return fmt.Errorf("fleet: sync swap %q: %w", dataset, err)
	}
	sc, ok := est.(interface{ Schema() *schema.Schema })
	if !ok {
		return fmt.Errorf("fleet: sync swap %q (v%d): estimator %T carries no schema", dataset, info.Version, est)
	}
	if _, registered := s.reg.Get(dataset); registered {
		if _, err := s.reg.Swap(dataset, est, sc.Schema()); err != nil {
			return err
		}
	} else if err := s.reg.Register(dataset, est, sc.Schema()); err != nil {
		return err
	}
	s.mu.Lock()
	cache := s.cache
	s.mu.Unlock()
	if cache != nil {
		cache.InvalidatePrefix(dataset + "\x00")
	}
	return nil
}

// SyncStatus reports the syncer's counters for /metrics and tests.
type SyncStatus struct {
	Origin    string `json:"origin"`
	Syncs     uint64 `json:"syncs"`
	Imported  uint64 `json:"imported"`
	Swaps     uint64 `json:"swaps"`
	LastError string `json:"last_error,omitempty"`
}

// Status returns the current sync counters.
func (s *Syncer) Status() SyncStatus {
	s.mu.Lock()
	lastErr := s.lastErr
	s.mu.Unlock()
	return SyncStatus{
		Origin:    s.origin,
		Syncs:     s.syncs.Load(),
		Imported:  s.imported.Load(),
		Swaps:     s.swaps.Load(),
		LastError: lastErr,
	}
}
