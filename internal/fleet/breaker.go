package fleet

import (
	"sync"
	"time"
)

// BreakerState is the lifecycle position of one node's circuit breaker.
type BreakerState int

// The three breaker states: Closed passes traffic, Open sheds it, and
// HalfOpen admits a single probe after the cooldown.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for /metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a consecutive-failure circuit breaker guarding one node:
// threshold consecutive failures open it, the cooldown later it admits
// exactly one probe (half-open), and the probe's outcome closes or
// reopens it. It exists so a dead replica costs the router one connection
// timeout per cooldown instead of one per request.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	opens       uint64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may be sent to the node right now. In
// the open state it transitions to half-open — and admits the caller as
// the probe — once the cooldown has elapsed.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is already in flight
		return false
	}
}

// Success records a served request, closing the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
}

// Failure records a failed request. A half-open probe failure reopens
// immediately; otherwise the breaker opens at the consecutive-failure
// threshold.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == BreakerHalfOpen || b.consecutive >= b.threshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.consecutive = 0
	}
}

// State returns the current state without side effects (no open →
// half-open transition), plus how often the breaker has opened.
func (b *breaker) State() (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
