package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/fleet/fleettest"
	"repro/internal/query"
	"repro/internal/server"
)

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t testing.TB, url string, body, out interface{}) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// sameCount asserts bit-identical counts.
func sameCount(t testing.TB, label string, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("%s: routed answer %v, direct answer %v (must be bit-identical)", label, got, want)
	}
}

// sameGroups asserts bit-identical group-by answers.
func sameGroups(t testing.TB, label string, want, got []server.GroupRow) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: routed %d groups, direct %d", label, len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(want[i].Values) != fmt.Sprint(got[i].Values) ||
			math.Float64bits(want[i].Estimate) != math.Float64bits(got[i].Estimate) {
			t.Fatalf("%s: group %d routed %+v, direct %+v", label, i, got[i], want[i])
		}
	}
}

// TestFleetEquivalence is the fleet's correctness oracle: every wire the
// router serves — sequential /query and /groupby, JSON batch, binary
// batch, and ?version=N time travel — must answer bit-identically to a
// single summaryd over the same store, before AND after an ingest-driven
// generation hot-swap propagates through the fleet.
func TestFleetEquivalence(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes:       3,
		RefreshRows: 300,
		Router:      fleet.Options{FanoutBatch: 8, Timeout: 5 * time.Second},
	})
	primary := f.Primary().URL()
	routed := f.RouterURL()
	est := "demo/maxent"
	rng := rand.New(rand.NewSource(11))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 24, rng)

	checkSequential := func(phase string) {
		t.Helper()
		for qi, q := range workload {
			label := fmt.Sprintf("%s: query %d", phase, qi)
			if q.IsGroupBy() {
				var want, got server.GroupByResponse
				req := server.GroupByRequest{Estimator: est, Predicate: q.Pred, GroupBy: q.GroupBy}
				ws := postJSON(t, primary+"/groupby", req, &want)
				gs := postJSON(t, routed+"/groupby", req, &got)
				if ws != gs {
					t.Fatalf("%s: direct status %d, routed %d", label, ws, gs)
				}
				if ws == http.StatusOK {
					sameGroups(t, label, want.Groups, got.Groups)
				}
				continue
			}
			var want, got server.QueryResponse
			req := server.QueryRequest{Estimator: est, Predicate: q.Pred}
			ws := postJSON(t, primary+"/query", req, &want)
			gs := postJSON(t, routed+"/query", req, &got)
			if ws != gs {
				t.Fatalf("%s: direct status %d, routed %d", label, ws, gs)
			}
			if ws == http.StatusOK {
				sameCount(t, label, want.Count, got.Count)
			}
		}
	}

	items := make([]query.BatchItem, 0, len(workload))
	jsonItems := make([]server.BatchQueryItem, 0, len(workload))
	for _, q := range workload {
		items = append(items, query.BatchItem{Pred: q.Pred, GroupBy: q.GroupBy})
		jsonItems = append(jsonItems, server.BatchQueryItem{Predicate: q.Pred, GroupBy: q.GroupBy})
	}

	checkBatches := func(phase string) {
		t.Helper()
		// JSON wire: the batch is big enough to fan out across nodes.
		var want, got server.BatchQueryResponse
		req := server.BatchQueryRequest{Estimator: est, Queries: jsonItems}
		if s := postJSON(t, primary+"/query/batch", req, &want); s != http.StatusOK {
			t.Fatalf("%s: direct batch status %d", phase, s)
		}
		if s := postJSON(t, routed+"/query/batch", req, &got); s != http.StatusOK {
			t.Fatalf("%s: routed batch status %d", phase, s)
		}
		if len(want.Answers) != len(got.Answers) {
			t.Fatalf("%s: routed %d answers, direct %d", phase, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			w, g := want.Answers[i], got.Answers[i]
			label := fmt.Sprintf("%s: json batch item %d", phase, i)
			if w.Error != g.Error || w.IsGroup != g.IsGroup {
				t.Fatalf("%s: routed %+v, direct %+v", label, g, w)
			}
			if w.IsGroup {
				sameGroups(t, label, w.Groups, g.Groups)
			} else if w.Error == "" {
				sameCount(t, label, w.Count, g.Count)
			}
		}

		// Binary wire: same items as one frame, answers frame-decoded.
		frame, err := query.AppendBatchAt(nil, est, 0, items)
		if err != nil {
			t.Fatal(err)
		}
		decodeBinary := func(url string) []query.BatchAnswer {
			resp, err := http.Post(url+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(frame))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("%s: binary batch at %s: %d %s", phase, url, resp.StatusCode, b)
			}
			_, answers, err := query.DecodeAnswers(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return answers
		}
		wantB := decodeBinary(primary)
		gotB := decodeBinary(routed)
		if len(wantB) != len(gotB) {
			t.Fatalf("%s: binary routed %d answers, direct %d", phase, len(gotB), len(wantB))
		}
		for i := range wantB {
			w, g := wantB[i], gotB[i]
			label := fmt.Sprintf("%s: binary batch item %d", phase, i)
			if w.Error != g.Error || w.IsGroup != g.IsGroup || len(w.Groups) != len(g.Groups) {
				t.Fatalf("%s: routed %+v, direct %+v", label, g, w)
			}
			if !w.IsGroup && w.Error == "" {
				sameCount(t, label, w.Count, g.Count)
			}
			for j := range w.Groups {
				if fmt.Sprint(w.Groups[j].Values) != fmt.Sprint(g.Groups[j].Values) ||
					math.Float64bits(w.Groups[j].Estimate) != math.Float64bits(g.Groups[j].Estimate) {
					t.Fatalf("%s: group %d routed %+v, direct %+v", label, j, g.Groups[j], w.Groups[j])
				}
			}
		}
	}

	checkSequential("pre-swap")
	checkBatches("pre-swap")

	// Generation hot-swap: ingest through the router crosses the refresh
	// threshold on the primary, publishes new snapshot versions, and the
	// router's sync notification pulls every replica forward.
	var ing server.IngestResult
	if s := postJSON(t, routed+"/ingest/demo", server.IngestRequest{Rows: fleettest.Rows(400, 3)}, &ing); s != http.StatusOK {
		t.Fatalf("routed ingest status %d", s)
	}
	if !ing.Refreshed {
		t.Fatalf("ingest of 400 rows above the 300-row threshold did not refresh: %+v", ing)
	}
	if err := f.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("fleet did not converge after ingest: %v", err)
	}

	checkSequential("post-swap")
	checkBatches("post-swap")

	// Time travel: v1 (the pre-ingest build) must answer identically
	// whether served by the primary or routed to a replica's history.
	for _, version := range []int{1, 2} {
		for qi, q := range workload {
			if q.IsGroupBy() {
				continue
			}
			var want, got server.QueryResponse
			req := server.QueryRequest{Estimator: est, Predicate: q.Pred, Version: version}
			ws := postJSON(t, primary+"/query", req, &want)
			gs := postJSON(t, fmt.Sprintf("%s/query?version=%d", routed, version), server.QueryRequest{Estimator: est, Predicate: q.Pred}, &got)
			if ws != gs {
				t.Fatalf("time travel v%d query %d: direct status %d, routed %d", version, qi, ws, gs)
			}
			if ws != http.StatusOK {
				continue
			}
			if got.Version != version {
				t.Fatalf("time travel v%d query %d: routed answered from version %d", version, qi, got.Version)
			}
			sameCount(t, fmt.Sprintf("time travel v%d query %d", version, qi), want.Count, got.Count)
		}
	}
}

// TestFleetPlacementEquivalence proves the distributed partitioned path:
// a partitioned estimator with a placement is scattered as K per-
// partition queries across the fleet and merged on the router — and the
// merged answers (counts and group-bys) are bit-identical to the whole
// Partitioned estimator on a single node.
func TestFleetPlacementEquivalence(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes:      3,
		Partitions: 3,
		Router:     fleet.Options{Timeout: 5 * time.Second},
	})
	primary := f.Primary().URL()
	routed := f.RouterURL()
	est := "demo/partitioned"
	rng := rand.New(rand.NewSource(12))

	scatteredBefore := routerScattered(t, routed)
	for qi, q := range experiment.GenerateWorkload(experiment.SyntheticSchema(), 20, rng) {
		label := fmt.Sprintf("placed query %d", qi)
		if q.IsGroupBy() {
			var want, got server.GroupByResponse
			req := server.GroupByRequest{Estimator: est, Predicate: q.Pred, GroupBy: q.GroupBy}
			ws := postJSON(t, primary+"/groupby", req, &want)
			gs := postJSON(t, routed+"/groupby", req, &got)
			if ws != gs {
				t.Fatalf("%s: direct status %d, routed %d", label, ws, gs)
			}
			if ws == http.StatusOK {
				sameGroups(t, label, want.Groups, got.Groups)
			}
			continue
		}
		var want, got server.QueryResponse
		req := server.QueryRequest{Estimator: est, Predicate: q.Pred}
		ws := postJSON(t, primary+"/query", req, &want)
		gs := postJSON(t, routed+"/query", req, &got)
		if ws != gs {
			t.Fatalf("%s: direct status %d, routed %d", label, ws, gs)
		}
		if ws == http.StatusOK {
			sameCount(t, label, want.Count, got.Count)
		}
	}
	if after := routerScattered(t, routed); after <= scatteredBefore {
		t.Fatalf("placement never scattered (scattered %d -> %d) — the test exercised the plain proxy path", scatteredBefore, after)
	}
}

// routerScattered reads the router's scattered-query counter.
func routerScattered(t testing.TB, routerURL string) uint64 {
	t.Helper()
	return routerMetrics(t, routerURL).Scattered
}
