package fleet

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the closed → open → half-open → closed loop
// on a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second, func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", st)
	}
	b.Failure()
	if st, opens := b.State(); st != BreakerOpen || opens != 1 {
		t.Fatalf("state %v opens %d after threshold, want open/1", st, opens)
	}
	if b.Allow() {
		t.Fatal("open breaker passed traffic before cooldown")
	}

	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// A failed probe reopens immediately (no threshold accumulation).
	b.Failure()
	if st, opens := b.State(); st != BreakerOpen || opens != 2 {
		t.Fatalf("state %v opens %d after failed probe, want open/2", st, opens)
	}

	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused traffic")
	}
}

// TestBreakerSuccessResetsStreak proves interleaved successes keep the
// breaker closed: only consecutive failures open it.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second, func() time.Time { return now })
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Success()
	}
	if st, opens := b.State(); st != BreakerClosed || opens != 0 {
		t.Fatalf("state %v opens %d after alternating outcomes, want closed/0", st, opens)
	}
}
