// Package fleet shards the serving tier across a replica set of summaryd
// nodes. Summaries are ~1KB immutable versioned blobs, so the fleet
// replicates the cheap derived artifacts everywhere while raw relations
// stay on the ingest primary: a Syncer keeps each replica's snapshot
// store and registry converged with the primary pull-by-version (a
// snapshot version names the same bits on every node, so convergence is
// checkable by version sets and answers are bit-identical wherever they
// are served from), and a Router proxies the query surface with
// health-aware, load-aware node selection, retry-with-backoff, per-node
// circuit breaking, batch fan-out, and partitioned-estimator placement.
// See docs/FLEET.md for the topology, the sync protocol, and the failure
// semantics.
package fleet
