package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet/fleettest"
	"repro/internal/server"
)

// TestFleetSyncConvergence is the replication drill: rows are ingested on
// the primary (through the router) while query load hammers the router
// AND every replica directly; each ingest crosses the refresh threshold,
// publishes a new snapshot generation, and the whole fleet must converge
// to it — replicas then answer bit-identically to the primary. Run under
// -race this covers the concurrent sync + query interleaving end to end.
func TestFleetSyncConvergence(t *testing.T) {
	f := fleettest.New(t, fleettest.Options{
		Nodes:        3,
		RefreshRows:  250,
		SyncInterval: 20 * time.Millisecond,
	})
	routed := f.RouterURL()

	// Background load on every serving surface for the whole drill.
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	targets := []string{routed, f.Nodes[1].URL(), f.Nodes[2].URL()}
	for _, base := range targets {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(payload))
				if err != nil {
					select {
					case errs <- fmt.Errorf("load on %s: %v", base, err):
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Errorf("load on %s: status %d", base, resp.StatusCode):
					default:
					}
				}
			}
		}(base)
	}

	// Two ingest → refresh → converge cycles under that load.
	for gen := 2; gen <= 3; gen++ {
		var ing server.IngestResult
		if s := postJSON(t, routed+"/ingest/demo", server.IngestRequest{Rows: fleettest.Rows(300, gen)}, &ing); s != http.StatusOK {
			t.Fatalf("ingest for generation %d: status %d", gen, s)
		}
		if !ing.Refreshed {
			t.Fatalf("ingest for generation %d did not refresh: %+v", gen, ing)
		}
		if err := f.WaitConverged(30 * time.Second); err != nil {
			t.Fatalf("fleet did not converge to generation %d: %v", gen, err)
		}
	}

	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatal("queries failed while the fleet was syncing; sync must never take a node out of service")
	}

	// Every replica now serves generation 3 of the same bits: check the
	// advertised generation and a real workload bitwise against the primary.
	rng := rand.New(rand.NewSource(31))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 16, rng)
	for _, n := range f.Nodes[1:] {
		var est server.EstimatorsResponse
		resp, err := http.Get(n.URL() + "/estimators")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		found := false
		for _, e := range est.Estimators {
			if e.Name == "demo/maxent" {
				found = true
				if e.Generation != 3 {
					t.Fatalf("%s serves generation %d after two refreshes, want 3", n.Name, e.Generation)
				}
			}
		}
		if !found {
			t.Fatalf("%s does not serve demo/maxent", n.Name)
		}

		for qi, q := range workload {
			if q.IsGroupBy() {
				var want, got server.GroupByResponse
				req := server.GroupByRequest{Estimator: "demo/maxent", Predicate: q.Pred, GroupBy: q.GroupBy}
				ws := postJSON(t, f.Primary().URL()+"/groupby", req, &want)
				gs := postJSON(t, n.URL()+"/groupby", req, &got)
				if ws != gs {
					t.Fatalf("%s query %d: primary status %d, replica %d", n.Name, qi, ws, gs)
				}
				if ws == http.StatusOK {
					sameGroups(t, fmt.Sprintf("%s query %d", n.Name, qi), want.Groups, got.Groups)
				}
				continue
			}
			var want, got server.QueryResponse
			req := server.QueryRequest{Estimator: "demo/maxent", Predicate: q.Pred}
			ws := postJSON(t, f.Primary().URL()+"/query", req, &want)
			gs := postJSON(t, n.URL()+"/query", req, &got)
			if ws != gs {
				t.Fatalf("%s query %d: primary status %d, replica %d", n.Name, qi, ws, gs)
			}
			if ws == http.StatusOK {
				sameCount(t, fmt.Sprintf("%s query %d", n.Name, qi), want.Count, got.Count)
			}
		}

		// The syncer's own account of the drill: at least the two refresh
		// generations imported, at least two hot swaps, no lingering error.
		st := n.Syncer.Status()
		if st.Imported < 2 || st.Swaps < 2 {
			t.Fatalf("%s syncer status %+v after two refresh cycles", n.Name, st)
		}
		if st.LastError != "" {
			t.Fatalf("%s syncer holds error %q after convergence", n.Name, st.LastError)
		}
	}
}
