package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/server"
)

// handleBatch proxies POST /query/batch on both wires. Small batches are
// forwarded whole to one healthy node (with retry). At FanoutBatch items
// and with more than one healthy node, the batch is dealt round-robin
// across the healthy nodes, shipped as binary sub-frames, and the answers
// are gathered back into the original item order — positionally identical
// to a single-node answer stream, because every item is answered
// independently by the same estimator bits wherever it lands.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), server.BinaryBatchContentType)
	binaryResp := binaryReq
	if accept := r.Header.Get("Accept"); accept != "" {
		binaryResp = strings.Contains(accept, server.BinaryBatchContentType)
	}

	// Decode just enough to decide whether to fan out; malformed bodies
	// are forwarded whole so the node's own error surface answers (one
	// place decides what a malformed batch looks like).
	var estimator string
	var version int
	var items []query.BatchItem
	decodeOK := true
	if binaryReq {
		var err error
		estimator, version, items, err = query.DecodeBatchAt(bytes.NewReader(body))
		decodeOK = err == nil
	} else {
		var req server.BatchQueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			decodeOK = false
		} else {
			estimator = req.Estimator
			version = req.Version
			items = make([]query.BatchItem, len(req.Queries))
			for i, q := range req.Queries {
				items[i] = query.BatchItem{Pred: q.Predicate, GroupBy: q.GroupBy}
			}
		}
	}
	if v := r.URL.Query().Get("version"); v != "" {
		// A URL version overrides the body on the node side too; keep the
		// router's idea in sync for the fan-out frames.
		decodeOK = false // forward whole; the node resolves the override
	}

	ways := rt.healthyCount()
	if !decodeOK || rt.opts.FanoutBatch < 0 || len(items) < rt.opts.FanoutBatch || ways < 2 {
		rt.forward(w, r, body, -1)
		return
	}
	rt.fanOutBatch(w, r, estimator, version, items, ways, binaryResp)
}

// fanOutBatch scatters the items across ways sub-batches, ships each as a
// binary frame (the compact wire between router and nodes regardless of
// the client's wire), and reassembles the answers in original order.
func (rt *Router) fanOutBatch(w http.ResponseWriter, r *http.Request, estimator string, version int, items []query.BatchItem, ways int, binaryResp bool) {
	rt.fannedOut.Add(1)
	assign := query.AssignRoundRobin(len(items), ways)
	parts := make([][]query.BatchAnswer, len(assign))
	errs := make([]error, len(assign))
	header := http.Header{
		"Content-Type": []string{server.BinaryBatchContentType},
		"Accept":       []string{server.BinaryBatchContentType},
	}
	var wg sync.WaitGroup
	for wi, indexes := range assign {
		wg.Add(1)
		go func(wi int, indexes []int) {
			defer wg.Done()
			frame, err := query.AppendBatchAt(nil, estimator, version, query.Pick(items, indexes))
			if err != nil {
				errs[wi] = err
				return
			}
			resp, _, herr := rt.roundTrip(r.Context(), http.MethodPost, "/query/batch", header, frame, -1)
			if herr != nil {
				errs[wi] = fmt.Errorf("%s", herr.msg)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				errs[wi] = fmt.Errorf("sub-batch %d: node answered %d: %s", wi, resp.StatusCode, strings.TrimSpace(string(b)))
				return
			}
			_, answers, err := query.DecodeAnswers(resp.Body)
			if err != nil {
				errs[wi] = fmt.Errorf("sub-batch %d: %v", wi, err)
				return
			}
			parts[wi] = answers
		}(wi, indexes)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, http.StatusBadGateway, err.Error())
			return
		}
	}
	answers, err := query.GatherAnswers(len(items), assign, parts)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}

	if binaryResp {
		frame, err := query.AppendAnswers(nil, estimator, answers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", server.BinaryBatchContentType)
		_, _ = w.Write(frame)
		return
	}
	out := server.BatchQueryResponse{Estimator: estimator, Version: version, Answers: make([]server.BatchResult, len(answers))}
	for i, a := range answers {
		res := server.BatchResult{Count: a.Count, IsGroup: a.IsGroup, Cached: a.Cached, Error: a.Error}
		if a.IsGroup {
			res.Groups = make([]server.GroupRow, len(a.Groups))
			for j, g := range a.Groups {
				res.Groups[j] = server.GroupRow{Values: g.Values, Estimate: g.Estimate}
			}
		}
		out.Answers[i] = res
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
