package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/server"
)

// handleBatch proxies POST /query/batch on both wires. Small batches are
// forwarded whole to one healthy node (with retry). At FanoutBatch items
// and with more than one healthy node, the batch is dealt round-robin
// across the healthy nodes, shipped as binary sub-frames, and the answers
// are gathered back into the original item order — positionally identical
// to a single-node answer stream, because every item is answered
// independently by the same estimator bits wherever it lands.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), server.BinaryBatchContentType)
	binaryResp := binaryReq
	if accept := r.Header.Get("Accept"); accept != "" {
		binaryResp = strings.Contains(accept, server.BinaryBatchContentType)
	}

	// Decode just enough to decide whether to fan out; malformed bodies
	// are forwarded whole so the node's own error surface answers (one
	// place decides what a malformed batch looks like).
	var estimator string
	var version int
	var items []query.BatchItem
	decodeOK := true
	if binaryReq {
		var err error
		estimator, version, items, err = query.DecodeBatchAt(bytes.NewReader(body))
		decodeOK = err == nil
	} else {
		var req server.BatchQueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			decodeOK = false
		} else {
			estimator = req.Estimator
			version = req.Version
			items = make([]query.BatchItem, len(req.Queries))
			for i, q := range req.Queries {
				items[i] = query.BatchItem{Pred: q.Predicate, GroupBy: q.GroupBy}
			}
		}
	}
	if v := r.URL.Query().Get("version"); v != "" {
		// A URL version overrides the body on the node side too; keep the
		// router's idea in sync for the fan-out frames.
		decodeOK = false // forward whole; the node resolves the override
	}

	if decodeOK && rt.cache != nil && version >= 0 &&
		len(items) > 0 && len(items) <= query.MaxBatchItems {
		rt.serveBatch(w, r, estimator, version, items, binaryResp)
		return
	}
	ways := rt.healthyCount()
	if !decodeOK || rt.opts.FanoutBatch < 0 || len(items) < rt.opts.FanoutBatch || ways < 2 {
		rt.forward(w, r, body, -1)
		return
	}
	rt.fanOutBatch(w, r, estimator, version, items, ways, binaryResp)
}

// serveBatch answers a decoded batch from the router cache where it can
// and fetches only the missing items from the fleet: an all-hit batch
// never leaves the router, a partial hit ships a sub-batch holding just
// the misses (fanned out across healthy nodes past the FanoutBatch
// threshold), and the fetched answers are reassembled positionally and
// cached under the same generation fencing as single reads. Per-item
// errors (arity mismatch, estimator refusal) ride along uncached, exactly
// as a node reports them.
func (rt *Router) serveBatch(w http.ResponseWriter, r *http.Request, estimator string, version int, items []query.BatchItem, binaryResp bool) {
	answers := make([]query.BatchAnswer, len(items))
	keys := make([]string, len(items))
	var missIdx []int
	genCur, genOK := rt.gens.current(estimator)
	for i, it := range items {
		kind := "c"
		if len(it.GroupBy) > 0 {
			kind = "g"
		}
		keys[i] = routerQueryKey(estimator, version, kind, it.Pred, it.GroupBy)
		if v, ok := rt.cache.Get(keys[i]); ok {
			e := v.(cachedRead)
			if version > 0 || (genOK && e.gen == genCur) {
				answers[i] = e.toBatchAnswer()
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		w.Header().Set(RouterCacheHeader, "hit")
	} else {
		got, gens, herr := rt.fetchMisses(r.Context(), estimator, version, query.Pick(items, missIdx))
		if herr != nil {
			writeError(w, herr.status, herr.msg)
			return
		}
		for j, idx := range missIdx {
			a := got[j]
			answers[idx] = a
			if a.Error != "" {
				continue
			}
			switch {
			case version > 0:
				rt.cache.Put(keys[idx], batchEntry(a, 0, estimator, version))
			case gens[j] == 0:
				// The node did not vouch for a live generation.
			case rt.gens.observe(estimator, gens[j]):
				rt.cache.Put(keys[idx], batchEntry(a, gens[j], estimator, 0))
			default:
				rt.staleSkips.Add(1)
			}
		}
	}
	writeBatchAnswers(w, estimator, version, answers, binaryResp)
}

// batchEntry converts one fetched batch answer into a cache entry.
func batchEntry(a query.BatchAnswer, gen uint64, estimator string, version int) cachedRead {
	e := cachedRead{gen: gen, estimator: estimator, version: version, isGroup: a.IsGroup, count: a.Count}
	if a.IsGroup {
		e.groups = make([]server.GroupRow, len(a.Groups))
		for i, g := range a.Groups {
			e.groups[i] = server.GroupRow{Values: g.Values, Estimate: g.Estimate}
		}
	}
	return e
}

// fetchMisses fetches the given items from the fleet on the binary wire,
// splitting across healthy nodes when the miss set itself clears the
// fan-out threshold, and returns the answers in item order plus the
// generation each answering node vouched for (0 when it did not). A node
// error keeps its own status so a single-node refusal (unknown estimator,
// oversized batch) reaches the client as the node sent it.
func (rt *Router) fetchMisses(ctx context.Context, estimator string, version int, items []query.BatchItem) ([]query.BatchAnswer, []uint64, *routeError) {
	ways := rt.healthyCount()
	if rt.opts.FanoutBatch < 0 || len(items) < rt.opts.FanoutBatch || ways < 2 {
		ways = 1
	} else {
		rt.fannedOut.Add(1)
	}
	assign := query.AssignRoundRobin(len(items), ways)
	parts := make([][]query.BatchAnswer, len(assign))
	partGens := make([]uint64, len(assign))
	errs := make([]*routeError, len(assign))
	header := http.Header{
		"Content-Type": []string{server.BinaryBatchContentType},
		"Accept":       []string{server.BinaryBatchContentType},
	}
	var wg sync.WaitGroup
	for wi, indexes := range assign {
		wg.Add(1)
		go func(wi int, indexes []int) {
			defer wg.Done()
			frame, err := query.AppendBatchAt(nil, estimator, version, query.Pick(items, indexes))
			if err != nil {
				errs[wi] = &routeError{status: http.StatusBadGateway, msg: err.Error()}
				return
			}
			resp, _, herr := rt.roundTrip(ctx, http.MethodPost, "/query/batch", header, frame, -1)
			if herr != nil {
				errs[wi] = herr
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				msg := strings.TrimSpace(string(b))
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(b, &e) == nil && e.Error != "" {
					msg = e.Error
				}
				errs[wi] = &routeError{status: resp.StatusCode, msg: msg}
				return
			}
			if raw := resp.Header.Get(server.EstimatorGenerationHeader); raw != "" {
				if g, perr := strconv.ParseUint(raw, 10, 64); perr == nil {
					partGens[wi] = g
				}
			}
			_, answers, err := query.DecodeAnswers(resp.Body)
			if err != nil {
				errs[wi] = &routeError{status: http.StatusBadGateway, msg: fmt.Sprintf("sub-batch %d: %v", wi, err)}
				return
			}
			parts[wi] = answers
		}(wi, indexes)
	}
	wg.Wait()
	for _, herr := range errs {
		if herr != nil {
			return nil, nil, herr
		}
	}
	answers, err := query.GatherAnswers(len(items), assign, parts)
	if err != nil {
		return nil, nil, &routeError{status: http.StatusBadGateway, msg: err.Error()}
	}
	gens := make([]uint64, len(items))
	for wi, indexes := range assign {
		for _, idx := range indexes {
			gens[idx] = partGens[wi]
		}
	}
	return answers, gens, nil
}

// fanOutBatch scatters the items across ways sub-batches, ships each as a
// binary frame (the compact wire between router and nodes regardless of
// the client's wire), and reassembles the answers in original order.
func (rt *Router) fanOutBatch(w http.ResponseWriter, r *http.Request, estimator string, version int, items []query.BatchItem, ways int, binaryResp bool) {
	rt.fannedOut.Add(1)
	assign := query.AssignRoundRobin(len(items), ways)
	parts := make([][]query.BatchAnswer, len(assign))
	errs := make([]error, len(assign))
	header := http.Header{
		"Content-Type": []string{server.BinaryBatchContentType},
		"Accept":       []string{server.BinaryBatchContentType},
	}
	var wg sync.WaitGroup
	for wi, indexes := range assign {
		wg.Add(1)
		go func(wi int, indexes []int) {
			defer wg.Done()
			frame, err := query.AppendBatchAt(nil, estimator, version, query.Pick(items, indexes))
			if err != nil {
				errs[wi] = err
				return
			}
			resp, _, herr := rt.roundTrip(r.Context(), http.MethodPost, "/query/batch", header, frame, -1)
			if herr != nil {
				errs[wi] = fmt.Errorf("%s", herr.msg)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				errs[wi] = fmt.Errorf("sub-batch %d: node answered %d: %s", wi, resp.StatusCode, strings.TrimSpace(string(b)))
				return
			}
			_, answers, err := query.DecodeAnswers(resp.Body)
			if err != nil {
				errs[wi] = fmt.Errorf("sub-batch %d: %v", wi, err)
				return
			}
			parts[wi] = answers
		}(wi, indexes)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			writeError(w, http.StatusBadGateway, err.Error())
			return
		}
	}
	answers, err := query.GatherAnswers(len(items), assign, parts)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeBatchAnswers(w, estimator, version, answers, binaryResp)
}

// writeBatchAnswers emits a gathered answer stream on the client's wire,
// positionally identical to a single-node answer stream.
func writeBatchAnswers(w http.ResponseWriter, estimator string, version int, answers []query.BatchAnswer, binaryResp bool) {
	if binaryResp {
		frame, err := query.AppendAnswers(nil, estimator, answers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", server.BinaryBatchContentType)
		_, _ = w.Write(frame)
		return
	}
	out := server.BatchQueryResponse{Estimator: estimator, Version: version, Answers: make([]server.BatchResult, len(answers))}
	for i, a := range answers {
		res := server.BatchResult{Count: a.Count, IsGroup: a.IsGroup, Cached: a.Cached, Error: a.Error}
		if a.IsGroup {
			res.Groups = make([]server.GroupRow, len(a.Groups))
			for j, g := range a.Groups {
				res.Groups[j] = server.GroupRow{Values: g.Values, Estimate: g.Estimate}
			}
		}
		out.Answers[i] = res
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
