// Package fleettest is the in-process multi-node harness every fleet
// behavior is proven against: it boots N real summaryd instances (one
// ingest primary with a live relation, N-1 replicas pulling snapshots off
// it) plus a router over httptest, and injects the failures a real fleet
// sees — dead nodes, hung nodes, hard kills mid-request. Everything runs
// in one process, so the race detector watches the entire sync/query
// interleaving.
package fleettest

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/summary"
)

// Fault is an injected failure mode on one node.
type Fault int

// The injectable faults: None serves normally, Down answers 503 to
// everything (a saturated or crashing process), Hang parks every request
// until the client gives up (a wedged process behind a live TCP stack).
const (
	None Fault = iota
	Down
	Hang
)

// Options configure a test fleet. The zero value boots a 3-node fleet
// over a 3000-row synthetic dataset with a 50ms sync interval.
type Options struct {
	// Nodes is the total node count, primary included (default 3).
	Nodes int
	// Rows is the synthetic relation size (default 3000).
	Rows int
	// Seed draws the synthetic relation (default 1).
	Seed int64
	// RefreshRows is the primary's ingest auto-refresh threshold
	// (default 0: refreshes are triggered explicitly by tests).
	RefreshRows int
	// Partitions builds a K-way partitioned summary and exposes its
	// partitions for placement when > 0.
	Partitions int
	// SyncInterval is the replicas' poll period (default 50ms).
	SyncInterval time.Duration
	// MaxSweeps bounds the solver so fleet tests stay fast (default 60).
	MaxSweeps int
	// Router overrides the router options; Placements is filled in
	// automatically when Partitions > 0.
	Router fleet.Options
}

// Node is one summaryd instance of the test fleet.
type Node struct {
	Name     string
	Registry *server.Registry
	Server   *server.Server
	Store    *store.Store
	Syncer   *fleet.Syncer // nil on the primary
	HTTP     *httptest.Server

	mu     sync.Mutex
	fault  Fault
	cancel context.CancelFunc
	killed bool
}

// URL returns the node's base URL.
func (n *Node) URL() string { return n.HTTP.URL }

// SetFault injects (or with None, clears) a failure mode. It takes
// effect on the next request.
func (n *Node) SetFault(f Fault) {
	n.mu.Lock()
	n.fault = f
	n.mu.Unlock()
}

func (n *Node) currentFault() Fault {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fault
}

// Kill hard-stops the node: in-flight client connections are severed and
// the listener closed, so subsequent requests fail at the transport —
// the closest an in-process harness gets to SIGKILL. Idempotent.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		return
	}
	n.killed = true
	cancel := n.cancel
	n.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	n.HTTP.CloseClientConnections()
	n.HTTP.Close()
}

// faultMiddleware wraps the node handler with the injection point.
func (n *Node) faultMiddleware(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.currentFault() {
		case Down:
			http.Error(w, `{"error":"fleettest: injected fault"}`, http.StatusServiceUnavailable)
			return
		case Hang:
			// Park until the client abandons the request; the router's
			// per-attempt timeout is what unwedges it. The body must be
			// drained first: net/http only arms client-disconnect
			// detection (the background read that cancels r.Context())
			// once the request body is consumed, so parking on an unread
			// POST body would never wake up.
			_, _ = io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// Fleet is a booted test fleet: Nodes[0] is the ingest primary, the rest
// are pull replicas, and Router fronts them all.
type Fleet struct {
	Dataset    string
	Nodes      []*Node
	Live       *server.Live
	Router     *fleet.Router
	RouterHTTP *httptest.Server

	opts Options
}

// Primary returns the ingest node.
func (f *Fleet) Primary() *Node { return f.Nodes[0] }

// RouterURL returns the router's base URL.
func (f *Fleet) RouterURL() string { return f.RouterHTTP.URL }

// New boots a fleet and registers its teardown on t. The primary builds
// (and snapshots) the "demo" dataset over a synthetic relation; replicas
// start empty and are synced before New returns, so tests begin from a
// converged fleet.
func New(t testing.TB, opts Options) *Fleet {
	t.Helper()
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.Rows <= 0 {
		opts.Rows = 3000
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	if opts.MaxSweeps <= 0 {
		opts.MaxSweeps = 60
	}
	f := &Fleet{Dataset: "demo", opts: opts}

	// Primary: live dataset over a store, snapshots published at build.
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(opts.Rows, rand.New(rand.NewSource(opts.Seed))))
	live, _, err := server.BuildLiveDataset(reg, f.Dataset, mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary:    summary.Options{Solver: solver.Options{MaxSweeps: opts.MaxSweeps}},
			Partitions: opts.Partitions,
			Store:      st,
		},
		RefreshRows: opts.RefreshRows,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Partitions > 0 {
		names, err := server.ExposePartitions(reg, f.Dataset)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			ent, _ := reg.Get(name)
			if _, err := st.Save(name, ent.Estimator); err != nil {
				t.Fatal(err)
			}
		}
	}
	primary := &Node{Name: "node0", Registry: reg, Store: st}
	primary.Server = server.New(reg, server.Options{Store: st, NodeName: primary.Name})
	primary.Server.AttachLive(live)
	primary.HTTP = httptest.NewServer(primary.faultMiddleware(primary.Server.Handler()))
	f.Live = live
	f.Nodes = append(f.Nodes, primary)
	t.Cleanup(primary.Kill)

	// Replicas: empty store + registry, pull loop off the primary.
	for i := 1; i < opts.Nodes; i++ {
		n := &Node{Name: fmt.Sprintf("node%d", i)}
		n.Store, err = store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		n.Registry = server.NewRegistry()
		n.Syncer = fleet.NewSyncer(primary.HTTP.URL, n.Store, n.Registry, fleet.SyncerOptions{
			Interval: opts.SyncInterval,
		})
		n.Server = server.New(n.Registry, server.Options{
			Store:      n.Store,
			NodeName:   n.Name,
			SyncNotify: n.Syncer.Notify,
		})
		n.Syncer.AttachCache(n.Server.Cache())
		ctx, cancel := context.WithCancel(context.Background())
		n.cancel = cancel
		go n.Syncer.Run(ctx)
		n.HTTP = httptest.NewServer(n.faultMiddleware(n.Server.Handler()))
		f.Nodes = append(f.Nodes, n)
		t.Cleanup(n.Kill)
	}

	// Router over the full replica set.
	ropts := opts.Router
	if opts.Partitions > 0 && ropts.Placements == nil {
		ropts.Placements = map[string]int{f.Dataset: opts.Partitions}
	}
	cfgs := make([]fleet.NodeConfig, len(f.Nodes))
	for i, n := range f.Nodes {
		cfgs[i] = fleet.NodeConfig{Name: n.Name, URL: n.HTTP.URL}
	}
	f.Router, err = fleet.NewRouter(cfgs, ropts)
	if err != nil {
		t.Fatal(err)
	}
	f.RouterHTTP = httptest.NewServer(f.Router.Handler())
	t.Cleanup(f.RouterHTTP.Close)

	if err := f.WaitConverged(10 * time.Second); err != nil {
		t.Fatalf("fleettest: initial sync never converged: %v", err)
	}
	return f
}

// WaitConverged polls until every live replica's store holds every
// snapshot version the primary's store holds AND its registry serves the
// latest version of every dataset key — the fleet-wide convergence
// predicate (version identity makes it checkable by set comparison).
func (f *Fleet) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		lag, err := f.convergenceLag()
		if err == nil && lag == "" {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return err
			}
			return fmt.Errorf("fleet not converged after %v: %s", timeout, lag)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// convergenceLag describes the first divergence found ("" = converged).
func (f *Fleet) convergenceLag() (string, error) {
	manifests, err := f.Primary().Store.List()
	if err != nil {
		return "", err
	}
	for _, n := range f.Nodes[1:] {
		n.mu.Lock()
		killed := n.killed
		n.mu.Unlock()
		if killed {
			continue
		}
		for _, man := range manifests {
			lman, err := n.Store.Versions(man.Dataset)
			if err != nil {
				return fmt.Sprintf("%s: %q not yet synced", n.Name, man.Dataset), nil
			}
			local := make(map[int]bool, len(lman.Snapshots))
			latest := 0
			for _, sn := range lman.Snapshots {
				local[sn.Version] = true
				if sn.Version > latest {
					latest = sn.Version
				}
			}
			for _, sn := range man.Snapshots {
				if !local[sn.Version] {
					return fmt.Sprintf("%s: %q missing v%d", n.Name, man.Dataset, sn.Version), nil
				}
			}
			ent, ok := n.Registry.Get(man.Dataset)
			if !ok {
				return fmt.Sprintf("%s: %q not registered", n.Name, man.Dataset), nil
			}
			// Holding every version is necessary but not sufficient — the
			// swap into the registry trails the import by a moment. The
			// full-cardinality answer is an O(1) fingerprint of the served
			// model, so compare it bitwise against the primary's entry.
			if pent, ok := f.Primary().Registry.Get(man.Dataset); ok {
				want, werr := pent.Estimator.EstimateCount(nil)
				got, gerr := ent.Estimator.EstimateCount(nil)
				if werr != nil || gerr != nil || math.Float64bits(want) != math.Float64bits(got) {
					return fmt.Sprintf("%s: %q serves N=%v (v%d synced), primary serves N=%v",
						n.Name, man.Dataset, got, latest, want), nil
				}
			}
		}
	}
	return "", nil
}

// Rows returns n encoded rows compatible with the synthetic schema
// (domains 4, 6, 3, 8), all carrying the same value pattern v.
func Rows(n, v int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{v % 4, v % 6, v % 3, v % 8}
	}
	return rows
}
