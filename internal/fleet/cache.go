package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/server"
)

// RouterCacheHeader marks a routed read that was answered entirely from
// the router's cache (value "hit"): no node round trip happened. Misses
// and partially cached batches carry no header — the response reached at
// least one node.
const RouterCacheHeader = "X-Router-Cache"

// routerQueryKey is the canonical identity of one routed read. It mirrors
// the node-side queryKey with one deliberate difference: the router cannot
// know an estimator's generation before asking a node, so live reads key
// on an "l" marker and the generation travels in the cached value instead,
// checked against the generation table at serve time. Snapshot reads
// (version > 0) key on the version — those answers are immutable.
//
// A nil predicate is the match-all read; its slot holds "-" so it can
// never collide with a real canonical key (which always starts with '#').
func routerQueryKey(estimator string, version int, kind string, pred *query.Predicate, groupBy []int) string {
	var b strings.Builder
	b.Grow(len(estimator) + 24)
	b.WriteString(estimator)
	if version > 0 {
		b.WriteString("\x00s")
		b.WriteString(strconv.Itoa(version))
	} else {
		b.WriteString("\x00l")
	}
	b.WriteByte(0)
	b.WriteString(kind)
	for _, a := range groupBy {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(a))
	}
	b.WriteByte(0)
	if pred == nil {
		b.WriteByte('-')
	} else {
		b.WriteString(pred.CanonicalKey())
	}
	return b.String()
}

// cachedRead is one stored answer. Responses are synthesized from these
// fields on a hit — never replayed raw — so a hit is byte-equivalent to
// what the node would have sent (float64 counts survive Go's JSON
// round-trip exactly) while carrying honest Cached/latency metadata.
type cachedRead struct {
	gen       uint64 // answering node's generation (0 for snapshot reads)
	estimator string // canonical name echoed by the node
	version   int    // snapshot version echo (0 = live)
	isGroup   bool
	count     float64
	groups    []server.GroupRow
}

// toBatchAnswer converts a stored read into the batch wire shape.
func (e cachedRead) toBatchAnswer() query.BatchAnswer {
	a := query.BatchAnswer{Cached: true, IsGroup: e.isGroup}
	if e.isGroup {
		a.Groups = make([]query.BatchGroup, len(e.groups))
		for i, g := range e.groups {
			a.Groups[i] = query.BatchGroup{Values: g.Values, Estimate: g.Estimate}
		}
	} else {
		a.Count = e.count
	}
	return a
}

// genState is one estimator's generation bookkeeping: gen is the highest
// generation observed from any node response, floor the lowest generation
// still admissible after the last routed write.
type genState struct {
	gen   uint64
	floor uint64
}

// genTable tracks per-estimator generations so cached live answers can be
// proven current without a node round trip. The invariant that makes the
// cache never-stale:
//
//   - a response at generation g is cached only when g >= floor (the node
//     has applied every write the router proxied) and g is the highest
//     generation seen (a lagging replica's answer is relayed, not cached);
//   - a cached entry is served only while its generation still equals the
//     table's — checked at serve time, so an entry stored by a request
//     racing a write is fenced the moment the write lands;
//   - a routed write fences its dataset: floor = gen+1, which no already-
//     issued response can satisfy, because a published write always swaps
//     the estimator to a strictly higher generation than any answer the
//     router has observed. The fence also covers estimators the router
//     has NEVER observed: their dataset is remembered as fenced, and the
//     first generation seen afterwards is refused (it may be a lagging
//     replica's pre-write answer) — only a strictly newer one is cached.
//
// Writes that bypass the router are invisible to it (same contract as
// /sync/notify: the router is the write path). Snapshot reads never
// consult the table — retained versions are immutable.
type genTable struct {
	mu sync.Mutex
	m  map[string]*genState
	// fenced remembers datasets a routed write has fenced, so estimators
	// first observed AFTER the write start behind a floor too; all is the
	// same flag for a fence of everything (unparseable write path).
	fenced map[string]bool
	all    bool
}

func newGenTable() *genTable {
	return &genTable{m: make(map[string]*genState), fenced: make(map[string]bool)}
}

// fencedLocked reports whether any past fence covers the estimator name.
// Callers hold t.mu.
func (t *genTable) fencedLocked(name string) bool {
	if t.all {
		return true
	}
	for d := range t.fenced {
		if name == d || strings.HasPrefix(name, d+"/") {
			return true
		}
	}
	return false
}

// observe records a node response's generation and reports whether an
// answer at that generation may be cached: it must not predate the last
// routed write, and it must be the newest generation seen.
func (t *genTable) observe(name string, gen uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[name]
	if st == nil {
		st = &genState{}
		if t.fencedLocked(name) {
			// A routed write predates every observation of this estimator:
			// this answer cannot be proven post-write, so refuse it and
			// admit only a strictly newer generation.
			st.floor = gen + 1
		}
		t.m[name] = st
	}
	if gen < st.floor {
		return false // node behind: it has not applied a routed write yet
	}
	if gen > st.gen {
		st.gen = gen
	}
	return gen == st.gen
}

// current returns the generation a cached live entry must carry to be
// served; ok is false when nothing may be served (estimator never
// observed, or fenced by a write no response has caught up to).
func (t *genTable) current(name string) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[name]
	if st == nil || st.gen < st.floor {
		return 0, false
	}
	return st.gen, true
}

// fence marks every estimator of dataset as written-over: no cached live
// answer may be served and no response at an already-seen generation may
// be cached until a strictly newer generation is observed. An empty
// dataset fences everything. The dataset is also remembered so estimators
// first observed after the write start fenced too (see observe).
func (t *genTable) fence(dataset string) {
	prefix := dataset + "/"
	t.mu.Lock()
	defer t.mu.Unlock()
	if dataset == "" {
		t.all = true
	} else {
		t.fenced[dataset] = true
	}
	for name, st := range t.m {
		if dataset == "" || name == dataset || strings.HasPrefix(name, prefix) {
			st.floor = st.gen + 1
		}
	}
}

// flight is one in-flight cache miss; followers block on done and reuse
// the leader's entry when ok.
type flight struct {
	done  chan struct{}
	entry cachedRead
	ok    bool
}

// flightGroup collapses concurrent identical cache misses into a single
// upstream request (the hand-rolled core of x/sync/singleflight: the
// leader forwards, stores, then releases followers). The leader puts the
// entry in the cache before leaving the group, so by the time any follower
// wakes the answer is cached — N concurrent identical cold reads cost
// exactly one node round trip.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flight)} }

// join returns the flight for key and whether the caller is its leader
// (first joiner). The leader must call leave exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// leave publishes the leader's result and releases every follower.
func (g *flightGroup) leave(key string, fl *flight, entry cachedRead, ok bool) {
	fl.entry, fl.ok = entry, ok
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}

// --- the router's cached read path ------------------------------------

// readRequest is one parsed single-read (/query or /groupby POST) the
// router may answer from its cache.
type readRequest struct {
	estimator string
	version   int // resolved snapshot version (0 = live)
	isGroup   bool
	key       string
}

// parseRead decodes a /query or /groupby request into its cache identity.
// ok is false whenever the read is not cacheable — cache disabled, not a
// POST, malformed body or URL version (the node's error surface answers),
// or no estimator named — and the caller falls back to a plain forward.
func (rt *Router) parseRead(r *http.Request, body []byte, isGroup bool) (readRequest, bool) {
	if rt.cache == nil || r.Method != http.MethodPost {
		return readRequest{}, false
	}
	version := -1 // unset; the body's version applies
	if raw := r.URL.Query().Get("version"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return readRequest{}, false
		}
		version = v
	}
	req := readRequest{isGroup: isGroup}
	var pred *query.Predicate
	var groupBy []int
	if isGroup {
		var gr server.GroupByRequest
		if err := json.Unmarshal(body, &gr); err != nil {
			return readRequest{}, false
		}
		req.estimator, pred, groupBy = gr.Estimator, gr.Predicate, gr.GroupBy
		if version < 0 {
			version = gr.Version
		}
	} else {
		var qr server.QueryRequest
		if err := json.Unmarshal(body, &qr); err != nil {
			return readRequest{}, false
		}
		req.estimator, pred = qr.Estimator, qr.Predicate
		if version < 0 {
			version = qr.Version
		}
	}
	if version < 0 {
		version = 0 // the node serves non-positive versions as live
	}
	if req.estimator == "" {
		return readRequest{}, false
	}
	req.version = version
	kind := "c"
	if isGroup {
		kind = "g"
	}
	req.key = routerQueryKey(req.estimator, version, kind, pred, groupBy)
	return req, true
}

// serveRead answers a parsed read from the cache when it can, otherwise
// forwards it — collapsing concurrent identical misses into one node
// round trip. The leader of a miss forwards, relays, and caches; its
// followers wait and answer from the leader's entry.
func (rt *Router) serveRead(w http.ResponseWriter, r *http.Request, body []byte, req readRequest) {
	start := rt.opts.Now()
	if e, ok := rt.cacheLookup(req); ok {
		writeCachedRead(w, e, rt.opts.Now().Sub(start))
		return
	}
	fl, leader := rt.flights.join(req.key)
	if !leader {
		select {
		case <-fl.done:
		case <-r.Context().Done():
			// The CLIENT went away (disconnect or its own timeout), not the
			// upstream: write nothing rather than misreport a gateway error.
			return
		}
		// Re-verify at serve time, exactly like a cache hit: a routed write
		// may have fenced the estimator between the leader storing the
		// entry and this follower waking.
		if fl.ok && rt.entryCurrent(req, fl.entry) {
			rt.collapsed.Add(1)
			writeCachedRead(w, fl.entry, rt.opts.Now().Sub(start))
			return
		}
		// The leader's response was not cacheable (error, node behind) or
		// was fenced while we waited; this read speaks to a node itself.
		rt.forward(w, r, body, -1)
		return
	}
	var entry cachedRead
	var stored bool
	// leave via defer: followers must be released even if the relay
	// panics mid-flight.
	defer func() { rt.flights.leave(req.key, fl, entry, stored) }()
	entry, stored = rt.forwardCapture(w, r, body, req)
}

// entryCurrent reports whether a stored answer may be served for req
// right now: snapshot reads are immutable, live reads must carry the
// exact generation the table vouches for at this instant.
func (rt *Router) entryCurrent(req readRequest, e cachedRead) bool {
	if req.version > 0 {
		return true
	}
	gen, ok := rt.gens.current(req.estimator)
	return ok && e.gen == gen
}

// cacheLookup returns the cached answer for req when it is provably
// current under entryCurrent.
func (rt *Router) cacheLookup(req readRequest) (cachedRead, bool) {
	v, ok := rt.cache.Get(req.key)
	if !ok {
		return cachedRead{}, false
	}
	e := v.(cachedRead)
	if !rt.entryCurrent(req, e) {
		return cachedRead{}, false
	}
	return e, true
}

// forwardCapture proxies the read like forward, relays the node response
// to the client unchanged, and — on a 200 — parses and caches it under
// the generation rules. It returns the stored entry for singleflight
// followers. A response body larger than MaxBodyBytes is streamed to the
// client whole and never cached: the cap bounds what the router buffers,
// not what the client may receive.
func (rt *Router) forwardCapture(w http.ResponseWriter, r *http.Request, body []byte, req readRequest) (cachedRead, bool) {
	resp, n, herr := rt.roundTrip(r.Context(), r.Method, requestPath(r), r.Header, body, -1)
	if herr != nil {
		writeError(w, herr.status, herr.msg)
		return cachedRead{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		relayResponse(w, resp, n)
		return cachedRead{}, false
	}
	// Read one byte past the cap so an exactly-full buffer is
	// distinguishable from a truncated one.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return cachedRead{}, false
	}
	if int64(len(respBody)) > rt.opts.MaxBodyBytes {
		relayHeaders(w, resp, n)
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(respBody)
		_, _ = io.Copy(w, resp.Body)
		return cachedRead{}, false
	}
	relayBytes(w, resp, n, respBody)
	return rt.captureRead(req, resp.Header, respBody)
}

// captureRead parses a node's 200 response and stores it when admissible:
// snapshot answers always (immutable), live answers only when the node's
// generation passes the table (not behind a routed write, newest seen).
func (rt *Router) captureRead(req readRequest, header http.Header, body []byte) (cachedRead, bool) {
	gen := uint64(0)
	if req.version == 0 {
		raw := header.Get(server.EstimatorGenerationHeader)
		if raw == "" {
			return cachedRead{}, false // node did not vouch for a live generation
		}
		g, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return cachedRead{}, false
		}
		if !rt.gens.observe(req.estimator, g) {
			rt.staleSkips.Add(1)
			return cachedRead{}, false
		}
		gen = g
	}
	e := cachedRead{gen: gen}
	if req.isGroup {
		var gr server.GroupByResponse
		if err := json.Unmarshal(body, &gr); err != nil {
			return cachedRead{}, false
		}
		e.estimator, e.version, e.isGroup, e.groups = gr.Estimator, gr.Version, true, gr.Groups
	} else {
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			return cachedRead{}, false
		}
		e.estimator, e.version, e.count = qr.Estimator, qr.Version, qr.Count
	}
	rt.cache.Put(req.key, e)
	return e, true
}

// writeCachedRead synthesizes a node-shaped response from a cached entry.
// The answer fields round-trip bit-identically (Go prints a float64 it
// parsed back to the same shortest form); Cached and the latency are
// honest — they describe this serve, not the original one.
func writeCachedRead(w http.ResponseWriter, e cachedRead, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(RouterCacheHeader, "hit")
	if e.gen > 0 {
		w.Header().Set(server.EstimatorGenerationHeader, strconv.FormatUint(e.gen, 10))
	}
	if e.isGroup {
		_ = json.NewEncoder(w).Encode(server.GroupByResponse{
			Estimator: e.estimator, Version: e.version, Groups: e.groups,
			Cached: true, LatencyNS: elapsed.Nanoseconds(),
		})
		return
	}
	_ = json.NewEncoder(w).Encode(server.QueryResponse{
		Estimator: e.estimator, Version: e.version, Count: e.count,
		Cached: true, LatencyNS: elapsed.Nanoseconds(),
	})
}

// invalidateDataset fences and drops every cached answer a routed write
// to dataset may have changed. The fence is what guarantees freshness —
// an entry stored by a read racing this write is refused at serve time —
// while the prefix drops just reclaim LRU capacity, mirroring the node-
// side hot-swap invalidation. Snapshot entries of the dataset are dropped
// too; they are immutable and simply re-warm on next touch.
func (rt *Router) invalidateDataset(dataset string) {
	if rt.cache == nil {
		return
	}
	rt.gens.fence(dataset)
	if dataset == "" {
		rt.cache.InvalidatePrefix("")
		return
	}
	rt.cache.InvalidatePrefix(dataset + "\x00")
	rt.cache.InvalidatePrefix(dataset + "/")
}
