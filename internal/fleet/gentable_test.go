package fleet

import "testing"

// TestGenTableFencesUnseenEstimators pins the fence-before-first-read
// corner of the freshness invariant: a routed write to a dataset whose
// estimators the router has never observed must still fence them, so a
// lagging replica's pre-write answer arriving afterwards is refused and
// only a strictly newer generation re-opens caching.
func TestGenTableFencesUnseenEstimators(t *testing.T) {
	tb := newGenTable()

	// The write lands before any read: nothing is in the table yet.
	tb.fence("demo")

	// A lagging replica answers first — possibly pre-write; refuse it.
	if tb.observe("demo/maxent", 3) {
		t.Fatal("first post-fence observation of an unseen estimator was admitted to the cache")
	}
	if _, ok := tb.current("demo/maxent"); ok {
		t.Fatal("current vouched for a fenced, never-cached estimator")
	}
	// The same generation keeps being refused — it is never provably fresh.
	if tb.observe("demo/maxent", 3) {
		t.Fatal("repeat observation at the fenced generation was admitted")
	}
	// A strictly newer generation proves the write was applied.
	if !tb.observe("demo/maxent", 4) {
		t.Fatal("a strictly newer generation was refused after the fence")
	}
	if gen, ok := tb.current("demo/maxent"); !ok || gen != 4 {
		t.Fatalf("current = (%d, %t), want (4, true)", gen, ok)
	}

	// The fence covers the dataset name itself, not just prefixed entries.
	if tb.observe("demo", 7) {
		t.Fatal("the dataset's own entry escaped the fence")
	}
	// Unrelated datasets are untouched by a scoped fence.
	if !tb.observe("other/maxent", 1) {
		t.Fatal("a scoped fence leaked onto an unrelated dataset")
	}

	// A fence of everything (unparseable write path) covers names first
	// observed afterwards too.
	tb.fence("")
	if tb.observe("third/maxent", 5) {
		t.Fatal("a fence-everything write did not fence a later-observed estimator")
	}
	if !tb.observe("third/maxent", 6) {
		t.Fatal("a strictly newer generation was refused after the global fence")
	}
}
