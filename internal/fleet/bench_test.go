package fleet_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/fleet/fleettest"
	"repro/internal/server"
)

// BenchmarkRouterOverhead measures what the fleet coordinator adds on top
// of a summaryd node: the same cache-hot count query is timed against the
// node directly and through the router (proxy, node selection, breaker
// accounting). The routed-minus-direct gap is the router overhead BENCH.md
// reports; the acceptance bar is < 1ms at the median.
func BenchmarkRouterOverhead(b *testing.B) {
	f := fleettest.New(b, fleettest.Options{Nodes: 2, Rows: 1200, MaxSweeps: 30})
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	post := func(base string) {
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("query status %d", resp.StatusCode)
		}
	}
	post(f.Primary().URL()) // warm the query cache: both paths hit it
	post(f.RouterURL())

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(f.Primary().URL())
		}
	})
	b.Run("routed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(f.RouterURL())
		}
	})
}
