package fleet_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/fleet"
	"repro/internal/fleet/fleettest"
	"repro/internal/server"
)

// BenchmarkRouterOverhead measures what the fleet coordinator adds on top
// of a summaryd node: the same cache-hot count query is timed against the
// node directly and through the router (proxy, node selection, breaker
// accounting). The routed-minus-direct gap is the router overhead BENCH.md
// reports; the acceptance bar is < 1ms at the median. The router cache is
// pinned off — this benchmark measures the round trip, not the cache
// (BenchmarkRouterCachedHit measures that).
func BenchmarkRouterOverhead(b *testing.B) {
	f := fleettest.New(b, fleettest.Options{
		Nodes: 2, Rows: 1200, MaxSweeps: 30,
		Router: fleet.Options{CacheSize: -1},
	})
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	post := func(base string) {
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("query status %d", resp.StatusCode)
		}
	}
	post(f.Primary().URL()) // warm the query cache: both paths hit it
	post(f.RouterURL())

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(f.Primary().URL())
		}
	})
	b.Run("routed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(f.RouterURL())
		}
	})
}

// sinkWriter is the leanest possible ResponseWriter: it keeps the status
// and byte count and discards the body. httptest.ResponseRecorder clones
// the header map and buffers the body on every write — more time than the
// cache path under measurement.
type sinkWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *sinkWriter) Header() http.Header         { return w.h }
func (w *sinkWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *sinkWriter) WriteHeader(c int)           { w.code = c }

// BenchmarkRouterCachedHit measures a warm router-cache hit: the same
// count query served entirely on the router, no node round trip. It
// drives the handler directly (no sockets, hand-built request, sink
// writer) because the point is the cache path itself — body decode, key
// build, shard lookup, generation check, response synthesis; a real HTTP
// loopback would bury the single-digit-microsecond signal under ~20µs of
// kernel networking, and even httptest's request parser and recorder
// cost as much as the path being measured. The acceptance bar is
// < 5µs/op.
func BenchmarkRouterCachedHit(b *testing.B) {
	f := fleettest.New(b, fleettest.Options{Nodes: 2, Rows: 1200, MaxSweeps: 30})
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	handler := f.Router.Handler()
	queryURL := &url.URL{Path: "/query"}
	newReq := func() *http.Request {
		return &http.Request{
			Method:        http.MethodPost,
			URL:           queryURL,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"application/json"}},
			Body:          io.NopCloser(bytes.NewReader(payload)),
			ContentLength: int64(len(payload)),
			Host:          "router.bench",
			RemoteAddr:    "192.0.2.1:1234",
		}
	}
	// Warm the entry, then prove the second ask is a genuine cache hit.
	warm := httptest.NewRecorder()
	handler.ServeHTTP(warm, newReq())
	if warm.Code != http.StatusOK {
		b.Fatalf("warm-up query status %d: %s", warm.Code, warm.Body)
	}
	warm = httptest.NewRecorder()
	handler.ServeHTTP(warm, newReq())
	if warm.Header().Get(fleet.RouterCacheHeader) != "hit" {
		b.Fatalf("second identical query was not a cache hit (headers %v)", warm.Header())
	}
	w := &sinkWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code, w.n = 0, 0
		handler.ServeHTTP(w, newReq())
		// Success never calls WriteHeader (implicit 200); errors do.
		if w.code != 0 || w.n == 0 {
			b.Fatalf("cached hit wrote status %d, %d bytes", w.code, w.n)
		}
	}
}
