package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/fleet/fleettest"
	"repro/internal/query"
	"repro/internal/server"
)

// routerMetrics reads the router's /metrics surface.
func routerMetrics(t testing.TB, routerURL string) fleet.FleetMetricsResponse {
	t.Helper()
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m fleet.FleetMetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// nodeStatus finds one node's routing state in the router metrics.
func nodeStatus(t testing.TB, routerURL, name string) fleet.NodeStatus {
	t.Helper()
	for _, n := range routerMetrics(t, routerURL).Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not in router metrics", name)
	return fleet.NodeStatus{}
}

// TestFleetKillReplicaMidLoad is the headline fault drill: four workers
// stream binary batches through the router, a replica is hard-killed
// while they are mid-flight, and every single batch must still come back
// bit-identical to single-node serving — zero failed queries.
func TestFleetKillReplicaMidLoad(t *testing.T) {
	// CacheSize -1: the drill needs every round to reach a node — a warm
	// router cache would absorb the identical frames and the kill would
	// land on no in-flight traffic.
	f := fleettest.New(t, fleettest.Options{
		Nodes: 3,
		Router: fleet.Options{
			FanoutBatch:  8,
			RetryBackoff: time.Millisecond,
			Timeout:      5 * time.Second,
			CacheSize:    -1,
		},
	})
	routed := f.RouterURL()
	rng := rand.New(rand.NewSource(21))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 16, rng)
	items := make([]query.BatchItem, len(workload))
	for i, q := range workload {
		items[i] = query.BatchItem{Pred: q.Pred, GroupBy: q.GroupBy}
	}
	frame, err := query.AppendBatchAt(nil, "demo/maxent", 0, items)
	if err != nil {
		t.Fatal(err)
	}

	// The oracle: the primary's own answers, fetched before any fault.
	want := postBinaryBatch(t, f.Primary().URL(), frame)

	const workers, rounds, warmRounds = 4, 25, 5
	var wg, warm sync.WaitGroup
	warm.Add(workers)
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if i == warmRounds {
					warm.Done()
				}
				resp, err := http.Post(routed+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(frame))
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d round %d: status %d: %s", w, i, resp.StatusCode, raw)
					continue
				}
				_, got, err := query.DecodeAnswers(bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, i, err)
					continue
				}
				if err := sameAnswers(want, got); err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, i, err)
				}
			}
		}(w)
	}

	// Hard-kill a replica only once every worker is warmed up and still
	// has most of its rounds ahead — the kill lands mid-load, severing
	// in-flight connections.
	warm.Wait()
	f.Nodes[2].Kill()
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("%d queries failed or diverged across the replica kill; a fleet must serve through a single-node loss", failed)
	}

	// The kill must have been visible to the router (failed attempts were
	// retried elsewhere), and sustained traffic must open its breaker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := nodeStatus(t, routed, f.Nodes[2].Name)
		if st.Breaker == "open" && st.Failures > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed node never tripped its breaker: %+v", st)
		}
		payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
		resp, err := http.Post(routed+"/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query failed with one node down: status %d", resp.StatusCode)
		}
	}
	if m := routerMetrics(t, routed); m.Retries == 0 {
		t.Fatal("router reports zero retries across a mid-load kill")
	}
}

// TestFleetBreakerOpensAndRecovers drives a replica through the full
// failure lifecycle: fault → breaker opens (traffic keeps flowing via
// peers) → fault cleared → cooldown probe → breaker closes and the node
// serves again.
func TestFleetBreakerOpensAndRecovers(t *testing.T) {
	// CacheSize -1: the probe query is identical every ask — cached hits
	// would never touch the sick node and the breaker could not trip.
	f := fleettest.New(t, fleettest.Options{
		Nodes: 3,
		Router: fleet.Options{
			BreakerThreshold: 2,
			BreakerCooldown:  100 * time.Millisecond,
			RetryBackoff:     time.Millisecond,
			Timeout:          5 * time.Second,
			CacheSize:        -1,
		},
	})
	routed := f.RouterURL()
	sick := f.Nodes[1]
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	ask := func() {
		t.Helper()
		resp, err := http.Post(routed+"/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query failed during fault drill: status %d", resp.StatusCode)
		}
	}

	sick.SetFault(fleettest.Down)
	deadline := time.Now().Add(5 * time.Second)
	for nodeStatus(t, routed, sick.Name).Breaker != "open" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened on a 503-ing node: %+v", nodeStatus(t, routed, sick.Name))
		}
		ask()
	}
	if st := nodeStatus(t, routed, sick.Name); st.BreakerOpens < 1 {
		t.Fatalf("breaker open but opens counter is %d", st.BreakerOpens)
	}

	// /healthz degrades but stays 200: the router itself is fine.
	hresp, err := http.Get(routed + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("healthz with an open breaker: status %d body %q, want 200/degraded", hresp.StatusCode, health.Status)
	}

	// Recovery: clear the fault, wait out the cooldown, and keep asking —
	// the half-open probe lands on the healed node and closes the breaker.
	sick.SetFault(fleettest.None)
	deadline = time.Now().Add(5 * time.Second)
	for nodeStatus(t, routed, sick.Name).Breaker != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after the fault cleared: %+v", nodeStatus(t, routed, sick.Name))
		}
		time.Sleep(20 * time.Millisecond)
		ask()
	}
}

// TestFleetHangingReplica proves a wedged-but-listening node cannot stall
// the fleet: the router's per-attempt timeout abandons it and a peer
// answers.
func TestFleetHangingReplica(t *testing.T) {
	// CacheSize -1: all eight probes are the same query; the drill wants
	// each one to risk landing on the hanging node.
	f := fleettest.New(t, fleettest.Options{
		Nodes: 3,
		Router: fleet.Options{
			Timeout:      150 * time.Millisecond,
			RetryBackoff: time.Millisecond,
			CacheSize:    -1,
		},
	})
	f.Nodes[1].SetFault(fleettest.Hang)
	payload, _ := json.Marshal(server.QueryRequest{Estimator: "demo/maxent"})
	var direct server.QueryResponse
	if s := postJSON(t, f.Primary().URL()+"/query", server.QueryRequest{Estimator: "demo/maxent"}, &direct); s != http.StatusOK {
		t.Fatalf("direct query status %d", s)
	}
	for i := 0; i < 8; i++ {
		resp, err := http.Post(f.RouterURL()+"/query", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var got server.QueryResponse
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed behind a hanging replica: %d %s", i, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Count) != math.Float64bits(direct.Count) {
			t.Fatalf("query %d: routed %v, direct %v", i, got.Count, direct.Count)
		}
	}
}

// postBinaryBatch posts a binary batch frame and decodes the answers.
func postBinaryBatch(t testing.TB, base string, frame []byte) []query.BatchAnswer {
	t.Helper()
	resp, err := http.Post(base+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("binary batch at %s: %d %s", base, resp.StatusCode, b)
	}
	_, answers, err := query.DecodeAnswers(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return answers
}

// sameAnswers compares two batch answer streams bitwise (Cached aside).
func sameAnswers(want, got []query.BatchAnswer) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d answers, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Error != g.Error || w.IsGroup != g.IsGroup || len(w.Groups) != len(g.Groups) {
			return fmt.Errorf("answer %d: got %+v, want %+v", i, g, w)
		}
		if !w.IsGroup && math.Float64bits(w.Count) != math.Float64bits(g.Count) {
			return fmt.Errorf("answer %d: count %v, want %v", i, g.Count, w.Count)
		}
		for j := range w.Groups {
			if fmt.Sprint(w.Groups[j].Values) != fmt.Sprint(g.Groups[j].Values) ||
				math.Float64bits(w.Groups[j].Estimate) != math.Float64bits(g.Groups[j].Estimate) {
				return fmt.Errorf("answer %d group %d: got %+v, want %+v", i, j, g.Groups[j], w.Groups[j])
			}
		}
	}
	return nil
}
