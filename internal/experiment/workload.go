package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/query"
	"repro/internal/schema"
)

// WorkloadSeed seeds the fallback random source of GenerateWorkload when
// it is given a nil *rand.Rand.
const WorkloadSeed int64 = 7

// GenerateWorkload builds a mixed workload of n queries over the schema,
// mirroring the paper's selection templates: 1–2 attribute point and
// range predicates, plus single-attribute group-by queries (one in four).
// A nil rng uses a deterministic source seeded with WorkloadSeed, so the
// default workload is reproducible.
func GenerateWorkload(sch *schema.Schema, n int, rng *rand.Rand) []Query {
	if rng == nil {
		rng = rand.New(rand.NewSource(WorkloadSeed))
	}
	m := sch.NumAttrs()
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		p := query.NewPredicate(m)
		attrs := rng.Perm(m)[:1+rng.Intn(min(2, m))]
		for _, a := range attrs {
			size := sch.Attr(a).Size()
			if rng.Intn(2) == 0 {
				p.WhereEq(a, rng.Intn(size))
			} else {
				lo := rng.Intn(size)
				hi := lo + rng.Intn(size-lo)
				p.WhereRange(a, lo, hi)
			}
		}
		q := Query{Name: fmt.Sprintf("q%03d", i), Pred: p}
		if i%4 == 3 {
			// Group by an attribute the predicate does not constrain when
			// one exists, so groups are non-degenerate.
			constrained := make(map[int]bool, len(attrs))
			for _, a := range attrs {
				constrained[a] = true
			}
			var free []int
			for a := 0; a < m; a++ {
				if !constrained[a] {
					free = append(free, a)
				}
			}
			if len(free) > 0 {
				q.GroupBy = []int{free[rng.Intn(len(free))]}
			} else {
				q.GroupBy = []int{rng.Intn(m)}
			}
		}
		out = append(out, q)
	}
	return out
}
