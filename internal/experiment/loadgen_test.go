package experiment_test

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/server"
)

// TestDriveHTTP spins up a real server over the exact engine and replays a
// workload through the load generator twice: the second pass must be
// served from the result cache, and the aggregates must be internally
// consistent.
func TestDriveHTTP(t *testing.T) {
	rel := experiment.SyntheticRelation(2000, rand.New(rand.NewSource(3)))
	reg := server.NewRegistry()
	if err := reg.Register("demo/exact", exact.New(rel), rel.Schema()); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	workload := experiment.GenerateWorkload(rel.Schema(), 30, rand.New(rand.NewSource(4)))
	res, err := experiment.DriveHTTP(ts.URL, "demo/exact", workload, experiment.LoadOptions{
		Concurrency: 4,
		Repeat:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d request errors, first: %s", res.Errors, res.FirstError)
	}
	if res.Requests != 60 {
		t.Fatalf("requests = %d, want 60", res.Requests)
	}
	// The second replay (and any duplicate queries in the first) hits the
	// cache: at least the 30 repeats must come back cached.
	if res.CachedResponses < 30 {
		t.Fatalf("cached_responses = %d, want >= 30", res.CachedResponses)
	}
	if res.ThroughputQPS <= 0 || res.LatencyP50NS <= 0 || res.LatencyP95NS < res.LatencyP50NS {
		t.Fatalf("inconsistent aggregates: %+v", res)
	}

	// Unknown estimator: every request fails, reported not swallowed.
	res, err = experiment.DriveHTTP(ts.URL, "demo/missing", workload[:3], experiment.LoadOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3 || res.FirstError == "" {
		t.Fatalf("errors = %d (%q), want 3 with a representative message", res.Errors, res.FirstError)
	}

	// Transport failures (server gone) must not pollute the latency
	// quantiles with zero samples.
	ts.Close()
	res, err = experiment.DriveHTTP(ts.URL, "demo/exact", workload[:3], experiment.LoadOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 3 {
		t.Fatalf("errors = %d, want 3 after server shutdown", res.Errors)
	}
	if res.LatencyP50NS != 0 || res.LatencyMeanNS != 0 {
		t.Fatalf("all-failed run reported latencies: %+v", res)
	}
}

// TestDriveHTTPRouters proves the round-robin target rotation: two
// front-ends over the same estimator each receive an even share of the
// requests, and baseURL receives none.
func TestDriveHTTPRouters(t *testing.T) {
	rel := experiment.SyntheticRelation(500, rand.New(rand.NewSource(5)))
	reg := server.NewRegistry()
	if err := reg.Register("demo/exact", exact.New(rel), rel.Schema()); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{})
	counted := func(hits *atomic.Int64) http.Handler {
		h := srv.Handler()
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			h.ServeHTTP(w, r)
		})
	}
	var hitsA, hitsB, hitsBase atomic.Int64
	tsA := httptest.NewServer(counted(&hitsA))
	defer tsA.Close()
	tsB := httptest.NewServer(counted(&hitsB))
	defer tsB.Close()
	tsBase := httptest.NewServer(counted(&hitsBase))
	defer tsBase.Close()

	workload := experiment.GenerateWorkload(rel.Schema(), 20, rand.New(rand.NewSource(6)))
	res, err := experiment.DriveHTTP(tsBase.URL, "demo/exact", workload, experiment.LoadOptions{
		Concurrency: 4,
		Routers:     []string{tsA.URL, tsB.URL + "/"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d request errors, first: %s", res.Errors, res.FirstError)
	}
	if a, b := hitsA.Load(), hitsB.Load(); a != 10 || b != 10 {
		t.Fatalf("round-robin split = %d/%d, want 10/10", a, b)
	}
	if n := hitsBase.Load(); n != 0 {
		t.Fatalf("baseURL received %d requests despite router targets", n)
	}
}
