package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/exact"
	"repro/internal/relation"
	"repro/internal/summary"
)

// BranchOptions configure RunBranchCompare.
type BranchOptions struct {
	// BaseRows is the shared prefix both lineages fork from (default 20000).
	BaseRows int
	// Batches is the number of post-fork append batches per lineage
	// (default 10).
	Batches int
	// BatchRows is the rows per batch (default 1000).
	BatchRows int
	// Queries is the workload size used for the final accuracy check
	// (default 40).
	Queries int
	// Seed drives the data, the drift, and the workload.
	Seed int64
	// Summary configures the fork-point build.
	Summary summary.Options
	// Refresh configures the per-batch refreshes on both lineages.
	Refresh summary.RefreshOptions
}

func (o *BranchOptions) setDefaults() {
	if o.BaseRows <= 0 {
		o.BaseRows = 20000
	}
	if o.Batches <= 0 {
		o.Batches = 10
	}
	if o.BatchRows <= 0 {
		o.BatchRows = 1000
	}
	if o.Queries <= 0 {
		o.Queries = 40
	}
}

// BranchStep is one post-fork measurement: both lineages have absorbed
// `Batch` append batches, and the three pairwise diffs locate who moved.
type BranchStep struct {
	Batch      int `json:"batch"`
	MainRows   int `json:"main_rows"`
	BranchRows int `json:"branch_rows"`
	// MainVsBranchTV is the max per-attribute total-variation distance
	// between the two lineages' summaries — the divergence a /diff call
	// with b_dataset would report.
	MainVsBranchTV float64 `json:"main_vs_branch_tv"`
	// MainVsForkTV and BranchVsForkTV measure each lineage against the
	// frozen fork-point summary: the drifting lineage should pull away
	// while the stationary one stays near zero.
	MainVsForkTV   float64 `json:"main_vs_fork_tv"`
	BranchVsForkTV float64 `json:"branch_vs_fork_tv"`
	// MaxDriftAttr names the attribute dominating the main-vs-branch gap.
	MaxDriftAttr string `json:"max_drift_attr,omitempty"`
}

// BranchReport is the outcome of one branch-compare scenario.
type BranchReport struct {
	BaseRows  int          `json:"base_rows"`
	BatchRows int          `json:"batch_rows"`
	Schema    string       `json:"schema"`
	Steps     []BranchStep `json:"steps"`
	// MainMeanError and BranchMeanError score each lineage's final summary
	// against exact answers over its own relation — branching must not
	// cost either lineage accuracy.
	MainMeanError   float64 `json:"main_mean_error"`
	BranchMeanError float64 `json:"branch_mean_error"`
}

// stationaryBatch appends rows drawn from the fork point's own
// distribution (SyntheticRelation's), modeling a branch that keeps
// ingesting business-as-usual data while the main lineage drifts.
func stationaryBatch(mut *relation.Mutable, rows int, rng *rand.Rand) error {
	sch := mut.Schema()
	batch := make([][]int, 0, rows)
	for i := 0; i < rows; i++ {
		region := rng.Intn(4)
		product := (region + rng.Intn(2)) % 6
		if rng.Float64() < 0.1 {
			product = rng.Intn(6)
		}
		channel := rng.Intn(3)
		if region == 2 && rng.Float64() < 0.5 {
			channel = 0
		}
		amountBin, err := sch.Attr(3).Bin(rng.Float64() * 1000)
		if err != nil {
			return err
		}
		batch = append(batch, []int{region, product, channel, amountBin})
	}
	_, err := mut.AppendRows(batch)
	return err
}

// RunBranchCompare is the versioning counterpart of RunStreaming: one
// summary is built over a shared base (the fork point), then two lineages
// diverge — "main" ingests increasingly drifted batches while "branch"
// keeps ingesting the fork point's stationary distribution. After every
// batch both lineages refresh independently (delta statistics + warm
// solve) and the three pairwise summary.Diff reports quantify who moved:
// the same total-variation signal GET /diff serves, measured offline.
func RunBranchCompare(opts BranchOptions) (*BranchReport, error) {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	base := SyntheticRelation(opts.BaseRows, rng)

	fork, err := summary.Build(base, opts.Summary)
	if err != nil {
		return nil, fmt.Errorf("experiment: branch fork build: %w", err)
	}

	// Two mutable lineages over the same frozen prefix: each wraps its own
	// capacity-capped view of the base columns, so the fork rows are shared
	// zero-copy but the first append on either side reallocates — the same
	// isolation POST /branch relies on. Wrapping `base` itself twice would
	// alias one relation under two mutation logs.
	mainView, err := base.Slice(0, base.NumRows())
	if err != nil {
		return nil, err
	}
	branchView, err := base.Slice(0, base.NumRows())
	if err != nil {
		return nil, err
	}
	mainMut := relation.NewMutable(mainView)
	branchMut := relation.NewMutable(branchView)
	mainSum, branchSum := fork, fork
	mainRng := rand.New(rand.NewSource(opts.Seed + 7))
	branchRng := rand.New(rand.NewSource(opts.Seed + 8))

	rep := &BranchReport{
		BaseRows:  opts.BaseRows,
		BatchRows: opts.BatchRows,
		Schema:    base.Schema().String(),
	}

	mainServed, branchServed := base.NumRows(), base.NumRows()
	advance := func(mut *relation.Mutable, sum *summary.Summary, served int) (*summary.Summary, int, error) {
		full, _ := mut.Freeze()
		delta, err := full.Slice(served, full.NumRows())
		if err != nil {
			return nil, 0, err
		}
		next, _, err := sum.Refresh(full, delta, opts.Refresh)
		if err != nil {
			return nil, 0, err
		}
		return next, full.NumRows(), nil
	}

	for batch := 1; batch <= opts.Batches; batch++ {
		t := float64(batch) / float64(opts.Batches)
		if err := driftBatch(mainMut, opts.BatchRows, t, mainRng); err != nil {
			return nil, fmt.Errorf("experiment: main batch %d: %w", batch, err)
		}
		if err := stationaryBatch(branchMut, opts.BatchRows, branchRng); err != nil {
			return nil, fmt.Errorf("experiment: branch batch %d: %w", batch, err)
		}
		if mainSum, mainServed, err = advance(mainMut, mainSum, mainServed); err != nil {
			return nil, fmt.Errorf("experiment: main refresh %d: %w", batch, err)
		}
		if branchSum, branchServed, err = advance(branchMut, branchSum, branchServed); err != nil {
			return nil, fmt.Errorf("experiment: branch refresh %d: %w", batch, err)
		}

		step := BranchStep{Batch: batch, MainRows: mainServed, BranchRows: branchServed}
		mb, err := summary.Diff(mainSum, branchSum)
		if err != nil {
			return nil, err
		}
		step.MainVsBranchTV = mb.MaxTotalVariation
		step.MaxDriftAttr = mb.MaxDriftAttr
		mf, err := summary.Diff(mainSum, fork)
		if err != nil {
			return nil, err
		}
		step.MainVsForkTV = mf.MaxTotalVariation
		bf, err := summary.Diff(branchSum, fork)
		if err != nil {
			return nil, err
		}
		step.BranchVsForkTV = bf.MaxTotalVariation
		rep.Steps = append(rep.Steps, step)
	}

	// Final accuracy: each lineage against exact answers over its own data.
	workload := GenerateWorkload(base.Schema(), opts.Queries, rand.New(rand.NewSource(opts.Seed+3)))
	var preds []Query
	for _, q := range workload {
		if !q.IsGroupBy() {
			preds = append(preds, q)
		}
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("experiment: branch workload has no counting queries")
	}
	mainFull, _ := mainMut.Freeze()
	branchFull, _ := branchMut.Freeze()
	if rep.MainMeanError, err = meanCountError(mainSum, exact.New(mainFull), preds); err != nil {
		return nil, err
	}
	if rep.BranchMeanError, err = meanCountError(branchSum, exact.New(branchFull), preds); err != nil {
		return nil, err
	}
	return rep, nil
}
