package experiment

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sampling"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/summary"
)

func harnessRelation(t *testing.T, rows int) *relation.Relation {
	t.Helper()
	sch := schema.MustNew(
		schema.MustCategorical("a", []string{"x", "y", "z", "w"}),
		schema.MustCategorical("b", []string{"p", "q", "r"}),
		schema.MustBinned("c", 0, 10, 4),
	)
	rng := rand.New(rand.NewSource(21))
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		a := rng.Intn(4)
		b := a % 3
		if rng.Float64() < 0.2 {
			b = rng.Intn(3)
		}
		c, err := sch.Attr(2).Bin(rng.Float64() * 10)
		if err != nil {
			t.Fatal(err)
		}
		rel.MustAppend([]int{a, b, c})
	}
	return rel
}

// TestRunAllEstimatorKinds is the PR's end-to-end acceptance scenario:
// one harness invocation drives the MaxEnt summary, a uniform sample, a
// stratified sample, and the exact engine through the single
// core.Estimator interface, concurrently, and scores all of them.
func TestRunAllEstimatorKinds(t *testing.T) {
	rel := harnessRelation(t, 3000)
	truth := exact.New(rel)

	sum, err := summary.Build(rel, summary.Options{Solver: solver.Options{MaxSweeps: 500, Tolerance: 1e-7}})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := sampling.Uniform(rel, 0.05, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	strat, err := sampling.Stratified(rel, []int{0, 1}, 0.05, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	estimators := []core.Estimator{sum, uni, strat, truth}

	workload := GenerateWorkload(rel.Schema(), 24, nil)
	rep, err := Run(truth, estimators, workload, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Estimators) != 4 {
		t.Fatalf("report has %d estimators, want 4", len(rep.Estimators))
	}
	if rep.NumQueries != 24 || rep.Rows != 3000 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	for _, er := range rep.Estimators {
		if er.Failures != 0 {
			t.Errorf("%s: %d failures", er.Estimator, er.Failures)
		}
		if len(er.Queries) != 24 {
			t.Errorf("%s: %d scored queries, want 24", er.Estimator, len(er.Queries))
		}
		if er.ApproxBytes <= 0 {
			t.Errorf("%s: non-positive footprint %d", er.Estimator, er.ApproxBytes)
		}
	}
	// The exact engine scored against itself must have zero error and a
	// perfect F-measure on every group-by query.
	var exactRow *EstimatorReport
	for i := range rep.Estimators {
		if rep.Estimators[i].Estimator == "exact" {
			exactRow = &rep.Estimators[i]
		}
	}
	if exactRow == nil {
		t.Fatal("exact engine missing from report")
	}
	if exactRow.CountErrors.Max != 0 || exactRow.GroupErrors.Max != 0 {
		t.Errorf("exact engine has nonzero error: %+v", exactRow)
	}
	if exactRow.GroupErrors.Count > 0 && exactRow.MeanFMeasure != 1 {
		t.Errorf("exact engine F-measure = %g, want 1", exactRow.MeanFMeasure)
	}
	// The summary must be far smaller than the relation while staying
	// reasonably accurate on this correlated workload.
	if rep.Estimators[0].ApproxBytes >= rel.ApproxBytes() {
		t.Errorf("summary footprint %d not below relation %d", rep.Estimators[0].ApproxBytes, rel.ApproxBytes())
	}
	if rep.Estimators[0].CountErrors.Mean > 0.2 {
		t.Errorf("summary mean count error %g too large", rep.Estimators[0].CountErrors.Mean)
	}
}

// TestRunDeterministicScores verifies the result grid is ordered by
// (estimator, query) regardless of worker interleaving.
func TestRunDeterministicScores(t *testing.T) {
	rel := harnessRelation(t, 500)
	truth := exact.New(rel)
	workload := GenerateWorkload(rel.Schema(), 12, rand.New(rand.NewSource(4)))

	run := func(workers int) *Report {
		rep, err := Run(truth, []core.Estimator{truth}, workload, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(8)
	for i := range a.Estimators[0].Queries {
		qa, qb := a.Estimators[0].Queries[i], b.Estimators[0].Queries[i]
		if qa.Query != qb.Query || qa.Truth != qb.Truth || qa.Estimate != qb.Estimate {
			t.Fatalf("query %d differs across worker counts: %+v vs %+v", i, qa, qb)
		}
	}
}

// TestReportJSONRoundTrips verifies the machine-readable output parses
// back.
func TestReportJSONRoundTrips(t *testing.T) {
	rel := harnessRelation(t, 200)
	truth := exact.New(rel)
	workload := []Query{
		{Name: "all", Pred: nil},
		{Name: "eq", Pred: query.NewPredicate(rel.NumAttrs()).WhereEq(0, 1)},
		{Name: "grp", GroupBy: []int{1}},
	}
	rep, err := Run(truth, []core.Estimator{truth}, workload, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.NumQueries != 3 || len(back.Estimators) != 1 {
		t.Fatalf("round-tripped report wrong: %+v", back)
	}
}

// TestRunValidation pins the harness input checks.
func TestRunValidation(t *testing.T) {
	rel := harnessRelation(t, 100)
	truth := exact.New(rel)
	wl := GenerateWorkload(rel.Schema(), 2, nil)
	if _, err := Run(nil, []core.Estimator{truth}, wl, Options{}); err == nil {
		t.Error("nil truth accepted")
	}
	if _, err := Run(truth, nil, wl, Options{}); err == nil {
		t.Error("no estimators accepted")
	}
	if _, err := Run(truth, []core.Estimator{truth}, nil, Options{}); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestGenerateWorkloadDeterministic pins the fixed default seed.
func TestGenerateWorkloadDeterministic(t *testing.T) {
	sch := schema.MustNew(
		schema.MustCategorical("a", []string{"x", "y", "z"}),
		schema.MustCategorical("b", []string{"p", "q"}),
	)
	w1 := GenerateWorkload(sch, 10, nil)
	w2 := GenerateWorkload(sch, 10, nil)
	if len(w1) != 10 || len(w2) != 10 {
		t.Fatalf("workload sizes %d, %d; want 10", len(w1), len(w2))
	}
	for i := range w1 {
		p1, p2 := "nil", "nil"
		if w1[i].Pred != nil {
			p1 = w1[i].Pred.String()
		}
		if w2[i].Pred != nil {
			p2 = w2[i].Pred.String()
		}
		if p1 != p2 {
			t.Fatalf("query %d differs across default-seeded runs: %s vs %s", i, p1, p2)
		}
	}
}
