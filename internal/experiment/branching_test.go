package experiment

import (
	"testing"

	"repro/internal/solver"
	"repro/internal/summary"
)

// TestRunBranchCompare checks the scenario's shape and its headline
// claims: the drifting lineage pulls away from the fork point while the
// stationary one stays close, the main-vs-branch gap grows past noise,
// and neither lineage loses accuracy against its own data.
func TestRunBranchCompare(t *testing.T) {
	rep, err := RunBranchCompare(BranchOptions{
		BaseRows:  4000,
		Batches:   4,
		BatchRows: 800,
		Queries:   24,
		Seed:      5,
		Summary:   summary.Options{Solver: solver.Options{MaxSweeps: 200}},
		Refresh:   summary.RefreshOptions{Solver: solver.Options{MaxSweeps: 200}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 4 {
		t.Fatalf("%d steps, want 4", len(rep.Steps))
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.MainRows != 4000+4*800 || last.BranchRows != 4000+4*800 {
		t.Fatalf("final rows main=%d branch=%d, want %d", last.MainRows, last.BranchRows, 4000+4*800)
	}
	// The drifted lineage must diverge visibly more than the stationary
	// one: driftBatch ends with ~90% of rows on one (region, product)
	// cell, a total-variation shift sampling noise cannot produce.
	if last.MainVsForkTV < 2*last.BranchVsForkTV {
		t.Fatalf("main-vs-fork TV %.4f not clearly above branch-vs-fork %.4f",
			last.MainVsForkTV, last.BranchVsForkTV)
	}
	if last.MainVsBranchTV <= rep.Steps[0].MainVsBranchTV {
		t.Fatalf("main-vs-branch TV did not grow: %.4f -> %.4f",
			rep.Steps[0].MainVsBranchTV, last.MainVsBranchTV)
	}
	if last.MaxDriftAttr == "" {
		t.Fatal("no dominant drift attribute reported")
	}
	// Refreshing per batch keeps both lineages accurate on their own data.
	if rep.MainMeanError > 0.2 || rep.BranchMeanError > 0.2 {
		t.Fatalf("final accuracy degraded: main %.4f, branch %.4f", rep.MainMeanError, rep.BranchMeanError)
	}
}
