// Package experiment is the evaluation harness of the reproduction: it
// runs a workload of counting and group-by queries against any set of
// core.Estimator strategies concurrently, scores every answer against the
// exact ground-truth engine with the paper's error measures (Sec. 6.2),
// and emits a machine-readable report. It is the substrate the
// repository's benchmarks and accuracy experiments hang off.
//
// Concurrency model: one worker pool consumes (estimator, query) jobs;
// estimators are shared read-only across workers, which the Estimator
// contract requires to be safe.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Query is one workload entry: a counting query when GroupBy is empty,
// otherwise a group-by query over the listed attributes. Pred may be nil
// (no selection).
type Query struct {
	Name    string
	Pred    *query.Predicate
	GroupBy []int
}

// IsGroupBy reports whether the query is a group-by query.
func (q Query) IsGroupBy() bool { return len(q.GroupBy) > 0 }

// Options configure a Run.
type Options struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
}

// QueryScore is the scored outcome of one (estimator, query) pair.
type QueryScore struct {
	Query string `json:"query"`
	Kind  string `json:"kind"` // "count" or "groupby"
	// Truth and Estimate are set for count queries.
	Truth    float64 `json:"truth,omitempty"`
	Estimate float64 `json:"estimate,omitempty"`
	// RelativeError is the symmetric relative error of a count query, or
	// the mean per-group symmetric relative error (over the union of true
	// and estimated groups) of a group-by query.
	RelativeError float64 `json:"relative_error"`
	// FMeasure scores group existence for group-by queries: a group
	// counts as predicted when its rounded estimate is positive.
	FMeasure float64 `json:"f_measure,omitempty"`
	// LatencyNS is the answering latency of the estimator in nanoseconds.
	LatencyNS int64 `json:"latency_ns"`
	// Err records an estimator failure; the score fields are zero then.
	Err string `json:"error,omitempty"`
}

// EstimatorReport aggregates one estimator's scores over the workload.
type EstimatorReport struct {
	Estimator   string               `json:"estimator"`
	ApproxBytes int64                `json:"approx_bytes"`
	CountErrors metrics.ErrorSummary `json:"count_errors"`
	GroupErrors metrics.ErrorSummary `json:"group_errors"`
	// MeanFMeasure averages the group-by F-measures (0 when the workload
	// has no group-by queries).
	MeanFMeasure float64 `json:"mean_f_measure"`
	// TotalLatencyNS sums the answering latency over the whole workload.
	TotalLatencyNS int64        `json:"total_latency_ns"`
	Failures       int          `json:"failures"`
	Queries        []QueryScore `json:"queries"`
}

// Report is the machine-readable outcome of one harness invocation.
type Report struct {
	Rows        int               `json:"rows"`
	Schema      string            `json:"schema"`
	NumQueries  int               `json:"num_queries"`
	Estimators  []EstimatorReport `json:"estimators"`
	ElapsedNS   int64             `json:"elapsed_ns"`
	WorkerCount int               `json:"worker_count"`
}

// JSON renders the report with indentation.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// WriteJSON writes the indented JSON report followed by a newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// groundTruth is the precomputed exact answer of one query.
type groundTruth struct {
	count  float64
	groups []core.GroupEstimate
}

// Run executes the workload against every estimator concurrently and
// scores the answers against the exact engine. The truth engine itself
// may also appear in estimators; it is then scored like any other
// strategy (with zero error by construction).
func Run(truth *exact.Engine, estimators []core.Estimator, workload []Query, opts Options) (*Report, error) {
	if truth == nil {
		return nil, fmt.Errorf("experiment: a ground-truth engine is required")
	}
	if len(estimators) == 0 {
		return nil, fmt.Errorf("experiment: at least one estimator is required")
	}
	if len(workload) == 0 {
		return nil, fmt.Errorf("experiment: the workload is empty")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()

	// Precompute ground truth once per query, not once per estimator.
	truths := make([]groundTruth, len(workload))
	for i, q := range workload {
		if q.IsGroupBy() {
			truths[i] = groundTruth{groups: truth.GroupBy(q.GroupBy, q.Pred)}
		} else {
			truths[i] = groundTruth{count: truth.Count(q.Pred)}
		}
	}

	// Fan (estimator, query) pairs out over the worker pool; the result
	// grid keeps scores deterministic regardless of completion order.
	type job struct{ est, qry int }
	jobs := make(chan job)
	grid := make([][]QueryScore, len(estimators))
	for i := range grid {
		grid[i] = make([]QueryScore, len(workload))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				grid[j.est][j.qry] = score(estimators[j.est], workload[j.qry], truths[j.qry])
			}
		}()
	}
	for e := range estimators {
		for q := range workload {
			jobs <- job{est: e, qry: q}
		}
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Rows:        truth.Relation().NumRows(),
		Schema:      truth.Relation().Schema().String(),
		NumQueries:  len(workload),
		WorkerCount: workers,
	}
	for e, est := range estimators {
		rep.Estimators = append(rep.Estimators, aggregate(est, grid[e]))
	}
	rep.ElapsedNS = time.Since(start).Nanoseconds()
	return rep, nil
}

// score runs one query against one estimator and scores it against the
// precomputed truth.
func score(est core.Estimator, q Query, gt groundTruth) QueryScore {
	name := q.Name
	if name == "" {
		name = queryLabel(q)
	}
	s := QueryScore{Query: name, Kind: "count"}
	begin := time.Now()
	if q.IsGroupBy() {
		s.Kind = "groupby"
		groups, err := est.EstimateGroupBy(q.GroupBy, q.Pred)
		s.LatencyNS = time.Since(begin).Nanoseconds()
		if err != nil {
			s.Err = err.Error()
			return s
		}
		s.RelativeError, s.FMeasure = scoreGroups(gt.groups, groups)
		return s
	}
	c, err := est.EstimateCount(q.Pred)
	s.LatencyNS = time.Since(begin).Nanoseconds()
	if err != nil {
		s.Err = err.Error()
		return s
	}
	s.Truth = gt.count
	s.Estimate = c
	s.RelativeError = metrics.RelativeError(gt.count, c)
	return s
}

// scoreGroups compares estimated groups against true groups: the mean
// symmetric relative error over the union of group keys, and the
// F-measure of group existence (a group is predicted existing when its
// rounded estimate is positive, Sec. 6.2).
func scoreGroups(truth, est []core.GroupEstimate) (meanErr, f float64) {
	tm := make(map[string]float64, len(truth))
	for _, g := range truth {
		tm[groupKey(g.Values)] = g.Estimate
	}
	em := make(map[string]float64, len(est))
	for _, g := range est {
		em[groupKey(g.Values)] = g.Estimate
	}
	// Iterate in sorted key order so float summation order (and thus the
	// reported mean at ULP precision) is reproducible across runs.
	tkeys := make([]string, 0, len(tm))
	for k := range tm {
		tkeys = append(tkeys, k)
	}
	sort.Strings(tkeys)
	ekeys := make([]string, 0, len(em))
	for k := range em {
		ekeys = append(ekeys, k)
	}
	sort.Strings(ekeys)

	var errs []float64
	var outcome metrics.RareValueOutcome
	for _, k := range tkeys {
		e := em[k]
		errs = append(errs, metrics.RelativeError(tm[k], e))
		outcome.AddLightHitter(e)
	}
	for _, k := range ekeys {
		if _, seen := tm[k]; seen {
			continue
		}
		errs = append(errs, metrics.RelativeError(0, em[k]))
		outcome.AddNull(em[k])
	}
	return metrics.Mean(errs), outcome.F()
}

func groupKey(values []int) string { return fmt.Sprint(values) }

// queryLabel derives a stable label for an unnamed query.
func queryLabel(q Query) string {
	pred := "true"
	if q.Pred != nil {
		pred = q.Pred.String()
	}
	if q.IsGroupBy() {
		return fmt.Sprintf("groupby%v where %s", q.GroupBy, pred)
	}
	return "count where " + pred
}

// aggregate folds one estimator's per-query scores into its report row.
func aggregate(est core.Estimator, scores []QueryScore) EstimatorReport {
	rep := EstimatorReport{
		Estimator:   est.Name(),
		ApproxBytes: est.ApproxBytes(),
		Queries:     scores,
	}
	var countErrs, groupErrs, fs []float64
	for _, s := range scores {
		rep.TotalLatencyNS += s.LatencyNS
		if s.Err != "" {
			rep.Failures++
			continue
		}
		if s.Kind == "groupby" {
			groupErrs = append(groupErrs, s.RelativeError)
			fs = append(fs, s.FMeasure)
		} else {
			countErrs = append(countErrs, s.RelativeError)
		}
	}
	rep.CountErrors = metrics.Summarize(countErrs)
	rep.GroupErrors = metrics.Summarize(groupErrs)
	rep.MeanFMeasure = metrics.Mean(fs)
	return rep
}
