package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/server"
)

// IngestMix turns a read-only load run into a mixed read/write one:
// every Every-th request slot becomes a POST /ingest/{Dataset} carrying
// Batch rows from the Rows pool instead of a query — the
// serving-while-ingesting workload a live deployment sees.
type IngestMix struct {
	// Dataset is the target of POST /ingest/{dataset}.
	Dataset string
	// Every makes one request slot in Every an ingest (must be >= 1; 1
	// means every request is an ingest).
	Every int
	// Batch is the number of rows per ingest request (default 10).
	Batch int
	// Rows is the pool of pre-generated encoded rows ingests draw from
	// (batches rotate through it).
	Rows [][]int
}

// LoadOptions configure DriveHTTP.
type LoadOptions struct {
	// Concurrency is the number of in-flight requests (default GOMAXPROCS).
	Concurrency int
	// Repeat replays the workload this many times (default 1). Repeats > 1
	// re-issue identical queries, so they measure the server's cache path.
	Repeat int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Ingest, when non-nil with Every >= 1, interleaves ingest requests
	// with the query workload.
	Ingest *IngestMix
	// Batch > 1 groups that many workload queries into one POST
	// /query/batch round trip (0 or 1 keeps the single-query endpoints).
	// Batched runs do not support an ingest mix.
	Batch int
	// Wire selects the batch encoding: "json" (default) or "binary".
	// Ignored unless Batch > 1.
	Wire string
	// Version > 0 answers every query from that retained snapshot version
	// of the estimator's dataset key (time travel); 0 queries the live
	// estimators.
	Version int
	// VersionMix cycles request slots through these snapshot versions
	// (0 = live), producing a mixed live/historical workload that
	// exercises the server's historical-estimator cache. Overrides
	// Version when non-empty.
	VersionMix []int
	// Routers lists alternative base URLs that request slots rotate
	// through round-robin (slot j targets Routers[j % len]); they must
	// front the same fleet or answers will diverge. Empty keeps every
	// request on DriveHTTP's baseURL argument.
	Routers []string
}

// targetFor returns the base URL request slot j should hit.
func (o *LoadOptions) targetFor(baseURL string, j int) string {
	if len(o.Routers) == 0 {
		return baseURL
	}
	return strings.TrimRight(o.Routers[j%len(o.Routers)], "/")
}

// versionFor returns the snapshot version request slot j should target.
func (o *LoadOptions) versionFor(j int) int {
	if len(o.VersionMix) > 0 {
		return o.VersionMix[j%len(o.VersionMix)]
	}
	return o.Version
}

// baseVersion is the version encoded into shared batch bodies: 0 when a
// mix varies it per round trip (the URL override carries it then).
func baseVersion(o LoadOptions) int {
	if len(o.VersionMix) > 0 {
		return 0
	}
	return o.Version
}

// validVersions rejects negative versions up front.
func (o *LoadOptions) validVersions() error {
	if o.Version < 0 {
		return fmt.Errorf("experiment: version must be non-negative, got %d", o.Version)
	}
	for _, v := range o.VersionMix {
		if v < 0 {
			return fmt.Errorf("experiment: version mix must be non-negative, got %d", v)
		}
	}
	return nil
}

// LoadResult aggregates one load-generation run; it is the payload
// cmd/loadgen prints and the number source of BENCH.md's serving table.
type LoadResult struct {
	Estimator string `json:"estimator"`
	// Requests counts queries answered; with batching each HTTP round trip
	// carries several, so Requests >= HTTPRequests and ThroughputQPS is
	// always queries per second.
	Requests      int     `json:"requests"`
	HTTPRequests  int     `json:"http_requests"`
	Errors        int     `json:"errors"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	ThroughputQPS float64 `json:"throughput_qps"`
	// Batch accounting (zero/empty on unbatched runs). Bytes are summed
	// over request and response bodies — the wire-format tax per query is
	// (BytesOut+BytesIn)/Requests.
	BatchSize     int    `json:"batch_size,omitempty"`
	Wire          string `json:"wire,omitempty"`
	BytesOut      int64  `json:"bytes_out,omitempty"`
	BytesIn       int64  `json:"bytes_in,omitempty"`
	LatencyP50NS  int64  `json:"latency_p50_ns"`
	LatencyP95NS  int64  `json:"latency_p95_ns"`
	LatencyMeanNS int64  `json:"latency_mean_ns"`
	// CachedResponses counts answers the server reported as cache hits.
	CachedResponses int `json:"cached_responses"`
	// Ingest accounting (zero unless LoadOptions.Ingest was set). Ingest
	// latencies are tracked separately from the query quantiles: a
	// refresh-triggering ingest legitimately takes milliseconds and would
	// otherwise drown the read-path signal.
	IngestRequests int   `json:"ingest_requests,omitempty"`
	IngestErrors   int   `json:"ingest_errors,omitempty"`
	IngestedRows   int   `json:"ingested_rows,omitempty"`
	IngestMeanNS   int64 `json:"ingest_mean_ns,omitempty"`
	// Refreshes counts ingest responses that reported a hot swap.
	Refreshes int `json:"refreshes,omitempty"`
	// FirstError carries one representative failure for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// DriveHTTP replays the workload against a running summaryd instance at
// baseURL, fanning requests out over a bounded set of workers, and returns
// client-side throughput and latency aggregates. It is the HTTP face of
// the same workloads Run scores in-process, which makes serving overhead
// directly comparable to direct Estimator calls.
func DriveHTTP(baseURL, estimator string, workload []Query, opts LoadOptions) (*LoadResult, error) {
	if len(workload) == 0 {
		return nil, fmt.Errorf("experiment: the workload is empty")
	}
	if estimator == "" {
		return nil, fmt.Errorf("experiment: an estimator name is required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.Repeat <= 0 {
		opts.Repeat = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Batch > 1 {
		return driveBatched(baseURL, estimator, workload, opts)
	}

	// Pre-marshal every request body once so the measured path is pure
	// request/response handling.
	type call struct {
		path string
		body []byte
	}
	calls := make([]call, len(workload))
	for i, q := range workload {
		var (
			b   []byte
			err error
		)
		path := "/query"
		if q.IsGroupBy() {
			path = "/groupby"
			b, err = json.Marshal(server.GroupByRequest{Estimator: estimator, Predicate: q.Pred, GroupBy: q.GroupBy})
		} else {
			b, err = json.Marshal(server.QueryRequest{Estimator: estimator, Predicate: q.Pred})
		}
		if err != nil {
			return nil, fmt.Errorf("experiment: marshal %s: %w", q.Name, err)
		}
		calls[i] = call{path: path, body: b}
	}

	// Pre-marshal the rotating ingest bodies when a mix is requested.
	var (
		mix          *IngestMix
		ingestBodies [][]byte
	)
	if opts.Ingest != nil && opts.Ingest.Every >= 1 {
		mix = opts.Ingest
		if mix.Dataset == "" {
			return nil, fmt.Errorf("experiment: ingest mix needs a dataset name")
		}
		if len(mix.Rows) == 0 {
			return nil, fmt.Errorf("experiment: ingest mix needs a row pool")
		}
		batch := mix.Batch
		if batch <= 0 {
			batch = 10
		}
		for off := 0; off < len(mix.Rows); off += batch {
			end := off + batch
			if end > len(mix.Rows) {
				end = len(mix.Rows)
			}
			b, err := json.Marshal(server.IngestRequest{Rows: mix.Rows[off:end]})
			if err != nil {
				return nil, fmt.Errorf("experiment: marshal ingest batch: %w", err)
			}
			ingestBodies = append(ingestBodies, b)
		}
	}

	client := newLoadClient(opts)
	total := len(calls) * opts.Repeat
	jobs := make(chan int)
	// -1 marks requests that failed in transport (and ingest slots); they
	// are excluded from the query quantiles.
	latencies := make([]int64, total)
	for i := range latencies {
		latencies[i] = -1
	}
	var (
		mu           sync.Mutex
		errCount     int
		cachedHits   int
		firstErr     string
		ingestReqs   int
		ingestErrs   int
		ingestedRows int
		ingestNS     int64
		refreshes    int
	)
	fail := func(msg string) {
		mu.Lock()
		errCount++
		if firstErr == "" {
			firstErr = msg
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				target := opts.targetFor(baseURL, j)
				if mix != nil && j%mix.Every == 0 {
					body := ingestBodies[(j/mix.Every)%len(ingestBodies)]
					t0 := time.Now()
					resp, err := client.Post(target+"/ingest/"+mix.Dataset, "application/json", bytes.NewReader(body))
					ns := time.Since(t0).Nanoseconds()
					mu.Lock()
					ingestReqs++
					ingestNS += ns
					mu.Unlock()
					if err != nil {
						mu.Lock()
						ingestErrs++
						if firstErr == "" {
							firstErr = err.Error()
						}
						mu.Unlock()
						continue
					}
					rbody, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					var ir server.IngestResult
					if resp.StatusCode != http.StatusOK || json.Unmarshal(rbody, &ir) != nil {
						mu.Lock()
						ingestErrs++
						if firstErr == "" {
							firstErr = fmt.Sprintf("ingest status %d: %s", resp.StatusCode, rbody)
						}
						mu.Unlock()
						continue
					}
					mu.Lock()
					ingestedRows += ir.Accepted
					if ir.Refreshed {
						refreshes++
					}
					mu.Unlock()
					continue
				}
				c := calls[j%len(calls)]
				// The snapshot version travels as a URL override, so the
				// pre-marshaled bodies stay shared across a version mix.
				url := target + c.path
				if v := opts.versionFor(j); v > 0 {
					url += "?version=" + strconv.Itoa(v)
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(c.body))
				if err != nil {
					fail(err.Error())
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				latencies[j] = time.Since(t0).Nanoseconds()
				if rerr != nil {
					fail(rerr.Error())
					continue
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Sprintf("status %d: %s", resp.StatusCode, body))
					continue
				}
				var probe struct {
					Cached bool `json:"cached"`
				}
				if json.Unmarshal(body, &probe) == nil && probe.Cached {
					mu.Lock()
					cachedHits++
					mu.Unlock()
				}
			}
		}()
	}
	for j := 0; j < total; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Estimator:       estimator,
		Requests:        total,
		HTTPRequests:    total,
		Errors:          errCount,
		ElapsedNS:       elapsed.Nanoseconds(),
		CachedResponses: cachedHits,
		IngestRequests:  ingestReqs,
		IngestErrors:    ingestErrs,
		IngestedRows:    ingestedRows,
		Refreshes:       refreshes,
		FirstError:      firstErr,
	}
	if ingestReqs > 0 {
		res.IngestMeanNS = ingestNS / int64(ingestReqs)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.ThroughputQPS = float64(total) / secs
	}
	measured := latencies[:0]
	for _, l := range latencies {
		if l >= 0 {
			measured = append(measured, l)
		}
	}
	if n := len(measured); n > 0 {
		var sum int64
		for _, l := range measured {
			sum += l
		}
		res.LatencyMeanNS = sum / int64(n)
		sort.Slice(measured, func(i, j int) bool { return measured[i] < measured[j] })
		res.LatencyP50NS = measured[int(0.50*float64(n-1))]
		res.LatencyP95NS = measured[int(0.95*float64(n-1))]
	}
	return res, nil
}

// newLoadClient builds an HTTP client whose transport keeps one idle
// connection per worker: the stock transport caps idle connections per
// host at 2, so any Concurrency above that re-dials TCP mid-run and the
// handshake tax dominates what should be a serving measurement.
func newLoadClient(opts LoadOptions) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        2 * opts.Concurrency,
		MaxIdleConnsPerHost: opts.Concurrency,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Timeout: opts.Timeout, Transport: tr}
}

// driveBatched is the POST /query/batch load path: the workload is cut
// into Batch-sized round trips, each pre-encoded once on the selected wire,
// and replayed Repeat times. Accounting is per query (Requests,
// ThroughputQPS) with latency quantiles per round trip.
func driveBatched(baseURL, estimator string, workload []Query, opts LoadOptions) (*LoadResult, error) {
	// Wire and mix combinations were already vetted by Validate.
	wire := opts.Wire
	if wire == "" || wire == "json" {
		wire = "json"
	}
	contentType := "application/json"
	if wire == "binary" {
		contentType = server.BinaryBatchContentType
	}

	type round struct {
		body    []byte
		queries int
	}
	var rounds []round
	for off := 0; off < len(workload); off += opts.Batch {
		end := off + opts.Batch
		if end > len(workload) {
			end = len(workload)
		}
		chunk := workload[off:end]
		var body []byte
		if wire == "binary" {
			items := make([]query.BatchItem, len(chunk))
			for i, q := range chunk {
				items[i] = query.BatchItem{Pred: q.Pred, GroupBy: q.GroupBy}
			}
			// A fixed snapshot version rides in the frame itself (format v2);
			// a version mix instead overrides per round trip via the URL, so
			// pre-encoded frames stay shared.
			frame, err := query.AppendBatchAt(nil, estimator, baseVersion(opts), items)
			if err != nil {
				return nil, fmt.Errorf("experiment: encode batch frame: %w", err)
			}
			body = frame
		} else {
			req := server.BatchQueryRequest{Estimator: estimator, Version: baseVersion(opts)}
			for _, q := range chunk {
				req.Queries = append(req.Queries, server.BatchQueryItem{Predicate: q.Pred, GroupBy: q.GroupBy})
			}
			var err error
			if body, err = json.Marshal(req); err != nil {
				return nil, fmt.Errorf("experiment: marshal batch: %w", err)
			}
		}
		rounds = append(rounds, round{body: body, queries: len(chunk)})
	}

	client := newLoadClient(opts)
	totalRounds := len(rounds) * opts.Repeat
	jobs := make(chan int)
	latencies := make([]int64, totalRounds)
	for i := range latencies {
		latencies[i] = -1
	}
	var (
		mu         sync.Mutex
		errCount   int
		cachedHits int
		firstErr   string
		bytesOut   int64
		bytesIn    int64
	)
	account := func(errs, cached int, out, in int64, msg string) {
		mu.Lock()
		errCount += errs
		cachedHits += cached
		bytesOut += out
		bytesIn += in
		if msg != "" && firstErr == "" {
			firstErr = msg
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := rounds[j%len(rounds)]
				url := opts.targetFor(baseURL, j) + "/query/batch"
				if len(opts.VersionMix) > 0 {
					if v := opts.versionFor(j); v > 0 {
						url += "?version=" + strconv.Itoa(v)
					}
				}
				t0 := time.Now()
				resp, err := client.Post(url, contentType, bytes.NewReader(r.body))
				if err != nil {
					// A transport failure loses the whole round trip.
					account(r.queries, 0, int64(len(r.body)), 0, err.Error())
					continue
				}
				rbody, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				latencies[j] = time.Since(t0).Nanoseconds()
				out, in := int64(len(r.body)), int64(len(rbody))
				if rerr != nil {
					account(r.queries, 0, out, in, rerr.Error())
					continue
				}
				if resp.StatusCode != http.StatusOK {
					account(r.queries, 0, out, in, fmt.Sprintf("status %d: %s", resp.StatusCode, rbody))
					continue
				}
				var answers []query.BatchAnswer
				if wire == "binary" {
					_, answers, err = query.DecodeAnswers(bytes.NewReader(rbody))
				} else {
					var br server.BatchQueryResponse
					if err = json.Unmarshal(rbody, &br); err == nil {
						answers = make([]query.BatchAnswer, len(br.Answers))
						for i, a := range br.Answers {
							answers[i] = query.BatchAnswer{Cached: a.Cached, Error: a.Error}
						}
					}
				}
				if err != nil {
					account(r.queries, 0, out, in, err.Error())
					continue
				}
				errs, cached := 0, 0
				var msg string
				for _, a := range answers {
					if a.Error != "" {
						errs++
						msg = a.Error
					}
					if a.Cached {
						cached++
					}
				}
				account(errs, cached, out, in, msg)
			}
		}()
	}
	for j := 0; j < totalRounds; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Estimator:       estimator,
		Requests:        len(workload) * opts.Repeat,
		HTTPRequests:    totalRounds,
		Errors:          errCount,
		ElapsedNS:       elapsed.Nanoseconds(),
		CachedResponses: cachedHits,
		BatchSize:       opts.Batch,
		Wire:            wire,
		BytesOut:        bytesOut,
		BytesIn:         bytesIn,
		FirstError:      firstErr,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.ThroughputQPS = float64(res.Requests) / secs
	}
	measured := latencies[:0]
	for _, l := range latencies {
		if l >= 0 {
			measured = append(measured, l)
		}
	}
	if n := len(measured); n > 0 {
		var sum int64
		for _, l := range measured {
			sum += l
		}
		res.LatencyMeanNS = sum / int64(n)
		sort.Slice(measured, func(i, j int) bool { return measured[i] < measured[j] })
		res.LatencyP50NS = measured[int(0.50*float64(n-1))]
		res.LatencyP95NS = measured[int(0.95*float64(n-1))]
	}
	return res, nil
}
