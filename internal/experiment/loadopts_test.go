package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestParseVersionMix(t *testing.T) {
	got, err := ParseVersionMix(" 0, 1 ,2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ParseVersionMix = %v, want [0 1 2]", got)
	}
	if got, err := ParseVersionMix(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v; want nil, nil", got, err)
	}
	if got, err := ParseVersionMix("   "); err != nil || got != nil {
		t.Fatalf("blank spec: %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"0,x", "-1", "1,,2", "1.5"} {
		if _, err := ParseVersionMix(bad); err == nil {
			t.Fatalf("ParseVersionMix(%q) accepted", bad)
		}
	}
}

// TestLoadOptionsValidate is the contradictory-combination table: every
// flag pairing cmd/loadgen must refuse is refused HERE, in the one shared
// Validate, so the CLI and programmatic callers cannot drift apart.
func TestLoadOptionsValidate(t *testing.T) {
	mix := &IngestMix{Dataset: "demo", Every: 5, Batch: 10}
	cases := []struct {
		name string
		opts LoadOptions
		want string // "" = valid; otherwise a substring of the error
	}{
		{"zero value", LoadOptions{}, ""},
		{"plain versioned", LoadOptions{Version: 2}, ""},
		{"plain mix", LoadOptions{VersionMix: []int{0, 1}}, ""},
		{"json batch", LoadOptions{Batch: 16}, ""},
		{"binary batch", LoadOptions{Batch: 16, Wire: "binary"}, ""},
		{"batched mix", LoadOptions{Batch: 16, VersionMix: []int{0, 2}}, ""},
		{"ingest mix", LoadOptions{Ingest: mix}, ""},
		{"negative batch", LoadOptions{Batch: -1}, "non-negative"},
		{"unknown wire", LoadOptions{Batch: 8, Wire: "protobuf"}, "unknown wire"},
		{"binary without batch", LoadOptions{Wire: "binary"}, "requires batching"},
		{"binary with batch 1", LoadOptions{Batch: 1, Wire: "binary"}, "requires batching"},
		{"negative version", LoadOptions{Version: -1}, "non-negative"},
		{"negative mix entry", LoadOptions{VersionMix: []int{0, -2}}, "non-negative"},
		// The bug this table exists for: -version with -version-mix used to
		// silently serve the mix and drop the fixed version.
		{"version and mix", LoadOptions{Version: 1, VersionMix: []int{0, 2}}, "mutually exclusive"},
		{"ingest with batch", LoadOptions{Batch: 8, Ingest: mix}, "unbatched"},
		{"ingest with version", LoadOptions{Version: 1, Ingest: mix}, "mutually exclusive"},
		{"ingest with mix", LoadOptions{VersionMix: []int{1}, Ingest: mix}, "mutually exclusive"},
		{"dormant ingest with batch", LoadOptions{Batch: 8, Ingest: &IngestMix{Dataset: "demo"}}, ""},
		{"router targets", LoadOptions{Routers: []string{"http://a:8090", "http://b:8090"}}, ""},
		{"routers with batch", LoadOptions{Batch: 16, Routers: []string{"http://a:8090"}}, ""},
		{"empty router target", LoadOptions{Routers: []string{"http://a:8090", "  "}}, "is empty"},
		{"non-URL router target", LoadOptions{Routers: []string{"a:8090"}}, "not a URL"},
		// A write proxied by one router leaves every other router's read
		// cache unfenced — rotating ingest across routers serves stale hits.
		{"ingest with routers", LoadOptions{Routers: []string{"http://a:8090", "http://b:8090"}, Ingest: mix}, "cannot rotate across routers"},
		{"dormant ingest with routers", LoadOptions{Routers: []string{"http://a:8090"}, Ingest: &IngestMix{Dataset: "demo"}}, ""},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestDriveHTTPRejectsThroughValidate proves the programmatic entry point
// refuses what Validate refuses — no second, drifting rule set.
func TestDriveHTTPRejectsThroughValidate(t *testing.T) {
	workload := []Query{{Name: "q0"}}
	bad := []LoadOptions{
		{Version: 1, VersionMix: []int{0, 2}},
		{Wire: "binary"},
		{Batch: 4, Ingest: &IngestMix{Dataset: "demo", Every: 2, Rows: [][]int{{0}}}},
	}
	for i, opts := range bad {
		opts.Timeout = time.Second
		if _, err := DriveHTTP("http://127.0.0.1:0", "demo/maxent", workload, opts); err == nil {
			t.Errorf("case %d: DriveHTTP accepted options Validate rejects", i)
		}
	}
}
