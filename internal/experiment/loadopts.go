package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseVersionMix decodes a comma-separated snapshot-version list
// ("0,1,2"; 0 = live) into the LoadOptions.VersionMix slice. An empty
// spec is no mix at all.
func ParseVersionMix(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var mix []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("experiment: version mix entries must be non-negative integers, got %q", part)
		}
		mix = append(mix, v)
	}
	return mix, nil
}

// Validate rejects contradictory load configurations in one place — the
// single source of truth for which LoadOptions combinations make sense,
// shared by cmd/loadgen's flag surface and DriveHTTP's programmatic
// callers. The zero value is valid.
func (o *LoadOptions) Validate() error {
	if o.Batch < 0 {
		return fmt.Errorf("experiment: batch size must be non-negative, got %d", o.Batch)
	}
	switch o.Wire {
	case "", "json":
	case "binary":
		if o.Batch <= 1 {
			return fmt.Errorf("experiment: the binary wire requires batching (batch > 1)")
		}
	default:
		return fmt.Errorf("experiment: unknown wire %q (use json or binary)", o.Wire)
	}
	if err := o.validVersions(); err != nil {
		return err
	}
	if o.Version > 0 && len(o.VersionMix) > 0 {
		// Accepting both silently served the mix and ignored the fixed
		// version — refuse the ambiguity instead.
		return fmt.Errorf("experiment: a fixed version and a version mix are mutually exclusive (the mix already covers fixed versions)")
	}
	if o.Ingest != nil && o.Ingest.Every >= 1 {
		if o.Batch > 1 {
			return fmt.Errorf("experiment: the ingest mix requires unbatched mode")
		}
		if o.Version > 0 || len(o.VersionMix) > 0 {
			return fmt.Errorf("experiment: versioned reads and an ingest mix are mutually exclusive (snapshots are immutable)")
		}
		if len(o.Routers) > 0 {
			// A router only fences its own proxied writes: rotating ingest
			// across routers would leave every other router's read cache
			// serving stale hits (docs/FLEET.md, "the contract's boundary").
			return fmt.Errorf("experiment: an ingest mix cannot rotate across routers (a write through one router leaves the others' read caches unfenced); drop -routers or the ingest mix")
		}
	}
	for i, u := range o.Routers {
		if strings.TrimSpace(u) == "" {
			return fmt.Errorf("experiment: router target %d is empty", i)
		}
		if !strings.Contains(u, "://") {
			return fmt.Errorf("experiment: router target %d: %q is not a URL (want e.g. http://host:8090)", i, u)
		}
	}
	return nil
}
