package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/metrics"
	"repro/internal/relation"
	"repro/internal/summary"
)

// StreamingOptions configure RunStreaming.
type StreamingOptions struct {
	// BaseRows is the relation size the initial summary is built over
	// (default 20000).
	BaseRows int
	// Batches is the number of append batches (default 10).
	Batches int
	// BatchRows is the rows per batch (default 1000).
	BatchRows int
	// Queries is the workload size scored after every batch (default 40).
	Queries int
	// Seed drives the data, the drift, and the workload.
	Seed int64
	// Summary configures the initial build.
	Summary summary.Options
	// Refresh configures the per-batch refreshes.
	Refresh summary.RefreshOptions
}

func (o *StreamingOptions) setDefaults() {
	if o.BaseRows <= 0 {
		o.BaseRows = 20000
	}
	if o.Batches <= 0 {
		o.Batches = 10
	}
	if o.BatchRows <= 0 {
		o.BatchRows = 1000
	}
	if o.Queries <= 0 {
		o.Queries = 40
	}
}

// StreamingStep is the measurement after one append batch.
type StreamingStep struct {
	Batch     int `json:"batch"`
	TotalRows int `json:"total_rows"`
	// StaleMeanError is the mean relative error of the summary built at
	// batch 0 and never refreshed, scored against the exact answers over
	// the grown relation.
	StaleMeanError float64 `json:"stale_mean_error"`
	// RefreshedMeanError is the same measure for the summary refreshed
	// after every batch.
	RefreshedMeanError float64 `json:"refreshed_mean_error"`
	// RefreshSweeps is the solver sweep count of this batch's refresh.
	RefreshSweeps int `json:"refresh_sweeps"`
	// Rebuilt reports whether the refresh fell back to a full recount.
	Rebuilt bool `json:"rebuilt"`
	// RefreshNS is the wall-clock cost of the whole Refresh call
	// (statistics update/recount plus solve) in nanoseconds.
	RefreshNS int64 `json:"refresh_ns"`
}

// StreamingReport is the outcome of one streaming-drift scenario.
type StreamingReport struct {
	BaseRows  int             `json:"base_rows"`
	BatchRows int             `json:"batch_rows"`
	Schema    string          `json:"schema"`
	Queries   int             `json:"num_queries"`
	Steps     []StreamingStep `json:"steps"`
}

// driftBatch appends rows whose distribution drifts away from
// SyntheticRelation's: with drift t ∈ [0, 1], an increasing share of rows
// concentrates on region=LATAM with high amounts, so the region marginal
// and the (region, product) joint both move — exactly the change a stale
// summary cannot see.
func driftBatch(mut *relation.Mutable, rows int, t float64, rng *rand.Rand) error {
	sch := mut.Schema()
	batch := make([][]int, 0, rows)
	for i := 0; i < rows; i++ {
		var region, product, channel int
		if rng.Float64() < 0.3+0.6*t {
			region = 3 // LATAM surge
			product = 5
			channel = rng.Intn(3)
		} else {
			region = rng.Intn(4)
			product = (region + rng.Intn(2)) % 6
			if rng.Float64() < 0.1 {
				product = rng.Intn(6)
			}
			channel = rng.Intn(3)
			if region == 2 && rng.Float64() < 0.5 {
				channel = 0
			}
		}
		hi := 1000 * (0.5 + 0.5*t)
		amountBin, err := sch.Attr(3).Bin(rng.Float64() * hi)
		if err != nil {
			return err
		}
		batch = append(batch, []int{region, product, channel, amountBin})
	}
	_, err := mut.AppendRows(batch)
	return err
}

// RunStreaming measures accuracy drift under live ingestion: it builds
// one summary over the base relation, then appends drifting batches and
// after each batch scores (a) the stale summary, never refreshed, and
// (b) a per-batch-refreshed summary, both against exact answers over the
// grown relation. The gap between the two error curves is the value of
// the refresh pipeline; the sweep counts record what each refresh cost.
func RunStreaming(opts StreamingOptions) (*StreamingReport, error) {
	opts.setDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	mut := relation.NewMutable(SyntheticRelation(opts.BaseRows, rng))
	base, _ := mut.Freeze()

	stale, err := summary.Build(base, opts.Summary)
	if err != nil {
		return nil, fmt.Errorf("experiment: streaming base build: %w", err)
	}
	refreshed := stale

	workload := GenerateWorkload(base.Schema(), opts.Queries, rand.New(rand.NewSource(opts.Seed+3)))
	// Streaming scores only counting queries: group-by scoring mixes
	// F-measure into the comparison and obscures the drift curve.
	var preds []Query
	for _, q := range workload {
		if !q.IsGroupBy() {
			preds = append(preds, q)
		}
	}
	if len(preds) == 0 {
		return nil, fmt.Errorf("experiment: streaming workload has no counting queries")
	}

	rep := &StreamingReport{
		BaseRows:  opts.BaseRows,
		BatchRows: opts.BatchRows,
		Schema:    base.Schema().String(),
		Queries:   len(preds),
	}

	servedRows := base.NumRows()
	for batch := 1; batch <= opts.Batches; batch++ {
		t := float64(batch) / float64(opts.Batches)
		if err := driftBatch(mut, opts.BatchRows, t, rng); err != nil {
			return nil, fmt.Errorf("experiment: streaming batch %d: %w", batch, err)
		}
		full, _ := mut.Freeze()
		delta, err := full.Slice(servedRows, full.NumRows())
		if err != nil {
			return nil, err
		}

		refreshStart := time.Now()
		next, info, err := refreshed.Refresh(full, delta, opts.Refresh)
		if err != nil {
			return nil, fmt.Errorf("experiment: streaming refresh %d: %w", batch, err)
		}
		refreshNS := time.Since(refreshStart).Nanoseconds()
		refreshed = next
		servedRows = full.NumRows()

		truth := exact.New(full)
		step := StreamingStep{
			Batch:         batch,
			TotalRows:     full.NumRows(),
			RefreshSweeps: info.Solver.Sweeps,
			Rebuilt:       info.Rebuilt,
			RefreshNS:     refreshNS,
		}
		step.StaleMeanError, err = meanCountError(stale, truth, preds)
		if err != nil {
			return nil, err
		}
		step.RefreshedMeanError, err = meanCountError(refreshed, truth, preds)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, step)
	}
	return rep, nil
}

// meanCountError scores one estimator's counting answers against exact.
func meanCountError(est core.Estimator, truth *exact.Engine, preds []Query) (float64, error) {
	var errs []float64
	for _, q := range preds {
		e, err := est.EstimateCount(q.Pred)
		if err != nil {
			return 0, fmt.Errorf("experiment: streaming query %s: %w", q.Name, err)
		}
		errs = append(errs, metrics.RelativeError(truth.Count(q.Pred), e))
	}
	return metrics.Mean(errs), nil
}
