package experiment

import (
	"math/rand"

	"repro/internal/relation"
	"repro/internal/schema"
)

// SyntheticSchema returns the schema of the repository's standard
// correlated test relation: a strongly correlated (region, product) pair,
// a weakly dependent channel, and an independent binned measure.
func SyntheticSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustCategorical("region", []string{"NA", "EU", "APAC", "LATAM"}),
		schema.MustCategorical("product", []string{"a", "b", "c", "d", "e", "f"}),
		schema.MustCategorical("channel", []string{"web", "store", "phone"}),
		schema.MustBinned("amount", 0, 1000, 8),
	)
}

// SyntheticRelation draws rows tuples from the standard correlated
// distribution: product tracks region closely (with 10% noise), APAC skews
// to the web channel, and amount is uniform over its bins — enough
// structure for the 2D statistics to matter. It is the shared data
// generator of cmd/experiment and cmd/summaryd, so the golden accuracy
// gate and the serving benchmarks exercise the same distribution.
func SyntheticRelation(rows int, rng *rand.Rand) *relation.Relation {
	sch := SyntheticSchema()
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		region := rng.Intn(4)
		product := (region + rng.Intn(2)) % 6
		if rng.Float64() < 0.1 {
			product = rng.Intn(6)
		}
		channel := rng.Intn(3)
		if region == 2 && rng.Float64() < 0.5 {
			channel = 0
		}
		amountBin, err := sch.Attr(3).Bin(rng.Float64() * 1000)
		if err != nil {
			panic(err)
		}
		rel.MustAppend([]int{region, product, channel, amountBin})
	}
	return rel
}
