package experiment

import (
	"testing"

	"repro/internal/solver"
	"repro/internal/summary"
)

// TestRunStreamingDriftScenario runs a small streaming scenario and
// verifies its structural claims: the refreshed summary tracks the
// drifting data where the stale one falls behind, and every step's
// numbers are well-formed.
func TestRunStreamingDriftScenario(t *testing.T) {
	rep, err := RunStreaming(StreamingOptions{
		BaseRows:  4000,
		Batches:   5,
		BatchRows: 800,
		Queries:   32,
		Seed:      1,
		Summary:   summary.Options{Solver: solver.Options{MaxSweeps: 300}},
		Refresh:   summary.RefreshOptions{Solver: solver.Options{MaxSweeps: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 5 {
		t.Fatalf("%d steps, want 5", len(rep.Steps))
	}
	for i, s := range rep.Steps {
		if s.Batch != i+1 {
			t.Fatalf("step %d has batch %d", i, s.Batch)
		}
		if want := 4000 + (i+1)*800; s.TotalRows != want {
			t.Fatalf("step %d: total rows %d, want %d", i, s.TotalRows, want)
		}
		if s.RefreshSweeps <= 0 {
			t.Fatalf("step %d: refresh sweeps %d", i, s.RefreshSweeps)
		}
		if s.StaleMeanError < 0 || s.RefreshedMeanError < 0 {
			t.Fatalf("step %d: negative errors %+v", i, s)
		}
	}

	// By the last batch, 4000 of the 8000 rows came from the drifted
	// distribution the stale summary has never seen: the refreshed summary
	// must be meaningfully more accurate.
	last := rep.Steps[len(rep.Steps)-1]
	if last.RefreshedMeanError >= last.StaleMeanError {
		t.Fatalf("after drift, refreshed error %.4f is not below stale error %.4f",
			last.RefreshedMeanError, last.StaleMeanError)
	}
}
