package experiment_test

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/experiment"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/summary"
)

// TestDriveHTTPIngestMix drives a mixed read/ingest workload against a
// live dataset: queries keep succeeding, ingests land, and the refresh
// threshold produces at least one hot swap.
func TestDriveHTTPIngestMix(t *testing.T) {
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(2000, rand.New(rand.NewSource(3))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset:     server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}}},
		RefreshRows: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{})
	srv.AttachLive(live)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sch := mut.Schema()
	rng := rand.New(rand.NewSource(5))
	pool := make([][]int, 120)
	for i := range pool {
		row := make([]int, sch.NumAttrs())
		for a := range row {
			row[a] = rng.Intn(sch.Attr(a).Size())
		}
		pool[i] = row
	}

	workload := experiment.GenerateWorkload(sch, 40, rand.New(rand.NewSource(4)))
	res, err := experiment.DriveHTTP(ts.URL, "demo/exact", workload, experiment.LoadOptions{
		Concurrency: 4,
		Repeat:      4,
		Ingest: &experiment.IngestMix{
			Dataset: "demo",
			Every:   8,
			Batch:   20,
			Rows:    pool,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 || res.IngestErrors > 0 {
		t.Fatalf("errors=%d ingest_errors=%d, first: %s", res.Errors, res.IngestErrors, res.FirstError)
	}
	// 160 slots, every 8th is an ingest → 20 ingests × 20 rows.
	if res.IngestRequests != 20 || res.IngestedRows != 400 {
		t.Fatalf("ingests=%d rows=%d, want 20/400", res.IngestRequests, res.IngestedRows)
	}
	if res.Refreshes == 0 {
		t.Fatal("no ingest crossed the 50-row refresh threshold")
	}
	if res.IngestMeanNS <= 0 {
		t.Fatalf("ingest mean latency %d", res.IngestMeanNS)
	}
	if got := mut.NumRows(); got != 2400 {
		t.Fatalf("relation grew to %d rows, want 2400", got)
	}

	// The ingest mix requires a pool.
	if _, err := experiment.DriveHTTP(ts.URL, "demo/exact", workload, experiment.LoadOptions{
		Ingest: &experiment.IngestMix{Dataset: "demo", Every: 2},
	}); err == nil {
		t.Fatal("DriveHTTP accepted an ingest mix without rows")
	}
}
