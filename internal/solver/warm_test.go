package solver

import (
	"math/rand"
	"testing"

	"repro/internal/polynomial"
	"repro/internal/query"
)

// deltaInstance builds a solver instance whose constraint targets come
// from counting actual random tuples (so the targets are exactly
// feasible), plus an appended-delta variant of the same instance: base
// counts + the counts of extra tuples drawn from the same distribution.
// The (attribute 0, attribute 1) pair is strongly correlated, which is
// what makes the cold solve work for its convergence — the regime where
// warm-starting pays.
func deltaInstance(rng *rand.Rand, baseTuples, deltaTuples int) (mk func() *polynomial.System, base, grown []Constraint, nBase, nGrown float64) {
	sizes := []int{32, 16, 8}
	specs := []polynomial.MultiStatSpec{}
	for v1 := 0; v1 < 16; v1++ {
		specs = append(specs, polynomial.MultiStatSpec{
			Attrs:  []int{0, 1},
			Ranges: []query.Range{query.Point(v1 * 2), query.Point(v1)},
		})
	}
	comp, err := polynomial.NewCompressed(sizes, specs)
	if err != nil {
		panic(err)
	}

	oneD := make([][]float64, len(sizes))
	for a, sz := range sizes {
		oneD[a] = make([]float64, sz)
	}
	multi := make([]float64, len(specs))
	draw := func(tuples int) {
		for i := 0; i < tuples; i++ {
			t0 := rng.Intn(sizes[0])
			t1 := rng.Intn(sizes[1])
			// Strong correlation: attribute 1 tracks attribute 0 four times
			// out of five.
			if rng.Float64() < 0.8 {
				t1 = t0 / 2
			}
			t2 := rng.Intn(sizes[2])
			oneD[0][t0]++
			oneD[1][t1]++
			oneD[2][t2]++
			for j, spec := range specs {
				if spec.Ranges[0].Contains(t0) && spec.Ranges[1].Contains(t1) {
					multi[j]++
				}
			}
		}
	}
	snapshot := func() []Constraint {
		var cs []Constraint
		for a := range oneD {
			for v, c := range oneD[a] {
				cs = append(cs, OneDConstraint(a, v, c))
			}
		}
		for j, c := range multi {
			cs = append(cs, MultiConstraint(j, c))
		}
		return cs
	}

	draw(baseTuples)
	base = snapshot()
	draw(deltaTuples)
	grown = snapshot()
	mk = func() *polynomial.System { return polynomial.NewSystem(comp) }
	return mk, base, grown, float64(baseTuples), float64(baseTuples + deltaTuples)
}

// TestSolveWarmStartConvergesFaster solves an instance cold, then solves
// the slightly-grown instance (1% appended tuples) once cold and once
// warm-started from the previous solution. The warm solve must converge,
// reach the same optimum, and need strictly fewer sweeps.
func TestSolveWarmStartConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk, base, grown, nBase, nGrown := deltaInstance(rng, 20000, 200)
	opts := Options{MaxSweeps: 500, Tolerance: 1e-7}

	prev := mk()
	optsBase := opts
	optsBase.N = nBase
	repPrev, err := Solve(prev, base, optsBase)
	if err != nil {
		t.Fatal(err)
	}
	if !repPrev.Converged {
		t.Fatalf("base solve did not converge: %v", repPrev)
	}

	optsGrown := opts
	optsGrown.N = nGrown
	cold := mk()
	repCold, err := Solve(cold, grown, optsGrown)
	if err != nil {
		t.Fatal(err)
	}
	if !repCold.Converged {
		t.Fatalf("cold solve did not converge: %v", repCold)
	}

	optsWarm := optsGrown
	optsWarm.Init = prev
	warm := mk()
	repWarm, err := Solve(warm, grown, optsWarm)
	if err != nil {
		t.Fatal(err)
	}
	if !repWarm.Converged {
		t.Fatalf("warm solve did not converge: %v", repWarm)
	}
	if repWarm.Sweeps >= repCold.Sweeps {
		t.Fatalf("warm start took %d sweeps, cold %d — warm must be strictly cheaper on a 1%% delta",
			repWarm.Sweeps, repCold.Sweeps)
	}

	// Same constraints, same (unique) MaxEnt optimum: the two solutions
	// must agree on every expected count within the tolerance.
	pw, pc := warm.Eval(nil), cold.Eval(nil)
	for _, c := range grown {
		ew := nGrown * warm.Get(c.Var) * warm.Deriv(c.Var, nil) / pw
		ec := nGrown * cold.Get(c.Var) * cold.Deriv(c.Var, nil) / pc
		if diff := ew - ec; diff > 3e-7*nGrown || diff < -3e-7*nGrown {
			t.Errorf("constraint %v: warm expectation %g vs cold %g", c.Var, ew, ec)
		}
	}
}

// TestSolveWarmStartShapeMismatch verifies that a warm start from a
// differently-shaped system is rejected instead of silently mis-seeding.
func TestSolveWarmStartShapeMismatch(t *testing.T) {
	comp1, err := polynomial.NewCompressed([]int{2, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := polynomial.NewCompressed([]int{2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := polynomial.NewSystem(comp1)
	init := polynomial.NewSystem(comp2)
	_, err = Solve(sys, []Constraint{OneDConstraint(0, 0, 1)}, Options{N: 2, Init: init})
	if err == nil {
		t.Fatal("Solve accepted a warm start with a mismatched shape")
	}
}
