package solver

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/polynomial"
	"repro/internal/query"
)

// benchInstance builds a realistically shaped solve: 6 attributes with
// domain sizes up to 64 and 16 pairwise 2D statistics over three attribute
// pairs (the shape a B_a=3, B_s=16 summary produces), with synthetic but
// consistent targets drawn from a random product distribution.
func benchInstance(b *testing.B) (*polynomial.System, []Constraint, Options) {
	b.Helper()
	sizes := []int{64, 32, 16, 8, 8, 4}
	rng := rand.New(rand.NewSource(97))
	var specs []polynomial.MultiStatSpec
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {0, 4}} {
		for k := 0; k < 16; k++ {
			a1, a2 := pair[0], pair[1]
			v1 := (k * 3) % sizes[a1]
			v2 := k % sizes[a2]
			specs = append(specs, polynomial.MultiStatSpec{
				Attrs:  []int{a1, a2},
				Ranges: []query.Range{query.Point(v1), query.Point(v2)},
			})
		}
	}
	comp, err := polynomial.NewCompressed(sizes, specs)
	if err != nil {
		b.Fatal(err)
	}

	// Draw per-attribute marginals from a Dirichlet-ish distribution and
	// derive consistent 1D targets; multi targets follow independence with
	// a mild boost so the deltas have work to do.
	const n = 100000.0
	marg := make([][]float64, len(sizes))
	var constraints []Constraint
	for a, sz := range sizes {
		weights := make([]float64, sz)
		sum := 0.0
		for v := range weights {
			weights[v] = 0.05 + rng.Float64()
			sum += weights[v]
		}
		marg[a] = make([]float64, sz)
		for v := range weights {
			marg[a][v] = weights[v] / sum
			constraints = append(constraints, OneDConstraint(a, v, n*marg[a][v]))
		}
	}
	for j, spec := range specs {
		p := 1.0
		for k, a := range spec.Attrs {
			r := spec.Ranges[k]
			pp := 0.0
			for v := r.Lo; v <= r.Hi; v++ {
				pp += marg[a][v]
			}
			p *= pp
		}
		target := n * p * (1 + 0.5*rng.Float64())
		constraints = append(constraints, MultiConstraint(j, target))
	}
	sys := polynomial.NewSystem(comp)
	return sys, constraints, Options{N: n, MaxSweeps: 20, Tolerance: 1e-9}
}

// BenchmarkSolve measures a full (sweep-budget-bounded) MaxEnt solve on the
// summary-shaped instance — the end-to-end cost a summary build pays.
func BenchmarkSolve(b *testing.B) {
	sys, constraints, opts := benchInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := sys.Clone()
		b.StartTimer()
		if _, err := Solve(fresh, constraints, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// sizedInstance is benchInstance with a configurable pair budget: the
// first numPairs attribute pairs (lexicographic over 6 attributes) each
// carry 16 2D statistics, so B_a scales while everything else stays fixed.
func sizedInstance(b *testing.B, numPairs int) (*polynomial.System, []Constraint, Options) {
	b.Helper()
	sizes := []int{64, 32, 16, 8, 8, 4}
	rng := rand.New(rand.NewSource(97))
	var pairs [][2]int
	for a1 := 0; a1 < len(sizes) && len(pairs) < numPairs; a1++ {
		for a2 := a1 + 1; a2 < len(sizes) && len(pairs) < numPairs; a2++ {
			pairs = append(pairs, [2]int{a1, a2})
		}
	}
	if len(pairs) < numPairs {
		b.Fatalf("only %d pairs available, want %d", len(pairs), numPairs)
	}
	var specs []polynomial.MultiStatSpec
	for _, pair := range pairs {
		for k := 0; k < 16; k++ {
			a1, a2 := pair[0], pair[1]
			specs = append(specs, polynomial.MultiStatSpec{
				Attrs:  []int{a1, a2},
				Ranges: []query.Range{query.Point((k * 3) % sizes[a1]), query.Point(k % sizes[a2])},
			})
		}
	}
	comp, err := polynomial.NewCompressed(sizes, specs)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000.0
	marg := make([][]float64, len(sizes))
	var constraints []Constraint
	for a, sz := range sizes {
		weights := make([]float64, sz)
		sum := 0.0
		for v := range weights {
			weights[v] = 0.05 + rng.Float64()
			sum += weights[v]
		}
		marg[a] = make([]float64, sz)
		for v := range weights {
			marg[a][v] = weights[v] / sum
			constraints = append(constraints, OneDConstraint(a, v, n*marg[a][v]))
		}
	}
	for j, spec := range specs {
		p := 1.0
		for k, a := range spec.Attrs {
			r := spec.Ranges[k]
			pp := 0.0
			for v := r.Lo; v <= r.Hi; v++ {
				pp += marg[a][v]
			}
			p *= pp
		}
		constraints = append(constraints, MultiConstraint(j, n*p*(1+0.5*rng.Float64())))
	}
	return polynomial.NewSystem(comp), constraints, Options{N: n, MaxSweeps: 20, Tolerance: 1e-9}
}

// BenchmarkSolveWorkersCrossover measures the derivative worker pool
// against the sequential path at a small (B_a=2) and a large (B_a=8) pair
// budget. It documents the crossover behind summary's auto-enable rule:
// below ~8 statistic-bearing pairs the pool's fan-out/join overhead beats
// its parallelism, above it the pool wins.
func BenchmarkSolveWorkersCrossover(b *testing.B) {
	poolWorkers := runtime.GOMAXPROCS(0)
	if poolWorkers < 2 {
		// On a single-core host the pool cannot win, but running it at 4
		// still measures its fan-out/join overhead against the sequential
		// path.
		poolWorkers = 4
	}
	for _, ba := range []int{2, 8} {
		sys, constraints, opts := sizedInstance(b, ba)
		for _, workers := range []int{1, poolWorkers} {
			o := opts
			o.Workers = workers
			b.Run(fmt.Sprintf("Ba=%d/workers=%d", ba, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					fresh := sys.Clone()
					b.StartTimer()
					if _, err := Solve(fresh, constraints, o); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// warmBenchSetup solves a tuple-count-derived base instance to convergence
// and returns everything needed to re-solve the appended variant (a
// 10-row delta on 100k rows) either cold or warm-started from the base
// solution — the refresh hot path.
func warmBenchSetup(b *testing.B) (mk func() *polynomial.System, grown []Constraint, nGrown float64, prev *polynomial.System) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	mk, base, grown, nBase, nGrown := deltaInstance(rng, 100000, 10)
	prev = mk()
	rep, err := Solve(prev, base, Options{N: nBase, MaxSweeps: 500, Tolerance: 1e-6})
	if err != nil {
		b.Fatal(err)
	}
	if !rep.Converged {
		b.Fatalf("base solve did not converge: %v", rep)
	}
	return mk, grown, nGrown, prev
}

// BenchmarkSolveColdSmallDelta re-solves the appended instance from the
// all-ones cold start — what a refresh would cost without warm-starting.
func BenchmarkSolveColdSmallDelta(b *testing.B) {
	mk, grown, nGrown, _ := warmBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(mk(), grown, Options{N: nGrown, MaxSweeps: 500, Tolerance: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("cold solve did not converge: %v", rep)
		}
	}
}

// BenchmarkSolveWarmSmallDelta re-solves the appended instance warm-started
// from the previous solution — the summary Refresh hot path the CI bench
// gate guards.
func BenchmarkSolveWarmSmallDelta(b *testing.B) {
	mk, grown, nGrown, prev := warmBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Solve(mk(), grown, Options{N: nGrown, MaxSweeps: 500, Tolerance: 1e-6, Init: prev})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Converged {
			b.Fatalf("warm solve did not converge: %v", rep)
		}
	}
}
