package solver

import (
	"math"
	"testing"

	"repro/internal/polynomial"
	"repro/internal/query"
)

// tinyRelation is the hand-checked instance used throughout this file: a
// relation over R(A:2, B:2) with 10 tuples distributed
//
//	(0,0): 4   (0,1): 2   (1,0): 1   (1,1): 3
//
// so the 1D statistics are A=0:6, A=1:4, B=0:5, B=1:5, and the single 2D
// statistic (A=0 ∧ B=0) has count 4 — more than the 3 the independence
// model would predict (6·5/10), so the solve must move δ above 1.
func tinyInstance(t *testing.T) (*polynomial.System, []Constraint) {
	t.Helper()
	specs := []polynomial.MultiStatSpec{{
		Attrs:  []int{0, 1},
		Ranges: []query.Range{query.Point(0), query.Point(0)},
	}}
	comp, err := polynomial.NewCompressed([]int{2, 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sys := polynomial.NewSystem(comp)
	constraints := []Constraint{
		OneDConstraint(0, 0, 6),
		OneDConstraint(0, 1, 4),
		OneDConstraint(1, 0, 5),
		OneDConstraint(1, 1, 5),
		MultiConstraint(0, 4),
	}
	return sys, constraints
}

// TestSolveTinyRelationConverges solves the hand-checked instance and
// verifies that every expected count matches its observed statistic.
func TestSolveTinyRelationConverges(t *testing.T) {
	sys, constraints := tinyInstance(t)
	const n = 10
	rep, err := Solve(sys, constraints, Options{N: n, MaxSweeps: 500, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solver did not converge: %v", rep)
	}
	p := sys.Eval(nil)
	if p <= 0 {
		t.Fatalf("P = %g, want > 0", p)
	}
	for _, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		if math.Abs(e-c.Target) > 1e-6*n {
			t.Errorf("constraint %v: expected count %g, want %g", c.Var, e, c.Target)
		}
	}
	// The chosen 2D statistic is over-represented relative to
	// independence, so its δ must exceed 1.
	if d := sys.MultiVar(0); d <= 1 {
		t.Errorf("δ = %g, want > 1 for an over-represented statistic", d)
	}
	// The solved model must reproduce the masked counts of the
	// statistics via Eq. (16) as well: n·P_π/P.
	pred := query.NewPredicate(2).WhereEq(0, 0).WhereEq(1, 0)
	if got := n * sys.Eval(pred) / p; math.Abs(got-4) > 1e-5 {
		t.Errorf("masked count for (A=0,B=0) = %g, want 4", got)
	}
}

// TestSolveMonotoneDual verifies the coordinate updates never decrease
// the concave dual objective Ψ.
func TestSolveMonotoneDual(t *testing.T) {
	sys, constraints := tinyInstance(t)
	last := math.Inf(-1)
	_, err := Solve(sys, constraints, Options{
		N:         10,
		MaxSweeps: 50,
		Tolerance: 1e-12,
		Progress: func(sweep int, _ float64) {
			d := Dual(sys, constraints, 10)
			if d < last-1e-9 {
				t.Errorf("sweep %d: dual decreased from %g to %g", sweep, last, d)
			}
			last = d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSolveZeroTargetPinsVariable verifies the ZERO-cell shortcut: a
// zero-count statistic pins its variable at 0 and the model assigns the
// cell no mass.
func TestSolveZeroTargetPinsVariable(t *testing.T) {
	specs := []polynomial.MultiStatSpec{{
		Attrs:  []int{0, 1},
		Ranges: []query.Range{query.Point(1), query.Point(1)},
	}}
	comp, err := polynomial.NewCompressed([]int{2, 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sys := polynomial.NewSystem(comp)
	constraints := []Constraint{
		OneDConstraint(0, 0, 6),
		OneDConstraint(0, 1, 4),
		OneDConstraint(1, 0, 6),
		OneDConstraint(1, 1, 4),
		MultiConstraint(0, 0),
	}
	rep, err := Solve(sys, constraints, Options{N: 10, MaxSweeps: 500, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solver did not converge: %v", rep)
	}
	if d := sys.MultiVar(0); d != 0 {
		t.Fatalf("zero-target δ = %g, want exactly 0", d)
	}
	pred := query.NewPredicate(2).WhereEq(0, 1).WhereEq(1, 1)
	if got := 10 * sys.Eval(pred) / sys.Eval(nil); got != 0 {
		t.Fatalf("masked count over zero cell = %g, want 0", got)
	}
}

// TestSolveRejectsBadTargets pins the input validation.
func TestSolveRejectsBadTargets(t *testing.T) {
	sys, _ := tinyInstance(t)
	if _, err := Solve(sys, []Constraint{OneDConstraint(0, 0, -1)}, Options{N: 10}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := Solve(sys, []Constraint{OneDConstraint(0, 0, 11)}, Options{N: 10}); err == nil {
		t.Error("target above N accepted")
	}
	if _, err := Solve(sys, nil, Options{N: 0}); err == nil {
		t.Error("non-positive N accepted")
	}
}
