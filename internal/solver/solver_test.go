package solver

import (
	"math"
	"testing"

	"repro/internal/polynomial"
	"repro/internal/query"
)

// tinyRelation is the hand-checked instance used throughout this file: a
// relation over R(A:2, B:2) with 10 tuples distributed
//
//	(0,0): 4   (0,1): 2   (1,0): 1   (1,1): 3
//
// so the 1D statistics are A=0:6, A=1:4, B=0:5, B=1:5, and the single 2D
// statistic (A=0 ∧ B=0) has count 4 — more than the 3 the independence
// model would predict (6·5/10), so the solve must move δ above 1.
func tinyInstance(t *testing.T) (*polynomial.System, []Constraint) {
	t.Helper()
	specs := []polynomial.MultiStatSpec{{
		Attrs:  []int{0, 1},
		Ranges: []query.Range{query.Point(0), query.Point(0)},
	}}
	comp, err := polynomial.NewCompressed([]int{2, 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sys := polynomial.NewSystem(comp)
	constraints := []Constraint{
		OneDConstraint(0, 0, 6),
		OneDConstraint(0, 1, 4),
		OneDConstraint(1, 0, 5),
		OneDConstraint(1, 1, 5),
		MultiConstraint(0, 4),
	}
	return sys, constraints
}

// TestSolveTinyRelationConverges solves the hand-checked instance and
// verifies that every expected count matches its observed statistic.
func TestSolveTinyRelationConverges(t *testing.T) {
	sys, constraints := tinyInstance(t)
	const n = 10
	rep, err := Solve(sys, constraints, Options{N: n, MaxSweeps: 500, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solver did not converge: %v", rep)
	}
	p := sys.Eval(nil)
	if p <= 0 {
		t.Fatalf("P = %g, want > 0", p)
	}
	for _, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		if math.Abs(e-c.Target) > 1e-6*n {
			t.Errorf("constraint %v: expected count %g, want %g", c.Var, e, c.Target)
		}
	}
	// The chosen 2D statistic is over-represented relative to
	// independence, so its δ must exceed 1.
	if d := sys.MultiVar(0); d <= 1 {
		t.Errorf("δ = %g, want > 1 for an over-represented statistic", d)
	}
	// The solved model must reproduce the masked counts of the
	// statistics via Eq. (16) as well: n·P_π/P.
	pred := query.NewPredicate(2).WhereEq(0, 0).WhereEq(1, 0)
	if got := n * sys.Eval(pred) / p; math.Abs(got-4) > 1e-5 {
		t.Errorf("masked count for (A=0,B=0) = %g, want 4", got)
	}
}

// TestSolveMonotoneDual verifies the coordinate updates never decrease
// the concave dual objective Ψ.
func TestSolveMonotoneDual(t *testing.T) {
	sys, constraints := tinyInstance(t)
	last := math.Inf(-1)
	_, err := Solve(sys, constraints, Options{
		N:         10,
		MaxSweeps: 50,
		Tolerance: 1e-12,
		Progress: func(sweep int, _ float64) {
			d := Dual(sys, constraints, 10)
			if d < last-1e-9 {
				t.Errorf("sweep %d: dual decreased from %g to %g", sweep, last, d)
			}
			last = d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSolveZeroTargetPinsVariable verifies the ZERO-cell shortcut: a
// zero-count statistic pins its variable at 0 and the model assigns the
// cell no mass.
func TestSolveZeroTargetPinsVariable(t *testing.T) {
	specs := []polynomial.MultiStatSpec{{
		Attrs:  []int{0, 1},
		Ranges: []query.Range{query.Point(1), query.Point(1)},
	}}
	comp, err := polynomial.NewCompressed([]int{2, 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	sys := polynomial.NewSystem(comp)
	constraints := []Constraint{
		OneDConstraint(0, 0, 6),
		OneDConstraint(0, 1, 4),
		OneDConstraint(1, 0, 6),
		OneDConstraint(1, 1, 4),
		MultiConstraint(0, 0),
	}
	rep, err := Solve(sys, constraints, Options{N: 10, MaxSweeps: 500, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solver did not converge: %v", rep)
	}
	if d := sys.MultiVar(0); d != 0 {
		t.Fatalf("zero-target δ = %g, want exactly 0", d)
	}
	pred := query.NewPredicate(2).WhereEq(0, 1).WhereEq(1, 1)
	if got := 10 * sys.Eval(pred) / sys.Eval(nil); got != 0 {
		t.Fatalf("masked count over zero cell = %g, want 0", got)
	}
}

// TestSolveRejectsBadTargets pins the input validation.
func TestSolveRejectsBadTargets(t *testing.T) {
	sys, _ := tinyInstance(t)
	if _, err := Solve(sys, []Constraint{OneDConstraint(0, 0, -1)}, Options{N: 10}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := Solve(sys, []Constraint{OneDConstraint(0, 0, 11)}, Options{N: 10}); err == nil {
		t.Error("target above N accepted")
	}
	if _, err := Solve(sys, nil, Options{N: 0}); err == nil {
		t.Error("non-positive N accepted")
	}
	sys2, cs := tinyInstance(t)
	if _, err := Solve(sys2, cs, Options{N: 10, Relaxation: 2.5}); err == nil {
		t.Error("relaxation outside (0,2) accepted")
	}
	sys3, cs3 := tinyInstance(t)
	if _, err := Solve(sys3, cs3, Options{N: 10, Relaxation: -1}); err == nil {
		t.Error("negative relaxation accepted")
	}
	sys4, cs4 := tinyInstance(t)
	if _, err := Solve(sys4, cs4, Options{N: 10, Relaxation: math.NaN()}); err == nil {
		t.Error("NaN relaxation accepted")
	}
}

// TestSolveOverRelaxationConvergesFaster verifies that the geometric
// over-relaxation option accelerates the sublinear tail of coordinate
// descent: on the hand-checked relation, ω = 1.2 must converge to the same
// solution in strictly fewer sweeps than the plain ω = 1 update.
func TestSolveOverRelaxationConvergesFaster(t *testing.T) {
	const n, tol = 10, 1e-9
	plainSys, constraints := tinyInstance(t)
	plain, err := Solve(plainSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	relaxedSys, _ := tinyInstance(t)
	relaxed, err := Solve(relaxedSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol, Relaxation: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !relaxed.Converged {
		t.Fatalf("not converged: plain %v, relaxed %v", plain, relaxed)
	}
	if relaxed.Sweeps >= plain.Sweeps {
		t.Errorf("over-relaxation took %d sweeps, plain descent %d; want fewer", relaxed.Sweeps, plain.Sweeps)
	}
	// Both runs must land on the same MaxEnt distribution. The α values
	// themselves are not unique (the overcomplete 1D families leave a
	// per-attribute scale degeneracy), so compare tuple probabilities.
	pPlain, pRelaxed := plainSys.Eval(nil), relaxedSys.Eval(nil)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			tuple := []int{a, b}
			x := plainSys.TupleWeight(tuple) / pPlain
			y := relaxedSys.TupleWeight(tuple) / pRelaxed
			if math.Abs(x-y) > 1e-6 {
				t.Errorf("tuple %v: plain probability %g, relaxed %g", tuple, x, y)
			}
		}
	}
}

// TestSolveAdaptiveRelaxationConverges verifies the auto mode on the
// hand-checked relation: it must converge in fewer sweeps than the plain
// ω = 1 update (holding near the 1.2 ceiling while the violation trend is
// monotone), land on the same MaxEnt distribution, and never do worse
// than the fixed-ω schedule by more than the decay transient.
func TestSolveAdaptiveRelaxationConverges(t *testing.T) {
	const n, tol = 10, 1e-9
	plainSys, constraints := tinyInstance(t)
	plain, err := Solve(plainSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	adaptSys, _ := tinyInstance(t)
	adapt, err := Solve(adaptSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol, AdaptiveRelaxation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !adapt.Converged {
		t.Fatalf("not converged: plain %v, adaptive %v", plain, adapt)
	}
	if adapt.Sweeps >= plain.Sweeps {
		t.Errorf("adaptive relaxation took %d sweeps, plain descent %d; want fewer", adapt.Sweeps, plain.Sweeps)
	}
	// Same MaxEnt distribution as the plain solve (tuple probabilities;
	// the α values themselves carry a per-attribute scale degeneracy).
	pPlain, pAdapt := plainSys.Eval(nil), adaptSys.Eval(nil)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			tuple := []int{a, b}
			x := plainSys.TupleWeight(tuple) / pPlain
			y := adaptSys.TupleWeight(tuple) / pAdapt
			if math.Abs(x-y) > 1e-6 {
				t.Errorf("tuple %v: plain probability %g, adaptive %g", tuple, x, y)
			}
		}
	}
}

// TestSolveAdaptiveRelaxationDecaysOnOscillation verifies the scheduler's
// raison d'être: an over-aggressive ceiling that makes the fixed schedule
// oscillate is tamed by the decay-on-oscillation rule, so the adaptive
// solve converges no slower (and typically faster) than the same ceiling
// held fixed.
func TestSolveAdaptiveRelaxationDecaysOnOscillation(t *testing.T) {
	const n, tol = 10, 1e-9
	fixedSys, constraints := tinyInstance(t)
	fixed, err := Solve(fixedSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol, Relaxation: 1.9})
	if err != nil {
		t.Fatal(err)
	}
	adaptSys, _ := tinyInstance(t)
	adapt, err := Solve(adaptSys, constraints, Options{N: n, MaxSweeps: 5000, Tolerance: tol, Relaxation: 1.9, AdaptiveRelaxation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !adapt.Converged {
		t.Fatalf("adaptive solve with aggressive ceiling did not converge: %v", adapt)
	}
	if fixed.Converged && adapt.Sweeps > fixed.Sweeps {
		t.Errorf("adaptive ω (ceiling 1.9) took %d sweeps, fixed ω = 1.9 took %d; want no slower", adapt.Sweeps, fixed.Sweeps)
	}
}

// TestSolveParallelMatchesSequential verifies the worker-pool sweep is an
// exact reorganization of the sequential sweep: because the derivatives of
// one attribute's variables are mutually independent, batching them
// concurrently must yield the same trajectory and final solution.
func TestSolveParallelMatchesSequential(t *testing.T) {
	seqSys, constraints := tinyInstance(t)
	seq, err := Solve(seqSys, constraints, Options{N: 10, MaxSweeps: 500, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	parSys, _ := tinyInstance(t)
	par, err := Solve(parSys, constraints, Options{N: 10, MaxSweeps: 500, Tolerance: 1e-9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Converged || !par.Converged {
		t.Fatalf("not converged: sequential %v, parallel %v", seq, par)
	}
	if seq.Sweeps != par.Sweeps {
		t.Errorf("sequential took %d sweeps, parallel %d; want identical trajectories", seq.Sweeps, par.Sweeps)
	}
	for _, ref := range seqSys.Variables() {
		if a, b := seqSys.Get(ref), parSys.Get(ref); a != b {
			t.Errorf("variable %v: sequential %g, parallel %g (must be bit-equal)", ref, a, b)
		}
	}
}

// TestSolveMatchesLegacyViolation is the cross-PR acceptance check: the
// incremental solver must satisfy the constraints of the hand-checked
// relation to within 1e-9 relative violation, matching the full
// re-evaluation solver it replaced.
func TestSolveMatchesLegacyViolation(t *testing.T) {
	sys, constraints := tinyInstance(t)
	rep, err := Solve(sys, constraints, Options{N: 10, MaxSweeps: 5000, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("solver did not converge: %v", rep)
	}
	// Recheck the violations on a rebuilt (drift-free) clone of the solved
	// system, so the assertion is on the true polynomial values.
	fresh := sys.Clone()
	for i, v := range Violations(fresh, constraints, 10) {
		if v > 1e-9 {
			t.Errorf("constraint %v: violation %g > 1e-9", constraints[i].Var, v)
		}
	}
}
