// Package solver computes the MaxEnt model parameters: the values of the
// polynomial variables α_j such that the expected value of every statistic
// under the model matches its observed count (Sec. 3.3 of the paper).
//
// Maximizing the concave dual Ψ = Σ_j s_j ln α_j − n ln P is done with the
// coordinate-wise mirror-descent scheme of Algorithm 1: each step picks one
// statistic j and solves ∂Ψ/∂α_j = 0 in closed form while holding every
// other variable fixed,
//
//	α_j ← s_j · (P − α_j·P_{α_j}) / ((n − s_j) · P_{α_j}).
//
// Statistics with s_j = 0 are pinned at α_j = 0, the shortcut the paper
// notes for ZERO-cell statistics.
//
// The sweep is organized in per-attribute blocks. Because P is multilinear
// and the variables of one attribute never co-occur in a factor, the
// partial derivative ∂P/∂α_{a,v} contains no α_{a,·} at all: within a
// block, every derivative can be computed up front from the same state —
// optionally in parallel on a worker pool — and the closed-form updates
// then applied sequentially with exactly the Gauss–Seidel semantics of the
// one-at-a-time sweep. The polynomial's incremental API makes each applied
// update O(terms touching the variable): the cached P is maintained by
// SetVar and never re-evaluated inside the loop, and once per sweep the
// caches are resynchronized with a full evaluation so floating-point drift
// cannot accumulate.
package solver

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/polynomial"
)

// Constraint is one expected-value constraint E[⟨c_j, I⟩] = Target attached
// to the polynomial variable Var.
type Constraint struct {
	Var    polynomial.VarRef
	Target float64
}

// OneDConstraint builds the constraint pinning the expected count of the
// 1-dimensional statistic (A_attr = value) to target.
func OneDConstraint(attr, value int, target float64) Constraint {
	return Constraint{
		Var:    polynomial.VarRef{Kind: polynomial.OneD, Attr: attr, Value: value},
		Target: target,
	}
}

// MultiConstraint builds the constraint pinning the expected count of the
// stat-th multi-dimensional statistic to target.
func MultiConstraint(stat int, target float64) Constraint {
	return Constraint{
		Var:    polynomial.VarRef{Kind: polynomial.Multi, Stat: stat},
		Target: target,
	}
}

// Options configure the solver.
type Options struct {
	// N is the relation cardinality (required, > 0).
	N float64
	// MaxSweeps bounds the number of full passes over the constraints
	// (default 30, the paper's iteration budget).
	MaxSweeps int
	// Tolerance is the convergence threshold on the maximum relative
	// constraint violation max_j |s_j − E[⟨c_j,I⟩]| / N (default 1e-6, the
	// paper's threshold).
	Tolerance float64
	// MinValue clamps variable updates away from zero for statistics with a
	// positive target, protecting against numerical underflow (default
	// 1e-12).
	MinValue float64
	// Relaxation is the over-relaxation exponent ω applied geometrically to
	// every coordinate update, α ← α·(α*/α)^ω where α* is the closed-form
	// solution. Zero means unset and selects the default 1, the plain
	// update of Algorithm 1. Values in (1, 2) extrapolate past the
	// coordinate optimum and accelerate the sublinear tail of coordinate
	// descent; non-zero values outside (0, 2) are rejected.
	Relaxation float64
	// AdaptiveRelaxation enables automatic over-relaxation scheduling: the
	// sweep starts at ω = Relaxation (default 1.2 when Relaxation is
	// unset), and after every sweep the violation trend drives ω — an
	// increase in the maximum violation (oscillation from extrapolating
	// past the coordinate optimum) decays ω halfway toward 1.0, the plain
	// monotone update, while a decreasing violation recovers ω halfway
	// back toward its ceiling. The schedule keeps the ~20% sweep savings
	// of a well-chosen fixed ω without requiring the caller to know
	// whether their instance tolerates it.
	AdaptiveRelaxation bool
	// Workers sets the worker-pool size for the per-attribute derivative
	// batches (default 1, fully sequential). Because the derivatives of one
	// attribute's variables are independent of each other, computing them
	// concurrently is exact — the solution is identical to the sequential
	// sweep.
	Workers int
	// Init, when non-nil, warm-starts the solve: the variable assignment of
	// this previously solved system is copied into sys before the first
	// sweep, replacing the all-ones cold start. When the constraint targets
	// moved only a little (a small ingestion delta), the previous optimum is
	// already near-feasible and the solve converges in a few sweeps. Init
	// must have the same shape as sys (domain sizes and statistic count);
	// it is read-only during the solve.
	Init *polynomial.System
	// Progress, when non-nil, is called after every sweep with the sweep
	// number and current maximum violation.
	Progress func(sweep int, maxViolation float64)
}

func (o *Options) setDefaults() error {
	if o.N <= 0 {
		return errors.New("solver: Options.N must be positive")
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 30
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.MinValue <= 0 {
		o.MinValue = 1e-12
	}
	if o.Relaxation == 0 {
		if o.AdaptiveRelaxation {
			o.Relaxation = 1.2
		} else {
			o.Relaxation = 1
		}
	}
	if !(o.Relaxation > 0 && o.Relaxation < 2) { // also rejects NaN
		return fmt.Errorf("solver: Options.Relaxation must lie in (0,2), got %g", o.Relaxation)
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return nil
}

// Report describes the outcome of a Solve call.
type Report struct {
	// Sweeps is the number of full passes performed.
	Sweeps int
	// MaxViolation is the final maximum relative constraint violation.
	MaxViolation float64
	// Converged reports whether MaxViolation fell below the tolerance.
	Converged bool
	// Duration is the wall-clock solving time.
	Duration time.Duration
	// Constraints is the number of constraints solved for.
	Constraints int
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("solver: %d constraints, %d sweeps, max violation %.3g, converged=%t, %s",
		r.Constraints, r.Sweeps, r.MaxViolation, r.Converged, r.Duration.Round(time.Millisecond))
}

// block is one unit of the sweep: the constraints of a single attribute
// (whose derivatives are mutually independent and may be batched), or a
// single multi-dimensional constraint (whose derivative depends on the
// other δ variables, so it is never batched with them).
type block struct {
	cs  []Constraint
	pds []float64 // derivative scratch, len(cs)
}

// planBlocks groups the active constraints into sweep blocks, preserving
// the first-occurrence order of attributes and the given order within each
// block. When 1D constraints of one attribute interleave with other
// constraints, grouping hoists them together, so the update order is the
// grouped order — a fixed, deterministic permutation of the caller's order,
// not the flat sweep itself.
func planBlocks(active []Constraint) []block {
	var blocks []block
	attrBlock := make(map[int]int)
	for _, c := range active {
		if c.Var.Kind == polynomial.OneD {
			bi, ok := attrBlock[c.Var.Attr]
			if !ok {
				bi = len(blocks)
				attrBlock[c.Var.Attr] = bi
				blocks = append(blocks, block{})
			}
			blocks[bi].cs = append(blocks[bi].cs, c)
			continue
		}
		blocks = append(blocks, block{cs: []Constraint{c}})
	}
	for i := range blocks {
		blocks[i].pds = make([]float64, len(blocks[i].cs))
	}
	return blocks
}

// Solve runs coordinate mirror descent on the system until convergence or
// the sweep budget is exhausted. The system's variables are updated in
// place.
func Solve(sys *polynomial.System, constraints []Constraint, opts Options) (Report, error) {
	start := time.Now()
	if err := opts.setDefaults(); err != nil {
		return Report{}, err
	}
	if len(constraints) == 0 {
		return Report{Converged: true, Duration: time.Since(start)}, nil
	}
	for _, c := range constraints {
		if c.Target < 0 {
			return Report{}, fmt.Errorf("solver: constraint %v has negative target %g", c.Var, c.Target)
		}
		if c.Target > opts.N {
			return Report{}, fmt.Errorf("solver: constraint %v target %g exceeds relation size %g", c.Var, c.Target, opts.N)
		}
	}

	if opts.Init != nil {
		if err := sys.CopyVarsFrom(opts.Init); err != nil {
			return Report{}, fmt.Errorf("solver: warm start: %w", err)
		}
	}

	// Pin zero-target statistics once: their variables stay at 0 for the
	// whole run, and they are excluded from the sweep (their constraints
	// are satisfied by construction). Under a warm start this also resets
	// variables whose target dropped to 0 since the previous solve.
	active := make([]Constraint, 0, len(constraints))
	for _, c := range constraints {
		if c.Target == 0 {
			sys.Set(c.Var, 0)
			continue
		}
		active = append(active, c)
	}
	blocks := planBlocks(active)

	// One pool of goroutines serves every derivative batch of the run, so
	// per-sweep batching does not pay a goroutine spawn per block.
	var workers *workerPool
	if opts.Workers > 1 {
		workers = newWorkerPool(opts.Workers)
		defer workers.close()
	}

	rep := Report{Constraints: len(constraints)}
	// Adaptive over-relaxation state: ω starts at the configured ceiling
	// and is rescheduled after every sweep from the violation trend.
	sweepOpts := opts
	omegaMax := opts.Relaxation
	prevViolation := math.Inf(1)
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		rep.Sweeps = sweep
		for bi := range blocks {
			b := &blocks[bi]
			derivBatch(sys, b, workers)
			for i, c := range b.cs {
				applyUpdate(sys, c, b.pds[i], sweepOpts)
			}
		}
		// Resynchronize the incremental caches with a full evaluation
		// before judging convergence, so sweep-to-sweep drift is bounded
		// by one sweep's worth of incremental updates.
		sys.Recompute()
		rep.MaxViolation = maxViolation(sys, constraints, opts.N)
		if opts.Progress != nil {
			opts.Progress(sweep, rep.MaxViolation)
		}
		if rep.MaxViolation < opts.Tolerance {
			rep.Converged = true
			break
		}
		if opts.AdaptiveRelaxation {
			if rep.MaxViolation > prevViolation {
				// Oscillation: the extrapolation overshot; back ω off
				// halfway toward the plain monotone update.
				sweepOpts.Relaxation = 1 + (sweepOpts.Relaxation-1)*0.5
			} else {
				// Monotone progress: recover ω halfway toward the ceiling.
				sweepOpts.Relaxation += (omegaMax - sweepOpts.Relaxation) * 0.5
			}
			prevViolation = rep.MaxViolation
		}
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// workerPool is a fixed set of goroutines executing submitted closures,
// created once per Solve so per-sweep derivative batches reuse the same
// goroutines instead of spawning fresh ones per block.
type workerPool struct {
	jobs chan func()
	size int
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func()), size: n}
	for i := 0; i < n; i++ {
		go func() {
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

func (p *workerPool) close() { close(p.jobs) }

// derivBatch fills b.pds with the partial derivatives of the block's
// variables under the current assignment. Within a block the derivatives
// are independent of the block's own variables, so they remain exact for
// the whole sequential application pass, and computing them concurrently
// (read-only use of the system) is safe.
func derivBatch(sys *polynomial.System, b *block, pool *workerPool) {
	workers := 1
	if pool != nil {
		workers = pool.size
	}
	if workers > len(b.cs) {
		workers = len(b.cs)
	}
	if workers <= 1 {
		for i, c := range b.cs {
			b.pds[i] = sys.Deriv(c.Var, nil)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(b.cs) + workers - 1) / workers
	for lo := 0; lo < len(b.cs); lo += chunk {
		hi := lo + chunk
		if hi > len(b.cs) {
			hi = len(b.cs)
		}
		wg.Add(1)
		lo, hi := lo, hi
		pool.jobs <- func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				b.pds[i] = sys.Deriv(b.cs[i].Var, nil)
			}
		}
	}
	wg.Wait()
}

// applyUpdate applies the closed-form coordinate update of Algorithm 1 to a
// single constraint, given the precomputed derivative pd of its variable.
func applyUpdate(sys *polynomial.System, c Constraint, pd float64, opts Options) {
	p := sys.Total()
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return
	}
	if pd <= 0 {
		// The variable does not influence P under the current assignment
		// (for example, every complementary variable of its terms is 0);
		// there is nothing to solve for.
		return
	}
	cur := sys.Get(c.Var)
	rest := p - cur*pd // P with α_j removed; never contains α_j since P is linear.
	if rest < 0 {
		rest = 0
	}
	denom := (opts.N - c.Target) * pd
	if denom <= 0 {
		// Target equals the relation size: drive the variable as high as is
		// numerically sensible so the statistic captures (almost) all mass.
		sys.Set(c.Var, math.Max(cur, 1)*1e6)
		return
	}
	next := c.Target * rest / denom
	if next < opts.MinValue {
		next = opts.MinValue
	}
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return
	}
	if w := opts.Relaxation; w != 1 && cur > 0 {
		next = cur * math.Pow(next/cur, w)
		if next < opts.MinValue {
			next = opts.MinValue
		}
		if math.IsNaN(next) || math.IsInf(next, 0) {
			return
		}
	}
	sys.Set(c.Var, next)
}

// maxViolation computes max_j |s_j − E[⟨c_j,I⟩]| / N over all constraints
// with the current variable assignment.
func maxViolation(sys *polynomial.System, constraints []Constraint, n float64) float64 {
	p := sys.Total()
	if p <= 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		v := math.Abs(c.Target-e) / n
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Violations returns the per-constraint relative violations |s_j − E_j| / N
// under the current assignment, index-aligned with constraints. It is used
// by diagnostics and tests.
func Violations(sys *polynomial.System, constraints []Constraint, n float64) []float64 {
	p := sys.Total()
	out := make([]float64, len(constraints))
	if p <= 0 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		out[i] = math.Abs(c.Target-e) / n
	}
	return out
}

// Dual computes the dual objective Ψ = Σ_j s_j ln α_j − n ln P for the
// current assignment, skipping pinned zero-target statistics (whose
// contribution is 0·ln 0 = 0 in the limit). It is exposed for tests that
// verify the coordinate updates never decrease Ψ.
func Dual(sys *polynomial.System, constraints []Constraint, n float64) float64 {
	p := sys.Total()
	if p <= 0 {
		return math.Inf(-1)
	}
	total := -n * math.Log(p)
	for _, c := range constraints {
		if c.Target == 0 {
			continue
		}
		v := sys.Get(c.Var)
		if v <= 0 {
			return math.Inf(-1)
		}
		total += c.Target * math.Log(v)
	}
	return total
}
