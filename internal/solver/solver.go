// Package solver computes the MaxEnt model parameters: the values of the
// polynomial variables α_j such that the expected value of every statistic
// under the model matches its observed count (Sec. 3.3 of the paper).
//
// Maximizing the concave dual Ψ = Σ_j s_j ln α_j − n ln P is done with the
// coordinate-wise mirror-descent scheme of Algorithm 1: each step picks one
// statistic j and solves ∂Ψ/∂α_j = 0 in closed form while holding every
// other variable fixed,
//
//	α_j ← s_j · (P − α_j·P_{α_j}) / ((n − s_j) · P_{α_j}).
//
// Statistics with s_j = 0 are pinned at α_j = 0, the shortcut the paper
// notes for ZERO-cell statistics.
package solver

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/polynomial"
)

// Constraint is one expected-value constraint E[⟨c_j, I⟩] = Target attached
// to the polynomial variable Var.
type Constraint struct {
	Var    polynomial.VarRef
	Target float64
}

// OneDConstraint builds the constraint pinning the expected count of the
// 1-dimensional statistic (A_attr = value) to target.
func OneDConstraint(attr, value int, target float64) Constraint {
	return Constraint{
		Var:    polynomial.VarRef{Kind: polynomial.OneD, Attr: attr, Value: value},
		Target: target,
	}
}

// MultiConstraint builds the constraint pinning the expected count of the
// stat-th multi-dimensional statistic to target.
func MultiConstraint(stat int, target float64) Constraint {
	return Constraint{
		Var:    polynomial.VarRef{Kind: polynomial.Multi, Stat: stat},
		Target: target,
	}
}

// Options configure the solver.
type Options struct {
	// N is the relation cardinality (required, > 0).
	N float64
	// MaxSweeps bounds the number of full passes over the constraints
	// (default 30, the paper's iteration budget).
	MaxSweeps int
	// Tolerance is the convergence threshold on the maximum relative
	// constraint violation max_j |s_j − E[⟨c_j,I⟩]| / N (default 1e-6, the
	// paper's threshold).
	Tolerance float64
	// MinValue clamps variable updates away from zero for statistics with a
	// positive target, protecting against numerical underflow (default
	// 1e-12).
	MinValue float64
	// Progress, when non-nil, is called after every sweep with the sweep
	// number and current maximum violation.
	Progress func(sweep int, maxViolation float64)
}

func (o *Options) setDefaults() error {
	if o.N <= 0 {
		return errors.New("solver: Options.N must be positive")
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 30
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.MinValue <= 0 {
		o.MinValue = 1e-12
	}
	return nil
}

// Report describes the outcome of a Solve call.
type Report struct {
	// Sweeps is the number of full passes performed.
	Sweeps int
	// MaxViolation is the final maximum relative constraint violation.
	MaxViolation float64
	// Converged reports whether MaxViolation fell below the tolerance.
	Converged bool
	// Duration is the wall-clock solving time.
	Duration time.Duration
	// Constraints is the number of constraints solved for.
	Constraints int
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("solver: %d constraints, %d sweeps, max violation %.3g, converged=%t, %s",
		r.Constraints, r.Sweeps, r.MaxViolation, r.Converged, r.Duration.Round(time.Millisecond))
}

// Solve runs coordinate mirror descent on the system until convergence or
// the sweep budget is exhausted. The system's variables are updated in
// place.
func Solve(sys *polynomial.System, constraints []Constraint, opts Options) (Report, error) {
	start := time.Now()
	if err := opts.setDefaults(); err != nil {
		return Report{}, err
	}
	if len(constraints) == 0 {
		return Report{Converged: true, Duration: time.Since(start)}, nil
	}
	for _, c := range constraints {
		if c.Target < 0 {
			return Report{}, fmt.Errorf("solver: constraint %v has negative target %g", c.Var, c.Target)
		}
		if c.Target > opts.N {
			return Report{}, fmt.Errorf("solver: constraint %v target %g exceeds relation size %g", c.Var, c.Target, opts.N)
		}
	}

	// Pin zero-target statistics once: their variables stay at 0 for the
	// whole run, and they are excluded from the sweep (their constraints
	// are satisfied by construction).
	active := make([]Constraint, 0, len(constraints))
	for _, c := range constraints {
		if c.Target == 0 {
			sys.Set(c.Var, 0)
			continue
		}
		active = append(active, c)
	}

	rep := Report{Constraints: len(constraints)}
	for sweep := 1; sweep <= opts.MaxSweeps; sweep++ {
		rep.Sweeps = sweep
		for _, c := range active {
			updateOne(sys, c, opts)
		}
		rep.MaxViolation = maxViolation(sys, constraints, opts.N)
		if opts.Progress != nil {
			opts.Progress(sweep, rep.MaxViolation)
		}
		if rep.MaxViolation < opts.Tolerance {
			rep.Converged = true
			break
		}
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// updateOne applies the closed-form coordinate update of Algorithm 1 to a
// single constraint.
func updateOne(sys *polynomial.System, c Constraint, opts Options) {
	p := sys.Eval(nil)
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return
	}
	pd := sys.Deriv(c.Var, nil)
	if pd <= 0 {
		// The variable does not influence P under the current assignment
		// (for example, every complementary variable of its terms is 0);
		// there is nothing to solve for.
		return
	}
	cur := sys.Get(c.Var)
	rest := p - cur*pd // P with α_j removed; never contains α_j since P is linear.
	if rest < 0 {
		rest = 0
	}
	denom := (opts.N - c.Target) * pd
	if denom <= 0 {
		// Target equals the relation size: drive the variable as high as is
		// numerically sensible so the statistic captures (almost) all mass.
		sys.Set(c.Var, math.Max(cur, 1) * 1e6)
		return
	}
	next := c.Target * rest / denom
	if next < opts.MinValue {
		next = opts.MinValue
	}
	if math.IsNaN(next) || math.IsInf(next, 0) {
		return
	}
	sys.Set(c.Var, next)
}

// maxViolation computes max_j |s_j − E[⟨c_j,I⟩]| / N over all constraints
// with the current variable assignment.
func maxViolation(sys *polynomial.System, constraints []Constraint, n float64) float64 {
	p := sys.Eval(nil)
	if p <= 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		v := math.Abs(c.Target-e) / n
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Violations returns the per-constraint relative violations |s_j − E_j| / N
// under the current assignment, index-aligned with constraints. It is used
// by diagnostics and tests.
func Violations(sys *polynomial.System, constraints []Constraint, n float64) []float64 {
	p := sys.Eval(nil)
	out := make([]float64, len(constraints))
	if p <= 0 {
		for i := range out {
			out[i] = math.Inf(1)
		}
		return out
	}
	for i, c := range constraints {
		e := n * sys.Get(c.Var) * sys.Deriv(c.Var, nil) / p
		out[i] = math.Abs(c.Target-e) / n
	}
	return out
}

// Dual computes the dual objective Ψ = Σ_j s_j ln α_j − n ln P for the
// current assignment, skipping pinned zero-target statistics (whose
// contribution is 0·ln 0 = 0 in the limit). It is exposed for tests that
// verify the coordinate updates never decrease Ψ.
func Dual(sys *polynomial.System, constraints []Constraint, n float64) float64 {
	p := sys.Eval(nil)
	if p <= 0 {
		return math.Inf(-1)
	}
	total := -n * math.Log(p)
	for _, c := range constraints {
		if c.Target == 0 {
			continue
		}
		v := sys.Get(c.Var)
		if v <= 0 {
			return math.Inf(-1)
		}
		total += c.Target * math.Log(v)
	}
	return total
}
