package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
)

func sampleRelation(t *testing.T, rows int) *relation.Relation {
	t.Helper()
	sch := schema.MustNew(
		schema.MustCategorical("a", []string{"x", "y", "z"}),
		schema.MustCategorical("b", []string{"p", "q"}),
	)
	rng := rand.New(rand.NewSource(99))
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		rel.MustAppend([]int{rng.Intn(3), rng.Intn(2)})
	}
	return rel
}

// TestNilRNGIsDeterministic pins the injectable-randomness contract: a
// nil source falls back to DefaultSeed, so two default draws coincide.
func TestNilRNGIsDeterministic(t *testing.T) {
	rel := sampleRelation(t, 2000)
	u1, err := Uniform(rel, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Uniform(rel, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u1.NumRows() != u2.NumRows() {
		t.Fatalf("default-seeded uniform samples differ: %d vs %d rows", u1.NumRows(), u2.NumRows())
	}
	for i := 0; i < u1.NumRows(); i++ {
		for a := 0; a < rel.NumAttrs(); a++ {
			if u1.Relation().Value(i, a) != u2.Relation().Value(i, a) {
				t.Fatalf("default-seeded uniform samples diverge at row %d", i)
			}
		}
	}
	s1, err := Stratified(rel, []int{0}, 0.1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Stratified(rel, []int{0}, 0.1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumRows() != s2.NumRows() {
		t.Fatalf("default-seeded stratified samples differ: %d vs %d rows", s1.NumRows(), s2.NumRows())
	}
	// A different seed draws a different sample (with overwhelming
	// probability at this size).
	u3, err := UniformSeeded(rel, 0.1, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if u3.NumRows() == u1.NumRows() {
		same := true
		for i := 0; i < u1.NumRows() && same; i++ {
			for a := 0; a < rel.NumAttrs(); a++ {
				if u1.Relation().Value(i, a) != u3.Relation().Value(i, a) {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("differently seeded samples are identical")
		}
	}
}

// TestStratifiedWeightsAreUnbiasedOnTotals verifies the Horvitz-Thompson
// scaling: the weighted full count of a stratified sample equals the
// relation cardinality exactly (every stratum is scaled back to its true
// size).
func TestStratifiedWeightsAreUnbiasedOnTotals(t *testing.T) {
	rel := sampleRelation(t, 3000)
	s, err := Stratified(rel, []int{0, 1}, 0.05, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Count(nil); math.Abs(got-float64(rel.NumRows())) > 1e-6 {
		t.Fatalf("stratified full count = %g, want %d", got, rel.NumRows())
	}
	// Per-stratum counts are also exact by construction.
	for v := 0; v < 3; v++ {
		pred := query.NewPredicate(2).WhereEq(0, v)
		truth := float64(rel.Count(pred))
		if got := s.Count(pred); math.Abs(got-truth) > 1e-6 {
			t.Errorf("stratum a=%d: weighted count %g, want %g", v, got, truth)
		}
	}
}

// TestUniformGroupByConsistent checks that group-by estimates sum to the
// count estimate.
func TestUniformGroupByConsistent(t *testing.T) {
	rel := sampleRelation(t, 2000)
	s, err := Uniform(rel, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := s.GroupBy([]int{0}, nil)
	sum := 0.0
	for _, g := range groups {
		sum += g.Estimate
	}
	if math.Abs(sum-s.Count(nil)) > 1e-6 {
		t.Fatalf("group estimates sum to %g, count is %g", sum, s.Count(nil))
	}
}

// TestRateValidation pins the constructor error paths.
func TestRateValidation(t *testing.T) {
	rel := sampleRelation(t, 10)
	if _, err := Uniform(rel, 0, nil); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := Uniform(rel, 1.5, nil); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := Stratified(rel, nil, 0.5, 1, nil); err == nil {
		t.Error("no strata attributes accepted")
	}
}
