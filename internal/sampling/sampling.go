// Package sampling implements the approximate-query-processing baselines the
// paper compares EntropyDB against (Sec. 6): uniform random samples and
// stratified samples over a chosen attribute pair, both with Horvitz-
// Thompson style per-stratum scaling of counts. Samples satisfy
// core.Estimator, so the experiment harness drives them through the same
// code path as the MaxEnt summary and the exact engine.
//
// All randomness is injected: constructors take a *rand.Rand and fall back
// to a fixed DefaultSeed when given nil, so experiments are reproducible
// by default.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// DefaultSeed seeds the fallback random source used when a constructor is
// given a nil *rand.Rand. Experiments that want different draws must pass
// their own source; nothing in this package reads the wall clock.
const DefaultSeed int64 = 1

// defaultRNG returns rng, or a freshly seeded deterministic source when
// rng is nil.
func defaultRNG(rng *rand.Rand) *rand.Rand {
	if rng != nil {
		return rng
	}
	return rand.New(rand.NewSource(DefaultSeed))
}

// Sample is a weighted subset of a relation usable for approximate counting
// queries. Each retained row carries the inverse of its inclusion
// probability as its weight. Sample implements core.Estimator.
type Sample struct {
	name    string
	rel     *relation.Relation
	weights []float64
}

// Sample satisfies the shared estimator interface.
var _ core.Estimator = (*Sample)(nil)

// Name returns a human-readable description of the sample (used in reports).
func (s *Sample) Name() string { return s.name }

// NumRows returns the number of retained rows.
func (s *Sample) NumRows() int { return s.rel.NumRows() }

// Relation returns the retained rows as a relation. Callers must treat it as
// read-only.
func (s *Sample) Relation() *relation.Relation { return s.rel }

// ApproxBytes estimates the in-memory footprint of the sample (encoded rows
// plus one float64 weight per row).
func (s *Sample) ApproxBytes() int64 {
	return s.rel.ApproxBytes() + int64(len(s.weights))*8
}

// Count estimates COUNT(*) for the predicate as the weighted count of
// matching sampled rows.
func (s *Sample) Count(pred *query.Predicate) float64 {
	var attrs []int
	var cons []query.Constraint
	if pred != nil {
		attrs = pred.ConstrainedAttrs()
		cons = make([]query.Constraint, len(attrs))
		for k, a := range attrs {
			cons[k] = pred.Constraint(a)
		}
	}
	total := 0.0
rows:
	for i := 0; i < s.rel.NumRows(); i++ {
		for k, a := range attrs {
			if !cons[k].Matches(s.rel.Value(i, a)) {
				continue rows
			}
		}
		total += s.weights[i]
	}
	return total
}

// EstimateCount implements core.Estimator.
func (s *Sample) EstimateCount(pred *query.Predicate) (float64, error) {
	return s.Count(pred), nil
}

// TimedCount returns the estimate together with the scan latency.
func (s *Sample) TimedCount(pred *query.Predicate) (float64, time.Duration) {
	start := time.Now()
	c := s.Count(pred)
	return c, time.Since(start)
}

// GroupBy estimates COUNT(*) per combination of values of the grouping
// attributes among rows satisfying pred. Only groups with at least one
// sampled row are returned.
func (s *Sample) GroupBy(groupAttrs []int, pred *query.Predicate) []core.GroupEstimate {
	if len(groupAttrs) == 0 || len(groupAttrs) > 4 {
		panic(fmt.Sprintf("sampling: group-by needs 1..4 attributes, got %d", len(groupAttrs)))
	}
	var attrs []int
	var cons []query.Constraint
	if pred != nil {
		attrs = pred.ConstrainedAttrs()
		cons = make([]query.Constraint, len(attrs))
		for k, a := range attrs {
			cons[k] = pred.Constraint(a)
		}
	}
	acc := make(map[relation.GroupKey]float64)
	vals := make([]int, len(groupAttrs))
rows:
	for i := 0; i < s.rel.NumRows(); i++ {
		for k, a := range attrs {
			if !cons[k].Matches(s.rel.Value(i, a)) {
				continue rows
			}
		}
		for k, a := range groupAttrs {
			vals[k] = s.rel.Value(i, a)
		}
		acc[relation.MakeGroupKey(vals)] += s.weights[i]
	}
	out := make([]core.GroupEstimate, 0, len(acc))
	for key, est := range acc {
		out = append(out, core.GroupEstimate{Values: key.Values(len(groupAttrs)), Estimate: est})
	}
	core.SortGroupEstimates(out)
	return out
}

// EstimateGroupBy implements core.Estimator.
func (s *Sample) EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]core.GroupEstimate, error) {
	return s.GroupBy(groupAttrs, pred), nil
}

// Uniform draws a uniform random sample with the given sampling rate. Every
// retained row gets weight 1/rate. A nil rng uses a deterministic source
// seeded with DefaultSeed.
func Uniform(rel *relation.Relation, rate float64, rng *rand.Rand) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sampling: rate must be in (0,1], got %g", rate)
	}
	rng = defaultRNG(rng)
	rows := make([]int, 0, int(rate*float64(rel.NumRows()))+16)
	for i := 0; i < rel.NumRows(); i++ {
		if rng.Float64() < rate {
			rows = append(rows, i)
		}
	}
	sub := rel.Select(rows)
	weights := make([]float64, sub.NumRows())
	w := 1.0 / rate
	for i := range weights {
		weights[i] = w
	}
	return &Sample{name: fmt.Sprintf("Uniform(%.2f%%)", rate*100), rel: sub, weights: weights}, nil
}

// UniformSeeded is a convenience wrapper drawing a uniform sample from a
// fresh source seeded with seed.
func UniformSeeded(rel *relation.Relation, rate float64, seed int64) (*Sample, error) {
	return Uniform(rel, rate, rand.New(rand.NewSource(seed)))
}

// Stratified draws a stratified sample: rows are partitioned by the values
// of the strata attributes; each stratum contributes ceil(rate·|stratum|)
// rows but never fewer than minPerStratum (or the whole stratum when it is
// smaller). Each retained row is weighted by |stratum| / |sampled stratum|.
// A nil rng uses a deterministic source seeded with DefaultSeed.
//
// This is the standard stratification the paper compares against: the
// stratified samples are built on a specific attribute pair and guarantee
// representation of rare strata.
func Stratified(rel *relation.Relation, strataAttrs []int, rate float64, minPerStratum int, rng *rand.Rand) (*Sample, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("sampling: rate must be in (0,1], got %g", rate)
	}
	if len(strataAttrs) == 0 || len(strataAttrs) > 4 {
		return nil, fmt.Errorf("sampling: stratification needs 1..4 attributes, got %d", len(strataAttrs))
	}
	if minPerStratum < 1 {
		minPerStratum = 1
	}
	rng = defaultRNG(rng)
	// Bucket row indexes per stratum.
	strata := make(map[relation.GroupKey][]int)
	vals := make([]int, len(strataAttrs))
	for i := 0; i < rel.NumRows(); i++ {
		for k, a := range strataAttrs {
			vals[k] = rel.Value(i, a)
		}
		key := relation.MakeGroupKey(vals)
		strata[key] = append(strata[key], i)
	}
	// Deterministic stratum order for reproducibility.
	keys := make([]relation.GroupKey, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		for p := 0; p < len(keys[i]); p++ {
			if keys[i][p] != keys[j][p] {
				return keys[i][p] < keys[j][p]
			}
		}
		return false
	})

	var rows []int
	var weights []float64
	for _, key := range keys {
		members := strata[key]
		want := int(rate*float64(len(members)) + 0.5)
		if want < minPerStratum {
			want = minPerStratum
		}
		if want > len(members) {
			want = len(members)
		}
		// Partial Fisher-Yates to pick `want` members without replacement.
		picked := append([]int(nil), members...)
		for i := 0; i < want; i++ {
			j := i + rng.Intn(len(picked)-i)
			picked[i], picked[j] = picked[j], picked[i]
		}
		w := float64(len(members)) / float64(want)
		for i := 0; i < want; i++ {
			rows = append(rows, picked[i])
			weights = append(weights, w)
		}
	}
	sub := rel.Select(rows)
	return &Sample{
		name:    fmt.Sprintf("Stratified(%v, %.2f%%)", strataAttrs, rate*100),
		rel:     sub,
		weights: weights,
	}, nil
}

// StratifiedSeeded is a convenience wrapper drawing a stratified sample
// from a fresh source seeded with seed.
func StratifiedSeeded(rel *relation.Relation, strataAttrs []int, rate float64, minPerStratum int, seed int64) (*Sample, error) {
	return Stratified(rel, strataAttrs, rate, minPerStratum, rand.New(rand.NewSource(seed)))
}
