package server_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
)

// TestRestartRoundTrip is the persistence acceptance test: a dataset is
// built once with a store attached (snapshots saved on build), then a
// completely fresh registry is cold-started from the store alone — no
// relation, no solver — and must answer a randomized workload
// bit-identically to the original in-process estimators, over HTTP.
func TestRestartRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// First process lifetime: build from data, snapshotting on build.
	reg1 := server.NewRegistry()
	rel := experiment.SyntheticRelation(3000, rand.New(rand.NewSource(1)))
	names, err := server.BuildDataset(reg1, "demo", rel, server.DatasetOptions{
		Partitions: 2,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Second process lifetime: restore from the store alone.
	reg2 := server.NewRegistry()
	restored, problems, err := server.RestoreStore(reg2, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("restore problems: %+v", problems)
	}
	sort.Strings(restored)
	want := []string{"demo/maxent", "demo/partitioned"}
	if len(restored) != len(want) || restored[0] != want[0] || restored[1] != want[1] {
		t.Fatalf("restored %v, want %v (built: %v)", restored, want, names)
	}

	srv := server.New(reg2, server.Options{Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(99))
	sch := rel.Schema()
	for _, name := range want {
		orig, ok := reg1.Get(name)
		if !ok {
			t.Fatalf("original registry lost %q", name)
		}
		for q := 0; q < 50; q++ {
			pred := query.NewPredicate(sch.NumAttrs())
			for a := 0; a < sch.NumAttrs(); a++ {
				if rng.Intn(2) == 0 {
					continue
				}
				lo := rng.Intn(sch.Attr(a).Size())
				pred.WhereRange(a, lo, lo+rng.Intn(sch.Attr(a).Size()-lo))
			}
			wantCount, err := orig.Estimator.EstimateCount(pred)
			if err != nil {
				t.Fatal(err)
			}
			resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: name, Predicate: pred})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /query (%s): %d %s", name, resp.StatusCode, body)
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(qr.Count) != math.Float64bits(wantCount) {
				t.Fatalf("%s query %d: restored-over-HTTP count %v != freshly-built %v",
					name, q, qr.Count, wantCount)
			}
		}
	}
}

// TestSnapshotEndpoints drives the admin surface: GET /snapshots lists
// versions, POST /snapshots/{dataset} saves new ones (skipping the
// data-bound estimators), and both fail cleanly without a store.
func TestSnapshotEndpoints(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(2000, rand.New(rand.NewSource(2)))
	if _, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{
		SampleRate: 0.05,
		Store:      st, // v1 of demo/maxent saved on build
	}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// POST /snapshots/demo: saves maxent v2, skips exact and the samples.
	resp, body := postJSON(t, ts.URL+"/snapshots/demo", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshots/demo: %d %s", resp.StatusCode, body)
	}
	var saveResp server.SnapshotSaveResponse
	if err := json.Unmarshal(body, &saveResp); err != nil {
		t.Fatal(err)
	}
	if len(saveResp.Saved) != 1 || saveResp.Saved[0].Dataset != "demo/maxent" || saveResp.Saved[0].Version != 2 {
		t.Fatalf("saved %+v, want demo/maxent v2", saveResp.Saved)
	}
	if len(saveResp.Skipped) != 3 { // exact, uniform, stratified
		t.Fatalf("skipped %v, want the 3 data-bound estimators", saveResp.Skipped)
	}

	// GET /snapshots lists both versions.
	getResp, err := http.Get(ts.URL + "/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var list server.SnapshotsResponse
	if err := json.NewDecoder(getResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].Dataset != "demo/maxent" || len(list.Datasets[0].Snapshots) != 2 {
		t.Fatalf("GET /snapshots: %+v", list.Datasets)
	}

	// Unknown dataset → 404; bad method → 405.
	resp, _ = postJSON(t, ts.URL+"/snapshots/nosuch", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /snapshots/nosuch: %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/snapshots", struct{}{})
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /snapshots: %d, want 405", resp.StatusCode)
	}

	// Without a store, the endpoints report 501.
	bare := httptest.NewServer(server.New(reg, server.Options{}).Handler())
	defer bare.Close()
	resp, _ = postJSON(t, bare.URL+"/snapshots/demo", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("storeless POST /snapshots/demo: %d, want 501", resp.StatusCode)
	}
	getResp2, err := http.Get(bare.URL + "/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	getResp2.Body.Close()
	if getResp2.StatusCode != http.StatusNotImplemented {
		t.Errorf("storeless GET /snapshots: %d, want 501", getResp2.StatusCode)
	}
}

// TestRestoreProblemsAreIsolated: a name collision (or any per-dataset
// failure) is reported as a problem and skipped — it must neither
// silently shadow the registered estimator nor abort the rest of the
// restore. Except-prefixes exclude datasets up front.
func TestRestoreProblemsAreIsolated(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(1500, rand.New(rand.NewSource(3)))
	if _, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{
		SkipExact: true,
		Store:     st,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.BuildDataset(server.NewRegistry(), "other", rel, server.DatasetOptions{
		SkipExact: true,
		Store:     st,
	}); err != nil {
		t.Fatal(err)
	}

	// demo/maxent collides with the live registration; other/maxent is
	// new and must restore anyway.
	restored, problems, err := server.RestoreStore(reg, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || problems[0].Dataset != "demo/maxent" {
		t.Fatalf("problems = %+v, want exactly the demo/maxent collision", problems)
	}
	if len(restored) != 1 || restored[0] != "other/maxent" {
		t.Fatalf("restored = %v, want [other/maxent]", restored)
	}

	// Except-prefixes skip silently: no problem, no registration.
	reg2 := server.NewRegistry()
	restored, problems, err = server.RestoreStore(reg2, st, "demo/")
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 || len(restored) != 1 || restored[0] != "other/maxent" {
		t.Fatalf("excepted restore: restored=%v problems=%+v", restored, problems)
	}
}
