package server

import (
	"fmt"
	"sync"
	"testing"
)

// The LRU-semantics tests pin the shard count to 1: recency and eviction
// order are per-shard properties, and a single shard makes them exact.

func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheSharded(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v; want 3, true", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries, capacity 2", st)
	}
}

func TestCacheAccounting(t *testing.T) {
	c := NewCacheSharded(8, 1)
	c.Put("k", 1.5)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("expected miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.HitRatio != 0.5 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, ratio 0.5", st)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCacheSharded(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh value and recency
	c.Put("c", 3)  // evicts b, not a
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("a = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 0 entries, 1 miss", st)
	}
}

// TestCacheSharding asserts keys spread across shards, per-shard stats sum
// to the aggregate, and a key always finds its own entry regardless of
// which shard it landed on.
func TestCacheSharding(t *testing.T) {
	c := NewCacheSharded(1024, 8)
	if c.NumShards() != 8 {
		t.Fatalf("NumShards = %d, want 8", c.NumShards())
	}
	const n = 512
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("key-%04d", i), i)
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get(fmt.Sprintf("key-%04d", i))
		if !ok || v.(int) != i {
			t.Fatalf("key-%04d = %v, %v; want %d, true", i, v, ok, i)
		}
	}
	st := c.Stats()
	if st.Entries != n || st.Hits != n {
		t.Fatalf("stats = %+v; want %d entries and hits", st, n)
	}
	if len(st.Shards) != 8 {
		t.Fatalf("%d shard stats, want 8", len(st.Shards))
	}
	populated, sumEntries, sumHits := 0, 0, uint64(0)
	for _, ss := range st.Shards {
		if ss.Entries > 0 {
			populated++
		}
		sumEntries += ss.Entries
		sumHits += ss.Hits
	}
	if sumEntries != st.Entries || sumHits != st.Hits {
		t.Fatalf("shard sums (%d entries, %d hits) disagree with totals (%d, %d)",
			sumEntries, sumHits, st.Entries, st.Hits)
	}
	// 512 hashed keys over 8 shards leaving shards empty would mean a
	// broken hash.
	if populated < 2 {
		t.Fatalf("only %d shard(s) populated by %d keys", populated, n)
	}
}

// TestCacheInvalidatePrefixFansOut inserts keys sharing a prefix (which
// hash to different shards) and asserts InvalidatePrefix reclaims every
// one of them while leaving other prefixes alone.
func TestCacheInvalidatePrefixFansOut(t *testing.T) {
	c := NewCacheSharded(1024, 4)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("demo/maxent\x00v1\x00c%d", i), i)
		c.Put(fmt.Sprintf("demo/exact\x00v1\x00c%d", i), i)
	}
	dropped := c.InvalidatePrefix("demo/maxent\x00")
	if dropped != 64 {
		t.Fatalf("dropped %d, want 64", dropped)
	}
	for i := 0; i < 64; i++ {
		if _, ok := c.Get(fmt.Sprintf("demo/maxent\x00v1\x00c%d", i)); ok {
			t.Fatalf("invalidated key %d still present", i)
		}
		if _, ok := c.Get(fmt.Sprintf("demo/exact\x00v1\x00c%d", i)); !ok {
			t.Fatalf("unrelated key %d was dropped", i)
		}
	}
	if st := c.Stats(); st.Invalidations != 64 {
		t.Fatalf("invalidations = %d, want 64", st.Invalidations)
	}
}

// TestCacheConcurrent hammers all operations from many goroutines; run
// under -race it proves the sharded locking is sound.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%128)
				c.Put(key, i)
				c.Get(key)
				if i%100 == 0 {
					c.InvalidatePrefix("k1")
					c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
}
