package server

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before capacity reached")
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if v, ok := c.Get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v; want 3, true", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries, capacity 2", st)
	}
}

func TestCacheAccounting(t *testing.T) {
	c := NewCache(8)
	c.Put("k", 1.5)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := c.Get("nope"); ok {
		t.Fatal("expected miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.HitRatio != 0.5 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, ratio 0.5", st)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh value and recency
	c.Put("c", 3)  // evicts b, not a
	if v, ok := c.Get("a"); !ok || v.(int) != 10 {
		t.Fatalf("a = %v, %v; want 10, true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache must always miss")
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 0 entries, 1 miss", st)
	}
}
