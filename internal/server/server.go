package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/store"
)

// Options configure the HTTP service. The zero value requests the defaults
// noted on each field.
type Options struct {
	// Timeout bounds the handling of a single request, queueing included
	// (default 5s).
	Timeout time.Duration
	// MaxConcurrent bounds how many estimator evaluations may run at once;
	// excess requests queue until a slot frees or their timeout fires
	// (default 64).
	MaxConcurrent int
	// CacheSize bounds the LRU result cache in entries; <= -1 disables
	// caching, 0 selects the default 4096.
	CacheSize int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds how many queries one POST /query/batch call may
	// carry (default 1024, hard cap query.MaxBatchItems).
	MaxBatch int
	// Store, when non-nil, backs the snapshot admin endpoints
	// (GET /snapshots, POST /snapshots/{dataset}) and the versioned-serving
	// endpoints (/query?version=N, /branch, /diff); nil serves 501 on them.
	Store *store.Store
	// HistoryBytes bounds the historical-estimator cache behind
	// time-travel queries, in summed estimator ApproxBytes (<= 0 selects
	// 4 MiB). Ignored without a Store.
	HistoryBytes int64
	// NodeName identifies this node in a fleet; it is echoed on /healthz
	// and /metrics so routers and operators can tell replicas apart.
	// Empty is fine for single-node deployments.
	NodeName string
	// SyncNotify, when non-nil, is invoked by POST /sync/notify with the
	// dataset named in the request body ("" = all) — the hook a replica's
	// sync loop hangs off so an ingest node can trigger an immediate pull
	// instead of waiting for the next poll.
	SyncNotify func(dataset string)
	// Now overrides the wall clock, for tests (default time.Now).
	Now func() time.Time
}

func (o *Options) setDefaults() {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBatch > query.MaxBatchItems {
		o.MaxBatch = query.MaxBatchItems
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Server is the summaryd request handler: it answers counting and group-by
// queries over the registered estimators with caching, admission control,
// and metrics. Create it with New and mount Handler on an http.Server.
type Server struct {
	reg     *Registry
	cache   *Cache
	history *History // nil without a store
	metrics *Metrics
	sem     chan struct{}
	opts    Options
	mux     *http.ServeMux
	routes  []string

	livesMu sync.RWMutex
	lives   map[string]*Live
}

// New builds a server over the registry. Estimators may keep being
// registered after New; requests see them immediately.
func New(reg *Registry, opts Options) *Server {
	opts.setDefaults()
	s := &Server{
		reg:     reg,
		cache:   NewCache(opts.CacheSize),
		metrics: NewMetrics(opts.Now()),
		sem:     make(chan struct{}, opts.MaxConcurrent),
		opts:    opts,
		lives:   make(map[string]*Live),
	}
	if opts.Store != nil {
		s.history = NewHistory(opts.Store, opts.HistoryBytes, opts.Now)
	}
	s.mux = http.NewServeMux()
	s.handle("/query", s.handleQuery)
	s.handle("/query/batch", s.handleBatch)
	s.handle("/groupby", s.handleGroupBy)
	s.handle("/estimators", s.handleEstimators)
	s.handle("/healthz", s.handleHealthz)
	s.handle("/metrics", s.handleMetrics)
	s.handle("/snapshots", s.handleSnapshotList)
	s.handle("/snapshots/", s.handleSnapshotSave)
	s.handle("/ingest/", s.handleIngest)
	s.handle("/branch/", s.handleBranch)
	s.handle("/diff/", s.handleDiff)
	s.handle("/sync/snapshot", s.handleSyncSnapshot)
	s.handle("/sync/notify", s.handleSyncNotify)
	return s
}

// handle registers one route and records its pattern for Routes().
func (s *Server) handle(pattern string, fn http.HandlerFunc) {
	s.mux.HandleFunc(pattern, fn)
	s.routes = append(s.routes, pattern)
}

// Routes returns every registered HTTP route pattern, sorted. It is the
// source of truth the documentation lint gate (cigates docs) checks
// docs/API.md against, so an endpoint cannot be added — or renamed —
// without its documentation following along.
func (s *Server) Routes() []string {
	out := append([]string(nil), s.routes...)
	sort.Strings(out)
	return out
}

// AttachLive enables POST /ingest/{dataset} for a live dataset and hands
// it the server's result cache so refreshes reclaim replaced entries.
// Attaching may happen before or after serving starts.
func (s *Server) AttachLive(l *Live) {
	l.attachCache(s.cache)
	s.livesMu.Lock()
	s.lives[l.Dataset()] = l
	s.livesMu.Unlock()
}

// live looks up an attached live dataset.
func (s *Server) live(dataset string) (*Live, bool) {
	s.livesMu.RLock()
	defer s.livesMu.RUnlock()
	l, ok := s.lives[dataset]
	return l, ok
}

// liveStatuses returns the status of every attached live dataset, sorted
// by name.
func (s *Server) liveStatuses() []LiveStatus {
	s.livesMu.RLock()
	lives := make([]*Live, 0, len(s.lives))
	for _, l := range s.lives {
		lives = append(lives, l)
	}
	s.livesMu.RUnlock()
	out := make([]LiveStatus, 0, len(lives))
	for _, l := range lives {
		out = append(out, l.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

// Handler returns the HTTP handler serving all summaryd endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (for tests and metrics).
func (s *Server) Cache() *Cache { return s.cache }

// --- wire types -------------------------------------------------------

// QueryRequest is the body of POST /query. A null/omitted predicate asks
// for the full relation cardinality. Version > 0 answers from that
// retained snapshot of the estimator's dataset key instead of the live
// entry (time travel); a ?version=N URL parameter overrides the body
// field on both GET and POST.
type QueryRequest struct {
	Estimator string           `json:"estimator"`
	Predicate *query.Predicate `json:"predicate,omitempty"`
	Version   int              `json:"version,omitempty"`
}

// QueryResponse is the body of a successful POST /query. Version echoes
// the snapshot version that answered (0 = the live estimator).
type QueryResponse struct {
	Estimator string  `json:"estimator"`
	Version   int     `json:"version,omitempty"`
	Count     float64 `json:"count"`
	Cached    bool    `json:"cached"`
	LatencyNS int64   `json:"latency_ns"`
}

// GroupByRequest is the body of POST /groupby. Version works as on
// /query.
type GroupByRequest struct {
	Estimator string           `json:"estimator"`
	Predicate *query.Predicate `json:"predicate,omitempty"`
	GroupBy   []int            `json:"group_by"`
	Version   int              `json:"version,omitempty"`
}

// GroupRow is one group of a group-by answer.
type GroupRow struct {
	Values   []int   `json:"values"`
	Estimate float64 `json:"estimate"`
}

// GroupByResponse is the body of a successful POST /groupby.
type GroupByResponse struct {
	Estimator string     `json:"estimator"`
	Version   int        `json:"version,omitempty"`
	Groups    []GroupRow `json:"groups"`
	Cached    bool       `json:"cached"`
	LatencyNS int64      `json:"latency_ns"`
}

// EstimatorInfo describes one registered estimator on GET /estimators.
// Domain sizes let remote clients (cmd/loadgen) generate schema-compatible
// workloads without sharing code with the server.
type EstimatorInfo struct {
	Name        string   `json:"name"`
	ApproxBytes int64    `json:"approx_bytes"`
	NumAttrs    int      `json:"num_attrs"`
	AttrNames   []string `json:"attr_names"`
	DomainSizes []int    `json:"domain_sizes"`
	// Generation counts the hot-swapped versions served under this name
	// (1 = the initial build or restore).
	Generation uint64 `json:"generation"`
}

// EstimatorsResponse is the body of GET /estimators.
type EstimatorsResponse struct {
	Estimators []EstimatorInfo `json:"estimators"`
}

// IngestRequest is the JSON body of POST /ingest/{dataset}: a batch of
// already-encoded rows (domain value indexes, schema order). CSV bodies
// (Content-Type: text/csv) carry raw values instead — labels for
// categorical attributes, numbers for binned ones — and are encoded
// server-side.
type IngestRequest struct {
	Rows [][]int `json:"rows"`
}

// MetricsResponse is the body of GET /metrics.
type MetricsResponse struct {
	MetricsSnapshot
	// Node is the fleet identity of this summaryd (Options.NodeName);
	// absent on single-node deployments.
	Node       string          `json:"node,omitempty"`
	Cache      CacheStats      `json:"cache"`
	Estimators []EstimatorInfo `json:"estimators"`
	// Datasets reports per-dataset ingestion state (generation, pending
	// rows = staleness) for every live dataset; empty when ingestion is
	// not enabled.
	Datasets []LiveStatus `json:"datasets,omitempty"`
	// History reports the historical-estimator cache behind time-travel
	// queries; absent without a snapshot store.
	History *HistoryStats `json:"history,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// EstimatorGenerationHeader is the response header on /query, /groupby, and
// /query/batch carrying the generation of the live registry entry that
// answered. Time-travel answers (version > 0) omit it — they are immutable
// and identified by snapshot version. The fleet router's read cache stamps
// its entries with this header, so a routed ingest hot swap invalidates
// router entries exactly like node-local ones.
const EstimatorGenerationHeader = "X-Estimator-Generation"

// setGenerationHeader stamps the answering live entry's generation on the
// response; snapshot entries are immutable and carry no generation.
func setGenerationHeader(w http.ResponseWriter, ent Entry) {
	if ent.Snapshot == 0 {
		w.Header().Set(EstimatorGenerationHeader, strconv.FormatUint(ent.Generation, 10))
	}
}

// --- handlers ---------------------------------------------------------

// httpError is an error carrying the HTTP status it should be reported
// with.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// handleQuery serves POST /query (JSON body) and GET /query (URL
// parameters: estimator, version, and an optional URL-encoded JSON
// predicate — the curl-able time-travel form). On both methods a
// ?version=N URL parameter overrides the body's version field.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	var req QueryRequest
	run := func(ctx context.Context) (interface{}, error) {
		if v, herr := urlVersion(r); herr != nil {
			return nil, herr
		} else if v >= 0 {
			req.Version = v
		}
		ent, key, herr := s.admitQuery(req.Estimator, req.Version, "c", req.Predicate, nil)
		if herr != nil {
			return nil, herr
		}
		setGenerationHeader(w, ent)
		if v, ok := s.cache.Get(key); ok {
			return QueryResponse{Estimator: ent.Name, Version: ent.Snapshot, Count: v.(float64), Cached: true}, nil
		}
		v, herr2 := s.execute(ctx, func() (interface{}, error) {
			return ent.Estimator.EstimateCount(req.Predicate)
		})
		if herr2 != nil {
			return nil, herr2
		}
		count := v.(float64)
		s.cache.Put(key, count)
		return QueryResponse{Estimator: ent.Name, Version: ent.Snapshot, Count: count}, nil
	}
	finish := func(resp interface{}, latency time.Duration) interface{} {
		qr := resp.(QueryResponse)
		qr.LatencyNS = latency.Nanoseconds()
		return qr
	}
	var err error
	if r.Method == http.MethodGet {
		if herr := queryRequestFromURL(r, &req); herr != nil {
			writeJSON(w, herr.status, errorResponse{Error: herr.msg})
			err = herr
		} else {
			err = s.runTimed(w, r, run, finish)
		}
	} else {
		err = s.withRequest(w, r, &req, run, finish)
	}
	s.metrics.Record(s.opts.Now().Sub(start), err != nil)
}

// queryRequestFromURL decodes the GET /query parameter form.
func queryRequestFromURL(r *http.Request, req *QueryRequest) *httpError {
	q := r.URL.Query()
	req.Estimator = q.Get("estimator")
	if raw := q.Get("predicate"); raw != "" {
		var p query.Predicate
		if err := json.Unmarshal([]byte(raw), &p); err != nil {
			return badRequest("malformed predicate parameter: %v", err)
		}
		req.Predicate = &p
	}
	return nil
}

// urlVersion parses the optional ?version=N parameter; -1 means absent.
func urlVersion(r *http.Request) (int, *httpError) {
	raw := r.URL.Query().Get("version")
	if raw == "" {
		return -1, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return -1, badRequest("version must be a non-negative integer, got %q", raw)
	}
	return v, nil
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	var req GroupByRequest
	err := s.withRequest(w, r, &req, func(ctx context.Context) (interface{}, error) {
		if v, herr := urlVersion(r); herr != nil {
			return nil, herr
		} else if v >= 0 {
			req.Version = v
		}
		ent, key, herr := s.admitQuery(req.Estimator, req.Version, "g", req.Predicate, req.GroupBy)
		if herr != nil {
			return nil, herr
		}
		setGenerationHeader(w, ent)
		if v, ok := s.cache.Get(key); ok {
			return GroupByResponse{Estimator: ent.Name, Version: ent.Snapshot, Groups: v.([]GroupRow), Cached: true}, nil
		}
		v, herr2 := s.execute(ctx, func() (interface{}, error) {
			return ent.Estimator.EstimateGroupBy(req.GroupBy, req.Predicate)
		})
		if herr2 != nil {
			return nil, herr2
		}
		rows := toGroupRows(v.([]core.GroupEstimate))
		s.cache.Put(key, rows)
		return GroupByResponse{Estimator: ent.Name, Version: ent.Snapshot, Groups: rows}, nil
	}, func(resp interface{}, latency time.Duration) interface{} {
		gr := resp.(GroupByResponse)
		gr.LatencyNS = latency.Nanoseconds()
		return gr
	})
	s.metrics.Record(s.opts.Now().Sub(start), err != nil)
}

func (s *Server) handleEstimators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	writeJSON(w, http.StatusOK, EstimatorsResponse{Estimators: s.estimatorInfos()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	snap := s.metrics.Snapshot(s.opts.Now())
	resp := map[string]interface{}{
		"status":         "ok",
		"uptime_seconds": snap.UptimeSeconds,
		"estimators":     s.reg.Len(),
	}
	if s.opts.NodeName != "" {
		resp["node"] = s.opts.NodeName
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	resp := MetricsResponse{
		MetricsSnapshot: s.metrics.Snapshot(s.opts.Now()),
		Node:            s.opts.NodeName,
		Cache:           s.cache.Stats(),
		Estimators:      s.estimatorInfos(),
		Datasets:        s.liveStatuses(),
	}
	if s.history != nil {
		hs := s.history.Stats()
		resp.History = &hs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngest serves POST /ingest/{dataset}: it appends a batch of rows
// to the dataset's live relation and, when the refresh threshold is
// crossed, hot-swaps refreshed estimators before responding. The append
// and refresh run on the same bounded worker pool as query evaluation,
// under the per-request timeout, so an ingest burst cannot hold
// unbounded goroutines: excess requests queue for a slot (503 on
// admission timeout) and a straggling refresh is abandoned with a 504
// (it still completes server-side; the response is what gives up).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	failed := false
	defer func() { s.metrics.Record(s.opts.Now().Sub(start), failed) }()
	fail := func(status int, msg string) {
		failed = true
		writeJSON(w, status, errorResponse{Error: msg})
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "use POST")
		return
	}
	dataset := strings.TrimPrefix(r.URL.Path, "/ingest/")
	if dataset == "" || strings.Contains(dataset, "/") {
		fail(http.StatusBadRequest, "use POST /ingest/{dataset} with a single-segment dataset name")
		return
	}
	live, ok := s.live(dataset)
	if !ok {
		fail(http.StatusNotFound, fmt.Sprintf("dataset %q does not accept ingestion (no live relation attached)", dataset))
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var rows [][]int
	contentType := r.Header.Get("Content-Type")
	if strings.HasPrefix(contentType, "text/csv") {
		decoded, err := DecodeCSVRows(live.Mutable().Schema(), body)
		if err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		rows = decoded
	} else {
		var req IngestRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("malformed request body: %v", err))
			return
		}
		if err := DecodeJSONRows(live.Mutable().Schema(), req.Rows); err != nil {
			fail(http.StatusBadRequest, err.Error())
			return
		}
		rows = req.Rows
	}
	if len(rows) == 0 {
		fail(http.StatusBadRequest, "ingest batch is empty")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	v, herr := s.execute(ctx, func() (interface{}, error) {
		return live.Ingest(rows)
	})
	if herr != nil {
		status := herr.status
		if status == http.StatusUnprocessableEntity {
			// An Ingest error always means nothing was appended (validation
			// failed) — the client's fault, not the server's; refresh
			// problems after a successful append arrive in refresh_error on
			// a 200 instead, so clients never retry rows that landed.
			status = http.StatusBadRequest
		}
		fail(status, herr.msg)
		return
	}
	writeJSON(w, http.StatusOK, v.(IngestResult))
}

func (s *Server) estimatorInfos() []EstimatorInfo {
	entries := s.reg.Entries()
	out := make([]EstimatorInfo, 0, len(entries))
	for _, e := range entries {
		info := EstimatorInfo{
			Name:        e.Name,
			ApproxBytes: e.Estimator.ApproxBytes(),
			NumAttrs:    e.Schema.NumAttrs(),
			DomainSizes: e.Schema.DomainSizes(),
			Generation:  e.Generation,
		}
		for i := 0; i < e.Schema.NumAttrs(); i++ {
			info.AttrNames = append(info.AttrNames, e.Schema.Attr(i).Name())
		}
		out = append(out, info)
	}
	return out
}

// --- request plumbing -------------------------------------------------

// withRequest decodes a POST body into req, runs fn under the per-request
// timeout, stamps the latency via finish, and writes either the response
// or a JSON error. It returns the error fn produced (nil on success) so
// handlers can account failures.
func (s *Server) withRequest(w http.ResponseWriter, r *http.Request, req interface{},
	fn func(ctx context.Context) (interface{}, error),
	finish func(resp interface{}, latency time.Duration) interface{}) error {
	if r.Method != http.MethodPost {
		err := &httpError{status: http.StatusMethodNotAllowed, msg: "use POST"}
		writeJSON(w, err.status, errorResponse{Error: err.msg})
		return err
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(req); err != nil {
		herr := badRequest("malformed request body: %v", err)
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return herr
	}
	return s.runTimed(w, r, fn, finish)
}

// runTimed runs fn under the per-request timeout, stamps the latency via
// finish, and writes either the response or a JSON error — the shared
// tail of the POST (body) and GET (URL parameter) request forms.
func (s *Server) runTimed(w http.ResponseWriter, r *http.Request,
	fn func(ctx context.Context) (interface{}, error),
	finish func(resp interface{}, latency time.Duration) interface{}) error {
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	start := s.opts.Now()
	resp, err := fn(ctx)
	if err != nil {
		status := http.StatusInternalServerError
		var herr *httpError
		if errors.As(err, &herr) {
			status = herr.status
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return err
	}
	writeJSON(w, http.StatusOK, finish(resp, s.opts.Now().Sub(start)))
	return nil
}

// admitQuery validates the request against the registry (version <= 0,
// the live estimator) or the historical cache (version > 0, a retained
// snapshot) and returns the target entry plus the canonical cache key.
// kind is "c" for counts, "g" for group-bys.
func (s *Server) admitQuery(estimator string, version int, kind string, pred *query.Predicate, groupBy []int) (Entry, string, error) {
	ent, herr := s.lookupEntry(estimator, version)
	if herr != nil {
		return Entry{}, "", herr
	}
	key, err := queryKey(ent, kind, pred, groupBy)
	if err != nil {
		return Entry{}, "", err
	}
	return ent, key, nil
}

// lookupEntry resolves an estimator name at a version: version <= 0 is
// the live registry entry, version > 0 a retained snapshot served through
// the historical cache (restored on first hit).
func (s *Server) lookupEntry(estimator string, version int) (Entry, *httpError) {
	if estimator == "" {
		return Entry{}, badRequest(`missing "estimator"`)
	}
	if version <= 0 {
		ent, ok := s.reg.Get(estimator)
		if !ok {
			return Entry{}, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown estimator %q", estimator)}
		}
		return ent, nil
	}
	if s.history == nil {
		return Entry{}, &httpError{status: http.StatusNotImplemented,
			msg: "versioned queries need a snapshot store (start summaryd with -store)"}
	}
	ent, err := s.history.Get(estimator, version)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			return Entry{}, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("estimator %q has no snapshot version %d", estimator, version)}
		case errors.Is(err, store.ErrCorrupt):
			return Entry{}, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
		default:
			return Entry{}, badRequest("%v", err)
		}
	}
	return ent, nil
}

// queryKey validates the query shape against the entry's schema and builds
// the canonical cache key. It is shared by the single-query and batch
// paths, so a batched query and its sequential twin always hit the same
// cache entry.
func queryKey(ent Entry, kind string, pred *query.Predicate, groupBy []int) (string, error) {
	numAttrs := ent.Schema.NumAttrs()
	if pred != nil && pred.NumAttrs() != numAttrs {
		return "", badRequest("predicate has num_attrs=%d, estimator %q answers over %d attributes",
			pred.NumAttrs(), ent.Name, numAttrs)
	}
	// The entry generation is part of the key, so answers cached before a
	// hot swap can never be served afterwards — even if an in-flight query
	// of the old generation stores its result after the swap's explicit
	// invalidation ran. Historical entries (Snapshot > 0) are immutable and
	// key by snapshot version instead, under a distinct "s" marker so a
	// snapshot version can never collide with a live generation. Built with
	// one Builder rather than string concatenation: the batch path calls
	// this once per item.
	var b strings.Builder
	b.Grow(len(ent.Name) + 16)
	b.WriteString(ent.Name)
	if ent.Snapshot > 0 {
		b.WriteString("\x00s")
		b.WriteString(strconv.Itoa(ent.Snapshot))
	} else {
		b.WriteString("\x00v")
		b.WriteString(strconv.FormatUint(ent.Generation, 10))
	}
	b.WriteByte(0)
	b.WriteString(kind)
	if kind == "g" {
		if len(groupBy) == 0 || len(groupBy) > 4 {
			return "", badRequest("group_by needs 1..4 attributes, got %d", len(groupBy))
		}
		for i, a := range groupBy {
			if a < 0 || a >= numAttrs {
				return "", badRequest("group_by attribute %d out of range [0,%d)", a, numAttrs)
			}
			for _, prev := range groupBy[:i] {
				if prev == a {
					return "", badRequest("duplicate group_by attribute %d", a)
				}
			}
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(a))
		}
	}
	b.WriteByte(0)
	if pred != nil {
		b.WriteString(pred.CanonicalKey())
	}
	return b.String(), nil
}

// execute runs fn on the bounded worker pool under ctx: it queues for a
// slot, then runs fn in a goroutine so a timeout can abandon (not cancel)
// a straggling evaluation without unbounding the pool — the slot is only
// released once fn actually returns.
func (s *Server) execute(ctx context.Context, fn func() (interface{}, error)) (interface{}, *httpError) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "server saturated: timed out waiting for a worker slot"}
	}
	type result struct {
		v   interface{}
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() { <-s.sem }()
		v, err := fn()
		done <- result{v, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			return nil, &httpError{status: http.StatusUnprocessableEntity, msg: res.err.Error()}
		}
		return res.v, nil
	case <-ctx.Done():
		return nil, &httpError{status: http.StatusGatewayTimeout, msg: "query timed out"}
	}
}

func toGroupRows(groups []core.GroupEstimate) []GroupRow {
	rows := make([]GroupRow, len(groups))
	for i, g := range groups {
		rows[i] = GroupRow{Values: g.Values, Estimate: g.Estimate}
	}
	return rows
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
