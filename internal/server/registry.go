// Package server turns the repository's estimator stack into a long-lived
// HTTP/JSON query service: a concurrent-safe registry of named estimators,
// a bounded LRU result cache keyed by canonical query strings, rolling
// latency/QPS metrics, and the summaryd endpoint handlers (/query,
// /groupby, /estimators, /healthz, /metrics). The paper's premise is that
// a solved MaxEnt summary answers counting queries in interactive time
// without touching the data; this package is the serving shape that makes
// the claim measurable end to end.
package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/schema"
)

// Entry is one registered estimator together with the schema it answers
// over; the schema validates incoming predicates and advertises domain
// sizes to remote load generators.
type Entry struct {
	Name      string
	Estimator core.Estimator
	Schema    *schema.Schema
	// Generation counts the versions served under this name: 1 at first
	// registration, +1 per Swap. It flows into cache keys (so a swap can
	// never serve a previous generation's cached answers) and into the
	// /metrics staleness report.
	Generation uint64
	// Snapshot is 0 for live registry entries. Historical entries restored
	// by the History cache carry the snapshot version they answer from
	// instead of a generation: snapshots are immutable, so their cache
	// keys are keyed by version, not by swap count.
	Snapshot int
}

// Registry is a concurrent-safe map of named estimators. Registration,
// swapping, and lookup may interleave freely with request handling; the
// estimators themselves are read-only after registration (the
// core.Estimator contract), so replacing one is a pure pointer swap —
// in-flight queries finish on the version they looked up, new queries see
// the new one.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]Entry)}
}

// Register adds an estimator under the given name (conventionally
// "dataset/strategy"). Names must be unique and non-empty.
func (r *Registry) Register(name string, est core.Estimator, sch *schema.Schema) error {
	if name == "" {
		return fmt.Errorf("server: estimator name must not be empty")
	}
	if est == nil || sch == nil {
		return fmt.Errorf("server: estimator %q needs a non-nil estimator and schema", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("server: estimator %q already registered", name)
	}
	r.entries[name] = Entry{Name: name, Estimator: est, Schema: sch, Generation: 1}
	return nil
}

// Swap atomically replaces the estimator served under name with a new
// version, bumping the entry's generation, and returns the updated entry.
// The previous estimator keeps answering any queries that already looked
// it up — zero downtime — and becomes garbage once they drain. Swapping a
// name that was never registered is an error: a refresh must not
// accidentally invent serving entries.
func (r *Registry) Swap(name string, est core.Estimator, sch *schema.Schema) (Entry, error) {
	if est == nil || sch == nil {
		return Entry{}, fmt.Errorf("server: swap %q needs a non-nil estimator and schema", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("server: swap %q: estimator not registered", name)
	}
	next := Entry{Name: name, Estimator: est, Schema: sch, Generation: old.Generation + 1}
	r.entries[name] = next
	return next, nil
}

// Unregister removes a named estimator and reports whether it was
// present. Serving code never unregisters; it exists for startup
// reconciliation (dropping a partial snapshot restore before a rebuild
// re-registers the full strategy set).
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// Get looks an estimator up by name.
func (r *Registry) Get(name string) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Entries returns all registered entries sorted by name.
func (r *Registry) Entries() []Entry {
	r.mu.RLock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered estimators.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
