package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/summary"
)

// newVersionedServer builds a store-backed live dataset and ingests
// `extraVersions` skewed refresh rounds so demo/maxent retains versions
// 1..extraVersions+1. Returns the test server, the store, and the live
// handle.
func newVersionedServer(t *testing.T, rows, extraVersions int, opts server.Options) (*httptest.Server, *store.Store, *server.Live) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(rows, rand.New(rand.NewSource(1))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}},
			Store:   st,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < extraVersions; v++ {
		// Each round is skewed toward a different region so successive
		// versions answer differently (drift the diff endpoint can see).
		if _, err := live.Ingest(syntheticRows(100, v)); err != nil {
			t.Fatal(err)
		}
		if _, err := live.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	opts.Store = st
	srv := server.New(reg, opts)
	srv.AttachLive(live)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st, live
}

// BenchmarkHistoryRestore measures a first-hit time-travel restore: a
// cold ?version=N query's extra cost over a live one (store.Load +
// decode + cache insert). Each iteration uses a fresh History, so every
// Get is a miss. BENCH.md records the p50; the acceptance bar is ≤ 1ms.
func BenchmarkHistoryRestore(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rel := experiment.SyntheticRelation(20000, rand.New(rand.NewSource(1)))
	sum, err := summary.Build(rel, summary.Options{Solver: solver.Options{MaxSweeps: 200}})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Save("demo/maxent", sum); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := server.NewHistory(st, 0, nil)
		if _, err := h.Get("demo/maxent", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// countAtVersion asks GET /query?version=N and returns the count plus the
// echoed version.
func countAtVersion(t *testing.T, tsURL, estimator string, version int, pred *query.Predicate) (float64, int) {
	t.Helper()
	pj, err := json.Marshal(pred)
	if err != nil {
		t.Fatal(err)
	}
	u := tsURL + "/query?estimator=" + url.QueryEscape(estimator) + "&predicate=" + url.QueryEscape(string(pj))
	if version > 0 {
		u += "&version=" + strconv.Itoa(version)
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query v%d: status %d", version, resp.StatusCode)
	}
	return qr.Count, qr.Version
}

// TestQueryAtVersionBitIdentical is the tentpole acceptance test: a
// versioned query over HTTP (GET and POST wires) must return answers
// bit-identical to restoring the same snapshot in-process and evaluating
// it directly.
func TestQueryAtVersionBitIdentical(t *testing.T) {
	ts, st, _ := newVersionedServer(t, 2000, 2, server.Options{CacheSize: -1})

	rng := rand.New(rand.NewSource(7))
	sch := experiment.SyntheticSchema()
	for version := 1; version <= 3; version++ {
		est, _, err := st.Load("demo/maxent", version)
		if err != nil {
			t.Fatalf("in-process load v%d: %v", version, err)
		}
		for q := 0; q < 25; q++ {
			pred := query.NewPredicate(sch.NumAttrs())
			for a := 0; a < sch.NumAttrs(); a++ {
				if rng.Intn(2) == 0 {
					continue
				}
				lo := rng.Intn(sch.Attr(a).Size())
				pred.WhereRange(a, lo, lo+rng.Intn(sch.Attr(a).Size()-lo))
			}
			want, err := est.(core.Estimator).EstimateCount(pred)
			if err != nil {
				t.Fatal(err)
			}

			got, echoed := countAtVersion(t, ts.URL, "demo/maxent", version, pred)
			if echoed != version {
				t.Fatalf("GET response echoed version %d, want %d", echoed, version)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("v%d query %d: GET served %v, in-process restore %v", version, q, got, want)
			}

			resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{
				Estimator: "demo/maxent", Predicate: pred, Version: version,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /query v%d: %d %s", version, resp.StatusCode, body)
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(qr.Count) != math.Float64bits(want) || qr.Version != version {
				t.Fatalf("v%d query %d: POST served %v (version %d), want %v (version %d)",
					version, q, qr.Count, qr.Version, want, version)
			}
		}
	}

	// Unknown version → 404; live query still carries version 0.
	pred := query.NewPredicate(sch.NumAttrs())
	resp, _ := postJSON(t, ts.URL+"/query", server.QueryRequest{
		Estimator: "demo/maxent", Predicate: pred, Version: 99,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("version 99: status %d, want 404", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "demo/maxent", Predicate: pred})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live query: %d %s", resp.StatusCode, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Version != 0 {
		t.Fatalf("live query echoed version %d, want 0", qr.Version)
	}
}

// TestVersionedBatchOverHTTP drives /query/batch at a snapshot version on
// both wires (JSON body field and binary v2 frame) and checks agreement
// with the in-process restore.
func TestVersionedBatchOverHTTP(t *testing.T) {
	ts, st, _ := newVersionedServer(t, 1500, 1, server.Options{CacheSize: -1})

	est, _, err := st.Load("demo/maxent", 1)
	if err != nil {
		t.Fatal(err)
	}
	sch := experiment.SyntheticSchema()
	preds := make([]*query.Predicate, 4)
	items := make([]query.BatchItem, len(preds))
	jsonItems := make([]server.BatchQueryItem, len(preds))
	want := make([]float64, len(preds))
	for i := range preds {
		p := query.NewPredicate(sch.NumAttrs())
		p.WhereEq(0, i%sch.Attr(0).Size())
		preds[i] = p
		items[i] = query.BatchItem{Pred: p}
		jsonItems[i] = server.BatchQueryItem{Predicate: p}
		if want[i], err = est.(core.Estimator).EstimateCount(p); err != nil {
			t.Fatal(err)
		}
	}

	// JSON wire.
	resp, body := postJSON(t, ts.URL+"/query/batch", server.BatchQueryRequest{
		Estimator: "demo/maxent", Version: 1, Queries: jsonItems,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON batch: %d %s", resp.StatusCode, body)
	}
	var br server.BatchQueryResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Version != 1 {
		t.Fatalf("JSON batch echoed version %d, want 1", br.Version)
	}
	for i, a := range br.Answers {
		if a.Error != "" || math.Float64bits(a.Count) != math.Float64bits(want[i]) {
			t.Fatalf("JSON batch answer %d: %+v, want count %v", i, a, want[i])
		}
	}

	// Binary wire: a format-v2 frame carrying the snapshot version.
	frame, err := query.AppendBatchAt(nil, "demo/maxent", 1, items)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch: status %d", httpResp.StatusCode)
	}
	_, answers, err := query.DecodeAnswers(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(want) {
		t.Fatalf("binary batch: %d answers, want %d", len(answers), len(want))
	}
	for i, a := range answers {
		if a.Error != "" || math.Float64bits(a.Count) != math.Float64bits(want[i]) {
			t.Fatalf("binary batch answer %d: %+v, want count %v", i, a, want[i])
		}
	}
}

// TestBranchThenIngestIsolation forks a branch at the parent's v1 and
// checks the three isolation properties: the branch answers from the fork
// summary (bit-identical to the parent's v1), parent ingests never leak
// into the branch, and branch ingests never leak into the parent. The
// fork's lineage must land in the branch manifest and shield the parent's
// fork-point version from pruning.
func TestBranchThenIngestIsolation(t *testing.T) {
	ts, st, parentLive := newVersionedServer(t, 1500, 2, server.Options{CacheSize: -1})

	// Fork at v1 (the pre-ingest build).
	resp, body := postJSON(t, ts.URL+"/branch/demo?from=1&name=fork", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("branch: %d %s", resp.StatusCode, body)
	}
	var br server.BranchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Branch != "fork" || br.Parent != "demo" || br.FromVersion != 1 || br.Rows != 1500 {
		t.Fatalf("branch response: %+v", br)
	}

	// Lineage is durable: the fork manifest names demo/maxent v1.
	man, err := st.Versions("fork/maxent")
	if err != nil {
		t.Fatal(err)
	}
	if man.Parent == nil || man.Parent.Dataset != "demo/maxent" || man.Parent.Version != 1 {
		t.Fatalf("fork lineage = %+v, want demo/maxent v1", man.Parent)
	}

	// Branch answers == parent's v1 answers, bit-identical.
	sch := experiment.SyntheticSchema()
	pred := query.NewPredicate(sch.NumAttrs())
	pred.WhereEq(0, 3)
	v1Count, _ := countAtVersion(t, ts.URL, "demo/maxent", 1, pred)
	forkCount, _ := countAtVersion(t, ts.URL, "fork/maxent", 0, pred)
	if math.Float64bits(forkCount) != math.Float64bits(v1Count) {
		t.Fatalf("fresh fork answers %v, parent v1 answers %v", forkCount, v1Count)
	}

	// Ingest into the parent (region=0 rows) and refresh: the fork must not
	// move.
	if _, err := parentLive.Ingest(syntheticRows(200, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := parentLive.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, _ := countAtVersion(t, ts.URL, "fork/maxent", 0, pred)
	if math.Float64bits(after) != math.Float64bits(forkCount) {
		t.Fatalf("parent ingest leaked into the fork: %v -> %v", forkCount, after)
	}

	// Ingest into the fork over HTTP (region=3 rows, the predicate's
	// region): the fork's exact engine grows by exactly the batch, the
	// parent's serving entry keeps its own count.
	parentBefore, _ := countAtVersion(t, ts.URL, "demo/maxent", 0, pred)
	forkExactBefore, _ := countAtVersion(t, ts.URL, "fork/exact", 0, pred)
	resp, body = postJSON(t, ts.URL+"/ingest/fork", server.IngestRequest{Rows: syntheticRows(300, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fork ingest: %d %s", resp.StatusCode, body)
	}
	forkExactAfter, _ := countAtVersion(t, ts.URL, "fork/exact", 0, pred)
	if forkExactAfter != forkExactBefore+300 { // all 300 ingested rows are region=3
		t.Fatalf("fork exact count %g -> %g, want +300", forkExactBefore, forkExactAfter)
	}
	parentAfter, _ := countAtVersion(t, ts.URL, "demo/maxent", 0, pred)
	if math.Float64bits(parentAfter) != math.Float64bits(parentBefore) {
		t.Fatalf("fork ingest leaked into the parent: %v -> %v", parentBefore, parentAfter)
	}

	// The fork point (demo/maxent v1) survives an aggressive prune because
	// the fork's lineage pins it implicitly.
	if _, err := st.Prune("demo/maxent", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("demo/maxent", 1); err != nil {
		t.Fatalf("prune removed the fork point: %v", err)
	}

	// Conflicts: re-branching under a taken name is a 409, unknown parent a
	// 404, missing name a 400.
	resp, _ = postJSON(t, ts.URL+"/branch/demo?from=1&name=fork", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate branch: %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/branch/nosuch?name=x", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown parent: %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/branch/demo", struct{}{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing name: %d, want 400", resp.StatusCode)
	}
}

// TestDiffEndpoint checks the drift report: zero self-diff, visible drift
// across a skewed ingest, cross-dataset comparison, and clean failures.
func TestDiffEndpoint(t *testing.T) {
	ts, _, _ := newVersionedServer(t, 1500, 2, server.Options{})

	getDiff := func(path string) (int, server.DiffResponse) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var dr server.DiffResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
		return resp.StatusCode, dr
	}

	// Self-diff is exactly zero.
	status, dr := getDiff("/diff/demo?a=1&b=1")
	if status != http.StatusOK {
		t.Fatalf("self diff: status %d", status)
	}
	if dr.MeanTotalVariation != 0 || dr.MaxTotalVariation != 0 || dr.MaxDriftAttr != "" {
		t.Fatalf("self diff is nonzero: %+v", dr)
	}
	if dr.A != 1 || dr.B != 1 || dr.Dataset != "demo" || dr.Strategy != "maxent" {
		t.Fatalf("self diff header: %+v", dr)
	}

	// v1 vs latest: the skewed ingest rounds moved the marginals.
	status, dr = getDiff("/diff/demo?a=1")
	if status != http.StatusOK {
		t.Fatalf("v1-vs-latest diff: status %d", status)
	}
	if dr.B != 3 {
		t.Fatalf("latest resolved to v%d, want 3", dr.B)
	}
	if dr.MaxTotalVariation <= 0 {
		t.Fatalf("skewed ingest produced zero drift: %+v", dr)
	}

	// Symmetry: swapping a and b changes nothing but the header.
	_, rev := getDiff("/diff/demo?a=3&b=1")
	if rev.MaxTotalVariation != dr.MaxTotalVariation || rev.MeanTotalVariation != dr.MeanTotalVariation {
		t.Fatalf("diff is asymmetric: %+v vs %+v", dr, rev)
	}

	// Failure shapes.
	if status, _ := getDiff("/diff/nosuch"); status != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d, want 404", status)
	}
	if status, _ := getDiff("/diff/demo?a=99"); status != http.StatusNotFound {
		t.Fatalf("unknown version: %d, want 404", status)
	}
	if status, _ := getDiff("/diff/demo?a=-1"); status != http.StatusBadRequest {
		t.Fatalf("negative version: %d, want 400", status)
	}
}

// TestHistoryEvictionAndReRestore squeezes the historical cache down to
// one resident entry: alternating versions forces evictions, and each
// re-restore must keep answering bit-identically. Pins must be released
// on eviction so pruning is not blocked forever.
func TestHistoryEvictionAndReRestore(t *testing.T) {
	// 1 byte of budget admits exactly one entry at a time (the newest is
	// always admitted).
	ts, st, _ := newVersionedServer(t, 1200, 2, server.Options{CacheSize: -1, HistoryBytes: 1})

	sch := experiment.SyntheticSchema()
	pred := query.NewPredicate(sch.NumAttrs())
	pred.WhereEq(1, 2)

	first := make(map[int]float64)
	for round := 0; round < 3; round++ {
		for version := 1; version <= 3; version++ {
			got, _ := countAtVersion(t, ts.URL, "demo/maxent", version, pred)
			if round == 0 {
				first[version] = got
				continue
			}
			if math.Float64bits(got) != math.Float64bits(first[version]) {
				t.Fatalf("round %d v%d: re-restored answer %v != first answer %v", round, version, got, first[version])
			}
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr server.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	hs := mr.History
	if hs == nil {
		t.Fatal("/metrics has no history block despite a store")
	}
	if hs.Entries != 1 {
		t.Fatalf("history entries = %d, want 1 under a 1-byte budget", hs.Entries)
	}
	// 9 lookups of 3 versions through a 1-entry cache: every switch is a
	// miss+eviction.
	if hs.Misses < 3 || hs.Evictions < hs.Misses-1 {
		t.Fatalf("history stats %+v: want >= 3 misses and evictions tracking them", hs)
	}
	if hs.RestoreP50NS <= 0 || hs.RestoreMaxNS < hs.RestoreP50NS {
		t.Fatalf("restore latency report: %+v", hs)
	}

	// Evicted versions released their pins: only v3 stays pinned (it is
	// both the resident history entry — the last version queried — and the
	// served latest), so v1 and v2 are prunable again.
	if pins := st.Pinned("demo/maxent"); len(pins) != 1 || pins[0] != 3 {
		t.Fatalf("pinned = %v, want [3]", pins)
	}
}

// TestVersionedQueryWithoutStoreIs501 pins the storeless behavior: the
// endpoint shape exists but reports 501, mirroring /snapshots.
func TestVersionedQueryWithoutStoreIs501(t *testing.T) {
	ts, _, _ := newTestServer(t, server.Options{})
	pred := query.NewPredicate(4)
	resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{
		Estimator: "demo/maxent", Predicate: pred, Version: 1,
	})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("storeless versioned query: %d %s, want 501", resp.StatusCode, body)
	}
}

// TestRoutesListsServingSurface pins Routes() as the machine-readable
// source of truth the docs gate checks against.
func TestRoutesListsServingSurface(t *testing.T) {
	srv := server.New(server.NewRegistry(), server.Options{})
	got := map[string]bool{}
	for _, r := range srv.Routes() {
		got[r] = true
	}
	for _, want := range []string{
		"/query", "/query/batch", "/groupby", "/estimators", "/healthz",
		"/metrics", "/snapshots", "/snapshots/", "/ingest/", "/branch/", "/diff/",
	} {
		if !got[want] {
			t.Errorf("Routes() is missing %q (got %v)", want, srv.Routes())
		}
	}
}
