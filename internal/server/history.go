package server

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
)

// historyRestoreWindow is how many recent restore latencies the history
// cache retains for its p50/max report.
const historyRestoreWindow = 256

// histKey identifies one historical estimator: a store dataset key
// ("<dataset>/<strategy>") at one snapshot version.
type histKey struct {
	dataset string
	version int
}

// histEntry is one resident historical estimator.
type histEntry struct {
	key   histKey
	ent   Entry
	bytes int64
}

// History is the lazily-populated LRU cache of historical estimators
// behind time-travel queries (/query?version=N, /diff, /branch): a cold
// version restores from the snapshot store on first hit (~0.2ms for a
// paper-sized summary) and stays resident until the byte budget pushes it
// out. Resident versions are pinned in the store so a concurrent prune
// can never delete a snapshot that is actively answering queries; the pin
// is released on eviction.
type History struct {
	st       *store.Store
	maxBytes int64
	now      func() time.Time

	mu        sync.Mutex
	entries   map[histKey]*list.Element
	lru       *list.List // front = most recently used
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
	// restoreNS is a ring of the most recent first-hit restore latencies.
	restoreNS  [historyRestoreWindow]int64
	restorePos int
	restores   uint64
}

// NewHistory builds a history cache over the store. maxBytes bounds the
// resident estimators' summed ApproxBytes (<= 0 selects 4 MiB — thousands
// of paper-sized summaries); the most recently restored version is always
// admitted, even alone over budget. now overrides the clock for tests
// (nil = time.Now).
func NewHistory(st *store.Store, maxBytes int64, now func() time.Time) *History {
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	if now == nil {
		now = time.Now
	}
	return &History{
		st:       st,
		maxBytes: maxBytes,
		now:      now,
		entries:  make(map[histKey]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the estimator serving the dataset key at the given snapshot
// version (> 0), restoring it from the store on first hit. The returned
// Entry carries Snapshot = version and Generation = 0: snapshots are
// immutable, so historical cache keys never need a generation. Store
// errors (store.ErrNotFound, store.ErrCorrupt) pass through for the
// caller to map onto HTTP statuses.
func (h *History) Get(dataset string, version int) (Entry, error) {
	if version <= 0 {
		return Entry{}, fmt.Errorf("server: history lookup needs a version > 0, got %d", version)
	}
	key := histKey{dataset: dataset, version: version}
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[key]; ok {
		h.lru.MoveToFront(el)
		h.hits++
		return el.Value.(*histEntry).ent, nil
	}
	// Restore under the lock: concurrent first hits on the same version
	// would otherwise race N restores for one cache slot, and a restore is
	// O(summary bytes) — far cheaper than the duplicated work it prevents.
	h.misses++
	start := h.now()
	est, info, err := h.st.Load(dataset, version)
	if err != nil {
		return Entry{}, err
	}
	elapsed := h.now().Sub(start).Nanoseconds()
	h.restoreNS[h.restorePos] = elapsed
	h.restorePos = (h.restorePos + 1) % historyRestoreWindow
	h.restores++

	sc, ok := est.(schemed)
	if !ok {
		return Entry{}, fmt.Errorf("server: snapshot %q v%d: estimator %T carries no schema", dataset, version, est)
	}
	ent := Entry{Name: dataset, Estimator: est, Schema: sc.Schema(), Snapshot: version}
	he := &histEntry{key: key, ent: ent, bytes: est.ApproxBytes()}
	if he.bytes <= 0 {
		he.bytes = info.Bytes
	}
	h.entries[key] = h.lru.PushFront(he)
	h.bytes += he.bytes
	h.st.Pin(dataset, version)
	for h.bytes > h.maxBytes && h.lru.Len() > 1 {
		h.evictLocked(h.lru.Back())
	}
	return ent, nil
}

// evictLocked removes one entry and releases its store pin. Callers hold
// h.mu.
func (h *History) evictLocked(el *list.Element) {
	he := el.Value.(*histEntry)
	h.lru.Remove(el)
	delete(h.entries, he.key)
	h.bytes -= he.bytes
	h.evictions++
	h.st.Unpin(he.key.dataset, he.key.version)
}

// HistoryStats is the /metrics block of the historical-estimator cache.
type HistoryStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// RestoreP50NS and RestoreMaxNS summarize the most recent first-hit
	// restore latencies (up to historyRestoreWindow of them); 0 until the
	// first restore.
	RestoreP50NS int64 `json:"restore_p50_ns"`
	RestoreMaxNS int64 `json:"restore_max_ns"`
}

// Stats returns a consistent snapshot of the cache counters.
func (h *History) Stats() HistoryStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistoryStats{
		Entries:   h.lru.Len(),
		Bytes:     h.bytes,
		MaxBytes:  h.maxBytes,
		Hits:      h.hits,
		Misses:    h.misses,
		Evictions: h.evictions,
	}
	n := int(h.restores)
	if n > historyRestoreWindow {
		n = historyRestoreWindow
	}
	if n > 0 {
		lat := make([]int64, n)
		copy(lat, h.restoreNS[:n])
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st.RestoreP50NS = lat[(n-1)/2]
		st.RestoreMaxNS = lat[n-1]
	}
	return st
}
