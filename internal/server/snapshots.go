package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/summary"
)

// schemed is implemented by estimators that know the schema they answer
// over; the solved summaries restored from snapshots do, which is what
// lets RestoreStore register them without access to the original
// relation.
type schemed interface {
	Schema() *schema.Schema
}

// RestoreProblem describes one dataset key that could not be restored
// (corrupt snapshot, name collision, …) while the rest of the store was.
type RestoreProblem struct {
	Dataset string
	Err     error
}

// RestoreStore loads the latest snapshot of every dataset key in the
// store — skipping keys matching one of the exceptPrefixes — and
// registers each restored estimator in the registry under its key
// ("<dataset>/<strategy>", exactly the names BuildDataset would have
// used). Restoring is O(total summary bytes): no relation is scanned and
// no solver runs, which is the whole point of snapshotting.
//
// One damaged or unregisterable dataset must not take down a restartable
// service that could serve every other dataset, so per-dataset failures
// are returned as problems for the caller to log, not as the error; the
// error is reserved for the store listing itself failing.
func RestoreStore(reg *Registry, st *store.Store, exceptPrefixes ...string) (names []string, problems []RestoreProblem, err error) {
	manifests, err := st.List()
	if err != nil {
		return nil, nil, err
	}
datasets:
	for _, man := range manifests {
		for _, p := range exceptPrefixes {
			if strings.HasPrefix(man.Dataset, p) {
				continue datasets
			}
		}
		est, info, err := st.Load(man.Dataset, 0)
		if err != nil {
			problems = append(problems, RestoreProblem{man.Dataset, err})
			continue
		}
		sc, ok := est.(schemed)
		if !ok {
			problems = append(problems, RestoreProblem{man.Dataset,
				fmt.Errorf("server: restore %q: estimator %T carries no schema", man.Dataset, est)})
			continue
		}
		if err := reg.Register(man.Dataset, est, sc.Schema()); err != nil {
			problems = append(problems, RestoreProblem{man.Dataset,
				fmt.Errorf("server: restore %q (v%d): %w", man.Dataset, info.Version, err)})
			continue
		}
		names = append(names, man.Dataset)
	}
	return names, problems, nil
}

// ErrNoEstimators is reported by SaveDataset when no estimator at all is
// registered under the requested dataset prefix.
var ErrNoEstimators = errors.New("no estimators registered under dataset")

// SaveDataset snapshots every snapshot-able estimator registered under
// "<dataset>/" into the store and returns the saved snapshot infos plus
// the names that were skipped (estimators that answer from data rather
// than from a solved model, like "/exact" and the sampling baselines).
func SaveDataset(reg *Registry, st *store.Store, dataset string) (saved []store.SnapshotInfo, skipped []string, err error) {
	prefix := dataset + "/"
	matched := false
	for _, e := range reg.Entries() {
		if !strings.HasPrefix(e.Name, prefix) {
			continue
		}
		matched = true
		info, err := st.Save(e.Name, e.Estimator)
		if err != nil {
			if errors.Is(err, summary.ErrNotSnapshotable) {
				skipped = append(skipped, e.Name)
				continue
			}
			return saved, skipped, err
		}
		saved = append(saved, info)
	}
	if !matched {
		return nil, nil, fmt.Errorf("server: %w: %q", ErrNoEstimators, prefix)
	}
	return saved, skipped, nil
}

// --- HTTP endpoints ---------------------------------------------------

// SnapshotsResponse is the body of GET /snapshots.
type SnapshotsResponse struct {
	Datasets []store.Manifest `json:"datasets"`
}

// SnapshotSaveResponse is the body of a successful POST
// /snapshots/{dataset}.
type SnapshotSaveResponse struct {
	Dataset   string               `json:"dataset"`
	Saved     []store.SnapshotInfo `json:"saved"`
	Skipped   []string             `json:"skipped,omitempty"`
	ElapsedNS int64                `json:"elapsed_ns"`
}

// requireStore writes the no-store error and reports whether a store is
// configured.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.opts.Store == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "no snapshot store configured (start summaryd with -store)"})
		return false
	}
	return true
}

// handleSnapshotList serves GET /snapshots: every dataset manifest of the
// configured store (datasets, versions, sizes, checksums, timestamps).
func (s *Server) handleSnapshotList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	if !s.requireStore(w) {
		return
	}
	manifests, err := s.opts.Store.List()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotsResponse{Datasets: manifests})
}

// handleSnapshotSave serves POST /snapshots/{dataset}: it snapshots every
// snapshot-able estimator registered under "<dataset>/" as a new
// immutable version each.
func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.requireStore(w) {
		return
	}
	dataset := strings.TrimPrefix(r.URL.Path, "/snapshots/")
	if dataset == "" || strings.Contains(dataset, "/") {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "use POST /snapshots/{dataset} with a single-segment dataset name"})
		return
	}
	start := s.opts.Now()
	saved, skipped, err := SaveDataset(s.reg, s.opts.Store, dataset)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoEstimators) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotSaveResponse{
		Dataset:   dataset,
		Saved:     saved,
		Skipped:   skipped,
		ElapsedNS: s.opts.Now().Sub(start).Nanoseconds(),
	})
}
