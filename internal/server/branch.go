package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/exact"
	"repro/internal/relation"
	"repro/internal/store"
	"repro/internal/summary"
)

// BranchResponse is the body of a successful POST /branch/{parent}.
type BranchResponse struct {
	// Branch is the new dataset name; Parent and FromVersion name the fork
	// point (the parent's "<parent>/maxent" snapshot the branch diverges
	// from).
	Branch      string `json:"branch"`
	Parent      string `json:"parent"`
	FromVersion int    `json:"from_version"`
	// Rows is how many of the parent's rows the branch starts with.
	Rows int `json:"rows"`
	// Registered lists the estimator names now serving the branch.
	Registered []string `json:"registered"`
	// SnapshotVersion is the branch's own first snapshot version (its v1,
	// carrying the fork lineage in its manifest).
	SnapshotVersion int   `json:"snapshot_version"`
	ElapsedNS       int64 `json:"elapsed_ns"`
}

// handleBranch serves POST /branch/{parent}?from=N&name=X: it forks the
// live parent dataset at snapshot version N (0/absent = latest) into a
// new independently-ingestable dataset X. The branch reuses the parent's
// storage up to the fork point — the restored fork summary is served
// as-is (bit-identical answers, no re-solve) and the branch relation is a
// zero-copy capacity-capped view of the parent's first N-version rows, so
// divergent appends on either side reallocate instead of overwriting
// shared columns. The fork summary is saved as the branch's snapshot v1
// with lineage recorded in its manifest, which also implicitly pins the
// parent's fork-point version against pruning.
func (s *Server) handleBranch(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if !s.requireStore(w) {
		return
	}
	parent := strings.TrimPrefix(r.URL.Path, "/branch/")
	if parent == "" || strings.Contains(parent, "/") {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "use POST /branch/{parent}?from=N&name=X with a single-segment parent dataset"})
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" || strings.Contains(name, "/") {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: `the "name" parameter (single-segment branch dataset name) is required`})
		return
	}
	if name == parent {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "branch name must differ from the parent"})
		return
	}
	from := 0
	if raw := q.Get("from"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("from must be a non-negative integer, got %q", raw)})
			return
		}
		from = v
	}
	parentLive, ok := s.live(parent)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: fmt.Sprintf("dataset %q has no live relation attached (branching forks one)", parent)})
		return
	}

	parentKey := parent + "/maxent"
	from, herr := s.resolveVersion(parentKey, from)
	if herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	}
	ent, herr := s.lookupEntry(parentKey, from)
	if herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	}
	sum, ok := ent.Estimator.(*summary.Summary)
	if !ok {
		writeJSON(w, http.StatusUnprocessableEntity,
			errorResponse{Error: fmt.Sprintf("snapshot %q v%d is a %T, want a refreshable summary", parentKey, from, ent.Estimator)})
		return
	}

	// The fork point covers the parent relation's first N rows (appends are
	// the only mutation, so row count maps a snapshot onto a prefix). A
	// snapshot describing more rows than the live relation means the
	// relation was regenerated since — refuse rather than fork wrong data.
	rows := int(sum.N())
	frozen, _ := parentLive.Mutable().Freeze()
	if rows > frozen.NumRows() {
		writeJSON(w, http.StatusConflict,
			errorResponse{Error: fmt.Sprintf("snapshot %q v%d covers %d rows but the live relation holds %d — cannot fork", parentKey, from, rows, frozen.NumRows())})
		return
	}
	view, err := frozen.Slice(0, rows)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	branchMaxent := name + "/maxent"
	branchExact := name + "/exact"
	rollback := func() {
		s.reg.Unregister(branchMaxent)
		s.reg.Unregister(branchExact)
	}
	if err := s.reg.Register(branchMaxent, sum, ent.Schema); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	if err := s.reg.Register(branchExact, exact.New(view), ent.Schema); err != nil {
		rollback()
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}

	// Publish the branch's v1 (the fork summary itself) and record the
	// lineage, before NewLive pins the latest branch version for serving.
	info, err := s.opts.Store.Save(branchMaxent, sum)
	if err != nil {
		rollback()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if err := s.opts.Store.SetParent(branchMaxent, store.Lineage{Dataset: parentKey, Version: from}); err != nil {
		rollback()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	branchOpts := parentLive.opts
	live, err := NewLive(s.reg, name, relation.NewMutable(view), s.opts.Store, branchOpts)
	if err != nil {
		rollback()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.AttachLive(live)

	writeJSON(w, http.StatusOK, BranchResponse{
		Branch:          name,
		Parent:          parent,
		FromVersion:     from,
		Rows:            rows,
		Registered:      []string{branchMaxent, branchExact},
		SnapshotVersion: info.Version,
		ElapsedNS:       s.opts.Now().Sub(start).Nanoseconds(),
	})
}

// DiffResponse is the body of a successful GET /diff/{dataset}.
type DiffResponse struct {
	Dataset  string `json:"dataset"`
	BDataset string `json:"b_dataset,omitempty"`
	Strategy string `json:"strategy"`
	A        int    `json:"a"`
	B        int    `json:"b"`
	summary.DiffReport
}

// handleDiff serves GET /diff/{dataset}?a=N&b=M: per-attribute
// distribution drift between two retained snapshots, scored with the
// streaming-drift experiment's error metrics (total-variation distance
// and symmetric relative error over the normalized 1D marginals). a and b
// are snapshot versions (0/absent = latest); b_dataset compares across
// datasets — e.g. a branch against its parent — and strategy selects the
// stored estimator (default maxent). Both sides are served through the
// historical cache, so repeated diffs of warm versions touch no disk.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	if !s.requireStore(w) {
		return
	}
	dataset := strings.TrimPrefix(r.URL.Path, "/diff/")
	if dataset == "" || strings.Contains(dataset, "/") {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: "use GET /diff/{dataset}?a=N&b=M with a single-segment dataset name"})
		return
	}
	q := r.URL.Query()
	strategy := q.Get("strategy")
	if strategy == "" {
		strategy = "maxent"
	}
	bDataset := q.Get("b_dataset")
	if bDataset == "" {
		bDataset = dataset
	}
	parse := func(param string) (int, *httpError) {
		raw := q.Get(param)
		if raw == "" {
			return 0, nil
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return 0, badRequest("%s must be a non-negative integer, got %q", param, raw)
		}
		return v, nil
	}
	a, herr := parse("a")
	if herr == nil {
		var b int
		if b, herr = parse("b"); herr == nil {
			s.serveDiff(w, dataset, bDataset, strategy, a, b)
			return
		}
	}
	writeJSON(w, herr.status, errorResponse{Error: herr.msg})
}

// serveDiff loads both sides through the historical cache and writes the
// drift report.
func (s *Server) serveDiff(w http.ResponseWriter, dataset, bDataset, strategy string, a, b int) {
	aKey := dataset + "/" + strategy
	bKey := bDataset + "/" + strategy
	a, herr := s.resolveVersion(aKey, a)
	if herr == nil {
		b, herr = s.resolveVersion(bKey, b)
	}
	if herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	}
	load := func(key string, version int) (*summary.Summary, *httpError) {
		ent, herr := s.lookupEntry(key, version)
		if herr != nil {
			return nil, herr
		}
		sum, ok := ent.Estimator.(*summary.Summary)
		if !ok {
			return nil, &httpError{status: http.StatusUnprocessableEntity,
				msg: fmt.Sprintf("snapshot %q v%d is a %T, which has no diffable marginals", key, version, ent.Estimator)}
		}
		return sum, nil
	}
	sumA, herr := load(aKey, a)
	if herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	}
	sumB, herr := load(bKey, b)
	if herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	}
	rep, err := summary.Diff(sumA, sumB)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	resp := DiffResponse{Dataset: dataset, Strategy: strategy, A: a, B: b, DiffReport: rep}
	if bDataset != dataset {
		resp.BDataset = bDataset
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveVersion maps version 0 onto the dataset key's newest snapshot
// version; positive versions pass through.
func (s *Server) resolveVersion(key string, version int) (int, *httpError) {
	if version > 0 {
		return version, nil
	}
	man, err := s.opts.Store.Versions(key)
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return 0, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("dataset key %q has no snapshots", key)}
		}
		return 0, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	last, ok := man.Latest()
	if !ok {
		return 0, &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("dataset key %q has no snapshots", key)}
	}
	return last.Version, nil
}
