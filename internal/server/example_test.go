package server_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/summary"
)

// exampleServer builds a store-backed live dataset with two retained
// snapshot versions of demo/maxent (v1 from the build, v2 from one
// ingest+refresh round) and serves it over httptest.
func exampleServer() (*httptest.Server, *store.Store, func()) {
	dir, err := os.MkdirTemp("", "versioning-example")
	if err != nil {
		panic(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(2000, rand.New(rand.NewSource(1))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}},
			Store:   st,
		},
	})
	if err != nil {
		panic(err)
	}
	if _, err := live.Ingest([][]int{{3, 5, 0, 2}, {3, 5, 1, 4}}); err != nil {
		panic(err)
	}
	if _, err := live.Refresh(); err != nil {
		panic(err)
	}
	srv := server.New(reg, server.Options{Store: st})
	srv.AttachLive(live)
	ts := httptest.NewServer(srv.Handler())
	return ts, st, func() {
		ts.Close()
		os.RemoveAll(dir)
	}
}

// ExampleServer_timeTravel queries a retained snapshot version: the same
// /query endpoint, with ?version=N selecting which version of history
// answers. The response echoes the version it was served from (0 = live).
func ExampleServer_timeTravel() {
	ts, _, cleanup := exampleServer()
	defer cleanup()

	pred := query.NewPredicate(4)
	pred.WhereEq(0, 3) // region = LATAM
	pj, _ := json.Marshal(pred)

	for _, version := range []string{"1", "2", ""} {
		u := ts.URL + "/query?estimator=demo/maxent&predicate=" + url.QueryEscape(string(pj))
		if version != "" {
			u += "&version=" + version
		}
		resp, err := http.Get(u)
		if err != nil {
			panic(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			panic(err)
		}
		resp.Body.Close()
		fmt.Printf("requested %q -> answered from version %d (status %d)\n", version, qr.Version, resp.StatusCode)
	}
	// Output:
	// requested "1" -> answered from version 1 (status 200)
	// requested "2" -> answered from version 2 (status 200)
	// requested "" -> answered from version 0 (status 200)
}

// ExampleServer_branch forks a live dataset at a retained snapshot into
// an independently-ingestable branch. The fork summary serves the branch
// as-is (bit-identical answers at the fork point), the branch relation is
// a zero-copy view of the parent's rows, and the lineage is recorded in
// the branch manifest — which also shields the parent's fork-point
// version from pruning.
func ExampleServer_branch() {
	ts, st, cleanup := exampleServer()
	defer cleanup()

	resp, err := http.Post(ts.URL+"/branch/demo?from=1&name=audit", "application/json", strings.NewReader("{}"))
	if err != nil {
		panic(err)
	}
	var br server.BranchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("branch %q forked from %s v%d with %d rows\n", br.Branch, br.Parent, br.FromVersion, br.Rows)

	man, err := st.Versions("audit/maxent")
	if err != nil {
		panic(err)
	}
	fmt.Printf("lineage: %s <- %s v%d\n", "audit/maxent", man.Parent.Dataset, man.Parent.Version)
	// Output:
	// branch "audit" forked from demo v1 with 2000 rows
	// lineage: audit/maxent <- demo/maxent v1
}
