package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/relation"
	"repro/internal/sampling"
	"repro/internal/store"
	"repro/internal/summary"
)

// snapshotOnBuild persists a freshly-built summary when a store is
// configured. A failed save fails the build loudly: a deployment that
// asked for persistence should not limp along serving an unsaved model.
func snapshotOnBuild(st *store.Store, name string, est core.Estimator) error {
	if st == nil {
		return nil
	}
	if _, err := st.Save(name, est); err != nil {
		return fmt.Errorf("server: snapshot %q on build: %w", name, err)
	}
	return nil
}

// DatasetOptions configure BuildDataset. The zero value builds only the
// exact engine and the MaxEnt summary with summary.Options defaults.
type DatasetOptions struct {
	// Summary configures the MaxEnt build.
	Summary summary.Options
	// Partitions, when > 0, additionally builds a K-way partitioned
	// summary (registered as "<dataset>/partitioned").
	Partitions int
	// SampleRate, when > 0, additionally builds uniform and stratified
	// sampling baselines at this rate ("<dataset>/uniform",
	// "<dataset>/stratified").
	SampleRate float64
	// SampleSeed seeds the baselines' reservoir draws.
	SampleSeed int64
	// SkipExact leaves the full-scan engine out (for deployments that must
	// not retain the relation).
	SkipExact bool
	// Store, when non-nil, persists every solved summary the build
	// produces as a new snapshot version under "<dataset>/<strategy>", so
	// the next cold start can restore instead of rebuild.
	Store *store.Store
}

// BuildDataset runs the summarization pipeline over one relation and
// registers every resulting estimator under "<dataset>/<strategy>" names:
// always "<dataset>/maxent", plus "/exact", "/partitioned", "/uniform",
// and "/stratified" as configured. It returns the registered names.
func BuildDataset(reg *Registry, dataset string, rel *relation.Relation, opts DatasetOptions) ([]string, error) {
	if dataset == "" {
		return nil, fmt.Errorf("server: dataset name must not be empty")
	}
	sch := rel.Schema()
	var names []string

	sum, err := summary.Build(rel, opts.Summary)
	if err != nil {
		return nil, fmt.Errorf("server: dataset %q: summary build: %w", dataset, err)
	}
	name := dataset + "/maxent"
	if err := reg.Register(name, sum, sch); err != nil {
		return nil, err
	}
	if err := snapshotOnBuild(opts.Store, name, sum); err != nil {
		return nil, err
	}
	names = append(names, name)

	if !opts.SkipExact {
		name = dataset + "/exact"
		if err := reg.Register(name, exact.New(rel), sch); err != nil {
			return nil, err
		}
		names = append(names, name)
	}

	if opts.Partitions > 0 {
		// Partition-level concurrency already saturates the cores during
		// the build; keep the per-partition solver sequential.
		base := opts.Summary
		base.Solver.Workers = 1
		psum, err := summary.BuildPartitioned(rel, summary.PartitionedOptions{
			Partitions: opts.Partitions,
			Base:       base,
		})
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: partitioned build: %w", dataset, err)
		}
		name = dataset + "/partitioned"
		if err := reg.Register(name, psum, sch); err != nil {
			return nil, err
		}
		if err := snapshotOnBuild(opts.Store, name, psum); err != nil {
			return nil, err
		}
		names = append(names, name)
	}

	if opts.SampleRate > 0 {
		uni, err := sampling.UniformSeeded(rel, opts.SampleRate, opts.SampleSeed+1)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: uniform sample: %w", dataset, err)
		}
		name = dataset + "/uniform"
		if err := reg.Register(name, uni, sch); err != nil {
			return nil, err
		}
		names = append(names, name)

		strataAttrs := []int{0}
		if pcs := sum.ChosenPairs(); len(pcs) > 0 {
			strataAttrs = []int{pcs[0].A1, pcs[0].A2}
		} else if sch.NumAttrs() > 1 {
			strataAttrs = []int{0, 1}
		}
		strat, err := sampling.StratifiedSeeded(rel, strataAttrs, opts.SampleRate, 1, opts.SampleSeed+2)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: stratified sample: %w", dataset, err)
		}
		name = dataset + "/stratified"
		if err := reg.Register(name, strat, sch); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}
