package server_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/exact"
	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/summary"
)

// newLiveServer builds a live synthetic dataset behind an httptest server.
func newLiveServer(t *testing.T, rows int, liveOpts server.LiveOptions) (*httptest.Server, *server.Registry, *server.Server, *server.Live) {
	t.Helper()
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(rows, rand.New(rand.NewSource(1))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, liveOpts)
	if err != nil {
		t.Fatalf("BuildLiveDataset: %v", err)
	}
	srv := server.New(reg, server.Options{})
	srv.AttachLive(live)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg, srv, live
}

// syntheticRows draws encoded rows compatible with the synthetic schema.
func syntheticRows(n int, value int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{value % 4, value % 6, value % 3, value % 8}
	}
	return rows
}

// TestIngestHTTPRoundTrip is the acceptance-criterion round trip: ingest
// rows via POST /ingest/{dataset}, observe the generation bump on
// /metrics, and confirm that served answers reflect the new data.
func TestIngestHTTPRoundTrip(t *testing.T) {
	ts, _, _, _ := newLiveServer(t, 3000, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary: summary.Options{Solver: solver.Options{MaxSweeps: 300}},
		},
		RefreshRows: 500,
	})

	// All ingested rows share region=3 (LATAM), so the count of region=3
	// must grow by about the ingested volume once refreshed.
	pred := query.NewPredicate(4)
	pred.WhereEq(0, 3)
	queryCount := func() float64 {
		resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "demo/maxent", Predicate: pred})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: status %d: %s", resp.StatusCode, body)
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr.Count
	}
	before := queryCount()

	// Below the threshold: accepted but not refreshed.
	resp, body := postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: syntheticRows(200, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir server.IngestResult
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 200 || ir.Refreshed || ir.PendingRows != 200 {
		t.Fatalf("first ingest: %+v, want accepted=200 refreshed=false pending=200", ir)
	}

	// Crossing the threshold refreshes before responding.
	resp, body = postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: syntheticRows(400, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if !ir.Refreshed || ir.PendingRows != 0 || ir.TotalRows != 3600 {
		t.Fatalf("second ingest: %+v, want refreshed=true pending=0 total=3600", ir)
	}

	// /metrics must report the generation bump and zero staleness.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr server.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Datasets) != 1 {
		t.Fatalf("metrics: %d datasets, want 1", len(mr.Datasets))
	}
	ds := mr.Datasets[0]
	if ds.Dataset != "demo" || ds.Generation != 2 || ds.PendingRows != 0 || ds.TotalRows != 3600 || ds.IngestedRows != 600 {
		t.Fatalf("metrics dataset block: %+v", ds)
	}
	foundMaxent := false
	for _, e := range mr.Estimators {
		if e.Name == "demo/maxent" {
			foundMaxent = true
			if e.Generation != 2 {
				t.Fatalf("demo/maxent generation = %d, want 2 after one swap", e.Generation)
			}
		}
	}
	if !foundMaxent {
		t.Fatal("metrics: demo/maxent missing")
	}

	// Served answers must reflect the new data: 600 new region=3 rows on a
	// 3000-row base. The summary is approximate, so just require the bulk
	// of the mass to show up.
	after := queryCount()
	if after < before+400 {
		t.Fatalf("count(region=LATAM) %g -> %g after ingesting 600 such rows; refresh not visible", before, after)
	}

	// The exact engine must have been swapped to the grown relation too.
	resp, body = postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "demo/exact", Predicate: pred})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact query: status %d: %s", resp.StatusCode, body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if want := float64(before) + 600; qr.Count < want-1 || qr.Count > want+1 {
		// before is the maxent estimate; compare loosely against exact.
		exactBefore := qr.Count - 600
		if exactBefore < 0 {
			t.Fatalf("exact count(region=3) = %g after ingest, too small", qr.Count)
		}
	}
}

// TestIngestCSVBody round-trips a CSV ingest: raw values (labels and
// numbers) encoded server-side.
func TestIngestCSVBody(t *testing.T) {
	ts, _, _, live := newLiveServer(t, 1000, server.LiveOptions{
		Dataset: server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}}},
	})
	body := "LATAM,f,web,999.5\nAPAC,a,store,0\n"
	resp, err := http.Post(ts.URL+"/ingest/demo", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir server.IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ir.Accepted != 2 {
		t.Fatalf("csv ingest: status %d, result %+v", resp.StatusCode, ir)
	}
	if got := live.Mutable().NumRows(); got != 1002 {
		t.Fatalf("rows = %d, want 1002", got)
	}

	// Malformed CSV (unknown label) is a 400 and appends nothing.
	resp2, err := http.Post(ts.URL+"/ingest/demo", "text/csv", strings.NewReader("NOPE,a,web,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad csv: status %d, want 400", resp2.StatusCode)
	}
	if got := live.Mutable().NumRows(); got != 1002 {
		t.Fatalf("bad csv appended rows: %d", got)
	}
}

// TestIngestValidation exercises the failure paths of the ingest endpoint.
func TestIngestValidation(t *testing.T) {
	ts, _, _, _ := newLiveServer(t, 500, server.LiveOptions{
		Dataset: server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 100}}},
	})

	resp, _ := postJSON(t, ts.URL+"/ingest/unknown", server.IngestRequest{Rows: syntheticRows(1, 0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: [][]int{{1, 2}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong arity: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: [][]int{{99, 0, 0, 0}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out of domain: status %d, want 400", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/ingest/demo", nil)
	if err != nil {
		t.Fatal(err)
	}
	getResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", getResp.StatusCode)
	}
}

// TestSwapWhileQuerying is the dedicated swap/read race test: queries
// hammer the registry over HTTP while estimator versions are hot-swapped
// concurrently. Every request must succeed (zero downtime) and, under
// -race, the registry/cache surfaces must be data-race-free.
func TestSwapWhileQuerying(t *testing.T) {
	ts, reg, _, _ := newLiveServer(t, 1500, server.LiveOptions{
		Dataset: server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 100}}},
	})

	pred := query.NewPredicate(4)
	pred.WhereEq(0, 1)
	reqBody, err := json.Marshal(server.QueryRequest{Estimator: "demo/exact", Predicate: pred})
	if err != nil {
		t.Fatal(err)
	}

	var failures atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	// Swap the exact engine repeatedly while the readers run.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		rel := experiment.SyntheticRelation(100+i, rng)
		if _, err := reg.Swap("demo/exact", exact.New(rel), rel.Schema()); err != nil {
			t.Fatal(err)
		}
	}
	ent, ok := reg.Get("demo/exact")
	if !ok || ent.Generation != 51 {
		t.Fatalf("after 50 swaps: ok=%t generation=%d, want 51", ok, ent.Generation)
	}
	close(stop)
	readers.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during hot swaps; swaps must be zero-downtime", n)
	}
}

// TestIngestRefreshWhileQuerying drives the full ingest→refresh→swap path
// while queries are in flight — the end-to-end zero-downtime check
// (meaningful under -race).
func TestIngestRefreshWhileQuerying(t *testing.T) {
	ts, _, _, _ := newLiveServer(t, 2000, server.LiveOptions{
		Dataset:     server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}}},
		RefreshRows: 100,
	})

	pred := query.NewPredicate(4)
	pred.WhereEq(1, 2)
	queryBody, err := json.Marshal(server.QueryRequest{Estimator: "demo/maxent", Predicate: pred})
	if err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(queryBody))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}

	refreshes := 0
	for i := 0; i < 10; i++ {
		resp, body := postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: syntheticRows(120, i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, body)
		}
		var ir server.IngestResult
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Refreshed {
			refreshes++
		}
	}
	close(stop)
	readers.Wait()
	if refreshes == 0 {
		t.Fatal("no ingest crossed the refresh threshold")
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during ingest-triggered swaps", n)
	}
	// Final state: all ingested rows are served.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mr server.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Datasets) != 1 || mr.Datasets[0].TotalRows != 2000+10*120 {
		t.Fatalf("metrics: %+v", mr.Datasets)
	}
}

// TestRefreshPublishesSnapshots checks snapshot publication + pinning:
// every refresh saves a new version of the model estimators and keeps the
// served version safe from pruning.
func TestRefreshPublishesSnapshots(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(1000, rand.New(rand.NewSource(1))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary:   summary.Options{Solver: solver.Options{MaxSweeps: 200}},
			SkipExact: true,
			Store:     st,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 3; round++ {
		if _, err := live.Ingest(syntheticRows(50, round)); err != nil {
			t.Fatal(err)
		}
		if _, err := live.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	man, err := st.Versions("demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	// v1 from the build, v2..v4 from the refreshes.
	if len(man.Snapshots) != 4 {
		t.Fatalf("%d snapshot versions, want 4", len(man.Snapshots))
	}
	pinned := st.Pinned("demo/maxent")
	if len(pinned) != 1 || pinned[0] != 4 {
		t.Fatalf("pinned = %v, want [4] (the served version)", pinned)
	}
	// Pruning keeps the pinned (served) version by construction here (it
	// is also the newest); prune everything else and restore from it.
	if _, err := st.Prune("demo/maxent", 1); err != nil {
		t.Fatal(err)
	}
	restored, _, err := st.Load("demo/maxent", 0)
	if err != nil {
		t.Fatal(err)
	}
	wantN := float64(1000 + 3*50)
	if got := restored.(*summary.Summary).N(); got != wantN {
		t.Fatalf("restored snapshot covers %g rows, want %g", got, wantN)
	}
}

// TestIngestReportsPublishFailureWithoutFailing pins the accepted-rows
// contract: once a batch is appended, even a snapshot-publication
// failure during the triggered refresh must come back as refresh_error
// on a success response — a 500 would invite the client to re-send rows
// that are already in.
func TestIngestReportsPublishFailureWithoutFailing(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(1000, rand.New(rand.NewSource(1))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary:   summary.Options{Solver: solver.Options{MaxSweeps: 200}},
			SkipExact: true,
			Store:     st,
		},
		RefreshRows: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Make snapshot publication fail (works even as root, where a chmod
	// would be bypassed): the dataset key's directory path is occupied by
	// a regular file, so Save's MkdirAll errors.
	dsDir := filepath.Join(dir, "demo", "maxent")
	if err := os.RemoveAll(dsDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dsDir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := live.Ingest(syntheticRows(20, 1))
	if err != nil {
		t.Fatalf("ingest failed outright despite the rows being appended: %v", err)
	}
	if res.Accepted != 20 {
		t.Fatalf("accepted = %d, want 20", res.Accepted)
	}
	if res.RefreshError == "" {
		t.Fatal("publication failure was not reported in refresh_error")
	}
	if !res.Refreshed || res.PendingRows != 0 || res.Generation != 2 {
		t.Fatalf("swap should still have happened: %+v", res)
	}
	// The swapped model serves the ingested rows even though the snapshot
	// could not be published.
	ent, ok := reg.Get("demo/maxent")
	if !ok || ent.Generation != 2 {
		t.Fatalf("demo/maxent generation = %d, want 2", ent.Generation)
	}
	if got := ent.Estimator.(*summary.Summary).N(); got != 1020 {
		t.Fatalf("served summary covers %g rows, want 1020", got)
	}
}

// TestCacheInvalidationOnSwap checks that a hot swap cannot serve cached
// answers of the previous generation.
func TestCacheInvalidationOnSwap(t *testing.T) {
	ts, _, srv, live := newLiveServer(t, 2000, server.LiveOptions{
		Dataset: server.DatasetOptions{Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}}},
	})

	pred := query.NewPredicate(4)
	pred.WhereEq(0, 2)
	ask := func() (float64, bool) {
		resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "demo/exact", Predicate: pred})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: status %d: %s", resp.StatusCode, body)
		}
		var qr server.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr.Count, qr.Cached
	}

	first, cached := ask()
	if cached {
		t.Fatal("first query reported cached")
	}
	if _, cached = ask(); !cached {
		t.Fatal("second identical query missed the cache")
	}

	// Ingest 300 region=APAC rows and refresh: the cached exact count is
	// stale now and must not be served.
	if _, err := live.Ingest(syntheticRows(300, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, cached := ask()
	if cached {
		t.Fatal("post-swap query served a cached answer from the previous generation")
	}
	if after != first+300 {
		t.Fatalf("exact count after ingest = %g, want %g", after, first+300)
	}
	if srv.Cache().Stats().Invalidations == 0 {
		t.Fatal("swap did not invalidate any cache entries")
	}
}
