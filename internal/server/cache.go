package server

import (
	"container/list"
	"hash/maphash"
	"runtime"
	"strings"
	"sync"
)

// Cache is a bounded LRU result cache, hash-sharded so concurrent workers
// never contend on a single mutex: keys are distributed over P =
// GOMAXPROCS (rounded up to a power of two) independent LRU shards, each
// with its own lock, capacity slice, and hit/miss accounting. Keys are
// the canonical query strings of the server (estimator name + generation
// + query kind + predicate CanonicalKey), so two requests hit the same
// entry iff the estimator would compute the identical answer — and
// because a key always lands on the same shard, the single-shard LRU
// semantics (recency, eviction, refresh) are preserved per key. Values
// are stored as returned — callers must not mutate cached group slices.
type Cache struct {
	shards []*cacheShard
	mask   uint64
	seed   maphash.Seed
}

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu            sync.Mutex
	capacity      int
	ll            *list.List // front = most recently used
	items         map[string]*list.Element
	hits, misses  uint64
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key string
	val interface{}
}

// NewCache returns an LRU cache bounded to capacity entries in total,
// sharded GOMAXPROCS-wide. A capacity <= 0 disables caching: Get always
// misses and Put is a no-op.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, runtime.GOMAXPROCS(0))
}

// NewCacheSharded is NewCache with an explicit shard count (rounded up to
// a power of two), for tests and tuning. The total capacity is divided
// evenly across shards, each shard receiving at least one entry.
func NewCacheSharded(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	p := 1
	for p < shards {
		p <<= 1
	}
	c := &Cache{
		shards: make([]*cacheShard, p),
		mask:   uint64(p - 1),
		seed:   maphash.MakeSeed(),
	}
	per := 0
	if capacity > 0 {
		per = (capacity + p - 1) / p
		if per < 1 {
			per = 1
		}
	} else {
		per = capacity // <= 0 disables every shard
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			capacity: per,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
		}
	}
	return c
}

// shard maps a key to its home shard.
func (c *Cache) shard(key string) *cacheShard {
	return c.shards[maphash.String(c.seed, key)&c.mask]
}

// NumShards returns the shard count (a power of two).
func (c *Cache) NumShards() int { return len(c.shards) }

// Get returns the cached value for key and marks it most recently used in
// its shard.
func (c *Cache) Get(key string) (interface{}, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) the value under key, evicting the least
// recently used entry of the key's shard when that shard is full.
func (c *Cache) Put(key string, val interface{}) {
	s := c.shard(key)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// InvalidatePrefix removes every entry whose key starts with prefix and
// returns how many were dropped, fanning out across all shards (a prefix
// spans shards — only full keys hash to a home). The serving layer calls
// it after an estimator hot-swap to reclaim the replaced generation's
// results — correctness does not depend on it (cache keys embed the entry
// generation), it just stops dead entries from occupying LRU capacity
// until they age out. Cost is O(total entries), acceptable at the cache
// sizes the server runs (thousands).
func (c *Cache) InvalidatePrefix(prefix string) int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for key, el := range s.items {
			if strings.HasPrefix(key, prefix) {
				s.ll.Remove(el)
				delete(s.items, key)
				dropped++
				s.invalidations++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// CacheShardStats is the per-shard accounting on /metrics; it shows how
// evenly keys spread and whether any one shard's lock is hot.
type CacheShardStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// CacheStats is the accounting snapshot exposed on /metrics: totals
// aggregated across shards plus the per-shard breakdown.
type CacheStats struct {
	Capacity      int     `json:"capacity"`
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	HitRatio      float64 `json:"hit_ratio"`
	// Shards is the per-shard breakdown, index = shard number.
	Shards []CacheShardStats `json:"shards,omitempty"`
}

// Stats returns a snapshot of the cache counters. Each shard is
// snapshotted under its own lock; the aggregate is consistent per shard
// (not across shards, which concurrent traffic makes meaningless anyway).
func (c *Cache) Stats() CacheStats {
	out := CacheStats{Shards: make([]CacheShardStats, len(c.shards))}
	disabled := false
	for i, s := range c.shards {
		s.mu.Lock()
		ss := CacheShardStats{
			Entries:   s.ll.Len(),
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
		}
		if s.capacity > 0 {
			out.Capacity += s.capacity
		} else {
			disabled = true
		}
		out.Invalidations += s.invalidations
		s.mu.Unlock()
		out.Shards[i] = ss
		out.Entries += ss.Entries
		out.Hits += ss.Hits
		out.Misses += ss.Misses
		out.Evictions += ss.Evictions
	}
	if disabled {
		out.Capacity = c.shards[0].capacity // preserve the disabled marker
		out.Shards = nil
	}
	if total := out.Hits + out.Misses; total > 0 {
		out.HitRatio = float64(out.Hits) / float64(total)
	}
	return out
}
