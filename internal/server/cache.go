package server

import (
	"container/list"
	"strings"
	"sync"
)

// Cache is a bounded LRU result cache with hit/miss accounting. Keys are
// the canonical query strings of the server (estimator name + query kind +
// predicate CanonicalKey), so two requests hit the same entry iff the
// estimator would compute the identical answer. Values are stored as
// returned — callers must not mutate cached group slices.
type Cache struct {
	mu            sync.Mutex
	capacity      int
	ll            *list.List // front = most recently used
	items         map[string]*list.Element
	hits, misses  uint64
	evictions     uint64
	invalidations uint64
}

type cacheEntry struct {
	key string
	val interface{}
}

// NewCache returns an LRU cache bounded to capacity entries. A capacity
// <= 0 disables caching: Get always misses and Put is a no-op.
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put inserts (or refreshes) the value under key, evicting the least
// recently used entry when the cache is full.
func (c *Cache) Put(key string, val interface{}) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// InvalidatePrefix removes every entry whose key starts with prefix and
// returns how many were dropped. The serving layer calls it after an
// estimator hot-swap to reclaim the replaced generation's results —
// correctness does not depend on it (cache keys embed the entry
// generation), it just stops dead entries from occupying LRU capacity
// until they age out. Cost is O(entries), acceptable at the cache sizes
// the server runs (thousands).
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			dropped++
		}
	}
	c.invalidations += uint64(dropped)
	return dropped
}

// CacheStats is the accounting snapshot exposed on /metrics.
type CacheStats struct {
	Capacity      int     `json:"capacity"`
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	HitRatio      float64 `json:"hit_ratio"`
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Capacity:      c.capacity,
		Entries:       c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}
