package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/experiment"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/store"
	"repro/internal/summary"
)

// TestSyncSnapshotTransfer proves the peer-sync wire end to end: a frame
// fetched over GET /sync/snapshot imports into a second node's store at
// the origin's version number, and the restored estimator answers
// bit-identically.
func TestSyncSnapshotTransfer(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(2000, rand.New(rand.NewSource(1)))
	if _, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{Store: st}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{Store: st})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/sync/snapshot?dataset=demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	framed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sync/snapshot: %d %s", resp.StatusCode, framed)
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.SnapshotContentType {
		t.Fatalf("Content-Type %q, want %q", ct, server.SnapshotContentType)
	}
	version, err := strconv.Atoi(resp.Header.Get(server.SnapshotVersionHeader))
	if err != nil || version < 1 {
		t.Fatalf("bad %s header %q", server.SnapshotVersionHeader, resp.Header.Get(server.SnapshotVersionHeader))
	}

	peer, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	info, err := peer.ImportFramed("demo/maxent", version, framed)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != version {
		t.Fatalf("imported at v%d, want v%d", info.Version, version)
	}
	est, _, err := peer.Load("demo/maxent", version)
	if err != nil {
		t.Fatal(err)
	}
	origin, _ := reg.Get("demo/maxent")
	want, _ := origin.Estimator.EstimateCount(nil)
	got, _ := est.EstimateCount(nil)
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("synced estimator answers %v, origin answers %v", got, want)
	}

	// Error surface: unknown dataset and missing parameter.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/sync/snapshot?dataset=demo/maxent&version=999", http.StatusNotFound},
		{"/sync/snapshot?dataset=nope/maxent", http.StatusNotFound},
		{"/sync/snapshot", http.StatusBadRequest},
		{"/sync/snapshot?dataset=demo/maxent&version=-3", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("GET %s: %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}

	// A store-less node serves 501, mirroring the other snapshot routes.
	bare := httptest.NewServer(server.New(server.NewRegistry(), server.Options{}).Handler())
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/sync/snapshot?dataset=demo/maxent")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("store-less /sync/snapshot: %d, want 501", resp.StatusCode)
	}
}

// TestSyncNotifyHook proves POST /sync/notify invokes the node's sync
// hook with the requested dataset, and degrades to a harmless no-op on
// nodes without one.
func TestSyncNotifyHook(t *testing.T) {
	var notified []string
	srv := server.New(server.NewRegistry(), server.Options{
		SyncNotify: func(dataset string) { notified = append(notified, dataset) },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(url string, body []byte) (int, server.SyncNotifyResponse) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out server.SyncNotifyResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	code, out := post(ts.URL+"/sync/notify", []byte(`{"dataset":"demo"}`))
	if code != http.StatusOK || !out.Accepted {
		t.Fatalf("notify: %d accepted=%v", code, out.Accepted)
	}
	code, out = post(ts.URL+"/sync/notify", nil)
	if code != http.StatusOK || !out.Accepted {
		t.Fatalf("empty-body notify: %d accepted=%v", code, out.Accepted)
	}
	if len(notified) != 2 || notified[0] != "demo" || notified[1] != "" {
		t.Fatalf("hook saw %q, want [demo \"\"]", notified)
	}

	hookless := httptest.NewServer(server.New(server.NewRegistry(), server.Options{}).Handler())
	defer hookless.Close()
	code, out = post(hookless.URL+"/sync/notify", []byte(`{}`))
	if code != http.StatusOK || out.Accepted {
		t.Fatalf("hook-less notify: %d accepted=%v, want 200/false", code, out.Accepted)
	}
}

// TestExposePartitionsScatterEquivalence proves the fleet placement
// identity: querying the exposed per-partition entries and summing in
// partition index order is bit-identical to the whole Partitioned
// estimator — the invariant that lets a router scatter partitions across
// nodes and merge remotely.
func TestExposePartitionsScatterEquivalence(t *testing.T) {
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(3000, rand.New(rand.NewSource(2)))
	if _, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{Partitions: 3}); err != nil {
		t.Fatal(err)
	}
	names, err := server.ExposePartitions(reg, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("exposed %v, want 3 partition entries", names)
	}
	whole, _ := reg.Get("demo/partitioned")

	rng := rand.New(rand.NewSource(3))
	for _, q := range experiment.GenerateWorkload(experiment.SyntheticSchema(), 16, rng) {
		if q.IsGroupBy() {
			continue
		}
		want, err := whole.Estimator.EstimateCount(q.Pred)
		if err != nil {
			continue
		}
		got := 0.0
		for k := 0; k < 3; k++ {
			ent, ok := reg.Get(server.PartitionEntryName("demo", k))
			if !ok {
				t.Fatalf("partition entry %d missing", k)
			}
			part, err := ent.Estimator.EstimateCount(q.Pred)
			if err != nil {
				t.Fatal(err)
			}
			got += part
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("scattered sum %v, partitioned answer %v", got, want)
		}
	}

	// Exposing twice collides with the registered names.
	if _, err := server.ExposePartitions(reg, "demo"); err == nil {
		t.Fatal("second ExposePartitions succeeded")
	}
}

// TestRefreshSwapsPartitionEntries proves a live refresh carries exposed
// partition entries along: after an ingest-triggered refresh the
// partition entries serve the rebuilt partitions, so the scatter identity
// still holds on the new generation.
func TestRefreshSwapsPartitionEntries(t *testing.T) {
	reg := server.NewRegistry()
	mut := relation.NewMutable(experiment.SyntheticRelation(2000, rand.New(rand.NewSource(4))))
	live, _, err := server.BuildLiveDataset(reg, "demo", mut, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary:    summary.Options{Solver: solver.Options{MaxSweeps: 60}},
			Partitions: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.ExposePartitions(reg, "demo"); err != nil {
		t.Fatal(err)
	}

	if _, err := live.Ingest(syntheticRows(400, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := live.Refresh(); err != nil {
		t.Fatal(err)
	}

	whole, _ := reg.Get("demo/partitioned")
	if whole.Generation != 2 {
		t.Fatalf("partitioned generation %d after refresh, want 2", whole.Generation)
	}
	got := 0.0
	for k := 0; k < 2; k++ {
		ent, ok := reg.Get(server.PartitionEntryName("demo", k))
		if !ok {
			t.Fatalf("partition entry %d missing", k)
		}
		if ent.Generation != 2 {
			t.Fatalf("partition entry %d generation %d, want 2 (refresh must swap exposed partitions)", k, ent.Generation)
		}
		part, err := ent.Estimator.EstimateCount(nil)
		if err != nil {
			t.Fatal(err)
		}
		got += part
	}
	want, _ := whole.Estimator.EstimateCount(nil)
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("scattered sum %v after refresh, partitioned answer %v", got, want)
	}
}
