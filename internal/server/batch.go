package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/query"
)

// BinaryBatchContentType is the media type of the binary batch frames on
// POST /query/batch (request and response; the frame magic distinguishes
// the two directions). Anything else is treated as JSON.
const BinaryBatchContentType = "application/x-entropydb-batch"

// BatchQueryItem is one query of a JSON POST /query/batch body. An empty
// group_by asks for a count; a non-empty one for a group-by.
type BatchQueryItem struct {
	Predicate *query.Predicate `json:"predicate,omitempty"`
	GroupBy   []int            `json:"group_by,omitempty"`
}

// BatchQueryRequest is the JSON body of POST /query/batch. Version > 0
// answers the whole batch from that retained snapshot of the estimator's
// dataset key (the binary wire carries the same field in its format v2
// frame); a ?version=N URL parameter overrides it on either wire.
type BatchQueryRequest struct {
	Estimator string           `json:"estimator"`
	Version   int              `json:"version,omitempty"`
	Queries   []BatchQueryItem `json:"queries"`
}

// BatchResult is one answer of a JSON batch response. Exactly one of
// count/groups/error is meaningful: error for a per-query failure, groups
// when is_group, count otherwise.
type BatchResult struct {
	Count   float64    `json:"count"`
	Groups  []GroupRow `json:"groups,omitempty"`
	IsGroup bool       `json:"is_group,omitempty"`
	Cached  bool       `json:"cached,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// BatchQueryResponse is the JSON body of a successful POST /query/batch.
// Version echoes the snapshot version that answered (0 = live).
type BatchQueryResponse struct {
	Estimator string        `json:"estimator"`
	Version   int           `json:"version,omitempty"`
	Answers   []BatchResult `json:"answers"`
	LatencyNS int64         `json:"latency_ns"`
}

// handleBatch serves POST /query/batch: N queries answered in one round
// trip. The request wire is chosen by Content-Type and the response wire
// by Accept (defaulting to mirror the request); both JSON and the binary
// frame of internal/query are supported, and they produce bit-identical
// answers because both paths share queryKey, the cache, and the
// estimators.
//
// Batch-level problems (malformed body, unknown estimator, empty or
// oversized batch, admission failure) are HTTP errors; per-query problems
// (arity mismatch, estimator refusal) land in that answer's error field
// under a 200, so one bad query cannot void its batchmates. Cache hits are
// served without touching the worker pool; all misses of a batch are
// evaluated under a single admission slot — the batch pays one queue wait,
// not N.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := s.opts.Now()
	failed := false
	defer func() { s.metrics.Record(s.opts.Now().Sub(start), failed) }()
	fail := func(herr *httpError) {
		failed = true
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
	}
	if r.Method != http.MethodPost {
		fail(&httpError{status: http.StatusMethodNotAllowed, msg: "use POST"})
		return
	}
	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), BinaryBatchContentType)
	binaryResp := wantBinaryAnswers(r.Header.Get("Accept"), binaryReq)
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)}

	var estimator string
	var version int
	var items []query.BatchItem
	if binaryReq {
		var err error
		estimator, version, items, err = query.DecodeBatchAt(body)
		if err != nil {
			fail(badRequest("malformed batch frame: %v", err))
			return
		}
	} else {
		var req BatchQueryRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			fail(badRequest("malformed request body: %v", err))
			return
		}
		estimator = req.Estimator
		version = req.Version
		items = make([]query.BatchItem, len(req.Queries))
		for i, q := range req.Queries {
			items[i] = query.BatchItem{Pred: q.Predicate, GroupBy: q.GroupBy}
		}
	}
	if v, herr := urlVersion(r); herr != nil {
		fail(herr)
		return
	} else if v >= 0 {
		version = v
	}
	if len(items) == 0 {
		fail(badRequest("batch is empty"))
		return
	}
	if len(items) > s.opts.MaxBatch {
		fail(badRequest("batch of %d queries exceeds the limit of %d", len(items), s.opts.MaxBatch))
		return
	}
	// Resolve the estimator once: every answer of a batch comes from the
	// same registry snapshot (name + generation, or name + snapshot
	// version for a time-travel batch), even if an ingest swaps the
	// estimator mid-flight.
	ent, herr := s.lookupEntry(estimator, version)
	if herr != nil {
		fail(herr)
		return
	}
	setGenerationHeader(w, ent)
	s.metrics.RecordBatch(len(items), body.n, binaryReq)

	answers := make([]query.BatchAnswer, len(items))
	type miss struct {
		idx int
		key string
	}
	// Sized lazily on the first miss: an all-hit batch (the steady state a
	// warm cache serves) never allocates the slice at all.
	var misses []miss
	for i, it := range items {
		kind := "c"
		if len(it.GroupBy) > 0 {
			kind = "g"
		}
		key, err := queryKey(ent, kind, it.Pred, it.GroupBy)
		if err != nil {
			answers[i] = query.BatchAnswer{IsGroup: kind == "g", Error: err.Error()}
			continue
		}
		if v, hit := s.cache.Get(key); hit {
			if kind == "g" {
				answers[i] = query.BatchAnswer{IsGroup: true, Groups: toBatchGroups(v.([]GroupRow)), Cached: true}
			} else {
				answers[i] = query.BatchAnswer{Count: v.(float64), Cached: true}
			}
			continue
		}
		answers[i].IsGroup = kind == "g"
		if misses == nil {
			misses = make([]miss, 0, len(items)-i)
		}
		misses = append(misses, miss{idx: i, key: key})
	}

	if len(misses) > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
		defer cancel()
		_, herr := s.execute(ctx, func() (interface{}, error) {
			for _, m := range misses {
				it := items[m.idx]
				if len(it.GroupBy) > 0 {
					groups, err := ent.Estimator.EstimateGroupBy(it.GroupBy, it.Pred)
					if err != nil {
						answers[m.idx].Error = err.Error()
						continue
					}
					rows := toGroupRows(groups)
					s.cache.Put(m.key, rows)
					answers[m.idx].Groups = toBatchGroups(rows)
				} else {
					count, err := ent.Estimator.EstimateCount(it.Pred)
					if err != nil {
						answers[m.idx].Error = err.Error()
						continue
					}
					s.cache.Put(m.key, count)
					answers[m.idx].Count = count
				}
			}
			return nil, nil
		})
		if herr != nil {
			// 503 (no slot) or 504 (timed out mid-batch): the whole batch
			// fails — partial answers are not reported.
			fail(herr)
			return
		}
	}

	if binaryResp {
		rb := respBufPool.Get().(*respBuf)
		frame, err := query.AppendAnswers(rb.b[:0], ent.Name, answers)
		if err != nil {
			respBufPool.Put(rb)
			fail(&httpError{status: http.StatusInternalServerError, msg: err.Error()})
			return
		}
		rb.b = frame
		w.Header().Set("Content-Type", BinaryBatchContentType)
		w.WriteHeader(http.StatusOK)
		// Write copies the frame into the HTTP buffer, so the buffer can go
		// back to the pool right after.
		_, _ = w.Write(frame)
		respBufPool.Put(rb)
		return
	}
	resp := BatchQueryResponse{
		Estimator: ent.Name,
		Version:   ent.Snapshot,
		Answers:   make([]BatchResult, len(answers)),
		LatencyNS: s.opts.Now().Sub(start).Nanoseconds(),
	}
	for i, a := range answers {
		resp.Answers[i] = BatchResult{
			Count:   a.Count,
			Groups:  toGroupRowsFromBatch(a.Groups),
			IsGroup: a.IsGroup,
			Cached:  a.Cached,
			Error:   a.Error,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// respBuf wraps the pooled binary-response buffer (a pointer-shaped pool
// entry, so Put never allocates).
type respBuf struct{ b []byte }

// respBufPool recycles binary batch response buffers across requests:
// after warm-up, assembling a cached-answer frame allocates nothing.
var respBufPool = sync.Pool{New: func() interface{} { return new(respBuf) }}

// wantBinaryAnswers picks the response wire: an explicit Accept wins,
// otherwise the response mirrors the request format.
func wantBinaryAnswers(accept string, binaryReq bool) bool {
	if strings.Contains(accept, BinaryBatchContentType) {
		return true
	}
	if strings.Contains(accept, "application/json") {
		return false
	}
	return binaryReq
}

// countingReader counts consumed body bytes for the bytes-per-query
// histogram (Content-Length may be absent on chunked uploads).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func toBatchGroups(rows []GroupRow) []query.BatchGroup {
	if rows == nil {
		return nil
	}
	out := make([]query.BatchGroup, len(rows))
	for i, g := range rows {
		out[i] = query.BatchGroup{Values: g.Values, Estimate: g.Estimate}
	}
	return out
}

func toGroupRowsFromBatch(groups []query.BatchGroup) []GroupRow {
	if groups == nil {
		return nil
	}
	out := make([]GroupRow, len(groups))
	for i, g := range groups {
		out[i] = GroupRow{Values: g.Values, Estimate: g.Estimate}
	}
	return out
}
