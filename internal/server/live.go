package server

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/relation"
	"repro/internal/sampling"
	"repro/internal/schema"
	"repro/internal/store"
	"repro/internal/summary"
)

// LiveOptions configure live ingestion for one dataset.
type LiveOptions struct {
	// Dataset are the build options the dataset's estimators were (or will
	// be) built with; refreshes maintain exactly the strategy set these
	// options produced.
	Dataset DatasetOptions
	// RefreshRows is the auto-refresh threshold: when at least this many
	// rows are pending after an ingest, the ingest triggers a refresh
	// before returning (0 disables threshold-based refreshing; Refresh can
	// still be called explicitly, e.g. from an interval ticker).
	RefreshRows int
	// DriftThreshold is passed to summary.Refresh (0 selects its default).
	DriftThreshold float64
}

// Live couples one dataset's mutable relation with the registry entries
// serving it: appends accumulate in the relation, and Refresh folds them
// into every registered estimator of the dataset with an atomic hot swap —
// queries keep flowing against the previous versions until the new ones
// are ready, then switch all at once.
type Live struct {
	dataset string
	reg     *Registry
	st      *store.Store
	opts    LiveOptions
	mut     *relation.Mutable
	now     func() time.Time

	// refreshMu serializes refreshes (the expensive build+swap+publish
	// sequence) without blocking the cheap paths: counters and Status()
	// are guarded by mu alone, so /metrics and ingest responses never
	// wait behind a solve. pinned is touched only by refresh paths, so
	// refreshMu guards it too.
	refreshMu sync.Mutex
	pinned    map[string]int // store key → version pinned for serving

	mu           sync.Mutex
	cache        *Cache // set by Server.AttachLive; nil until then
	servedRows   int
	generation   uint64
	ingestedRows uint64
	ingests      uint64
	refreshes    uint64
	rebuilds     uint64
	lastRefresh  time.Time
}

// NewLive wires live ingestion over a dataset whose estimators are
// already registered (either by BuildDataset or by a snapshot restore).
// The mutable relation must hold exactly the rows the registered MaxEnt
// summary covers; st may be nil (no snapshot publication).
func NewLive(reg *Registry, dataset string, mut *relation.Mutable, st *store.Store, opts LiveOptions) (*Live, error) {
	if dataset == "" {
		return nil, errors.New("server: live dataset name must not be empty")
	}
	ent, ok := reg.Get(dataset + "/maxent")
	if !ok {
		return nil, fmt.Errorf("server: live dataset %q: no %q registered", dataset, dataset+"/maxent")
	}
	sum, ok := ent.Estimator.(*summary.Summary)
	if !ok {
		return nil, fmt.Errorf("server: live dataset %q: %q is a %T, want a refreshable summary",
			dataset, ent.Name, ent.Estimator)
	}
	if got, want := mut.NumRows(), int(sum.N()); got != want {
		return nil, fmt.Errorf("server: live dataset %q: relation has %d rows, served summary covers %d",
			dataset, got, want)
	}
	// Row count alone cannot tell a regenerated relation from the one the
	// summary was built over (e.g. same -rows, different -seed on a
	// snapshot restart). The complete 1D statistic families are an exact
	// content fingerprint of the per-attribute histograms — compare them,
	// so a refresh can never silently fold deltas into a model of
	// different base data.
	frozen, _ := mut.Freeze()
	set := sum.Stats()
	if len(set.OneD) != frozen.NumAttrs() {
		return nil, fmt.Errorf("server: live dataset %q: summary covers %d attributes, relation has %d",
			dataset, len(set.OneD), frozen.NumAttrs())
	}
	for a := range set.OneD {
		hist := frozen.Histogram1D(a)
		if len(hist) != len(set.OneD[a]) {
			return nil, fmt.Errorf("server: live dataset %q: attribute %d domain size %d vs summary's %d",
				dataset, a, len(hist), len(set.OneD[a]))
		}
		for v, c := range hist {
			if float64(c) != set.OneD[a][v] {
				return nil, fmt.Errorf("server: live dataset %q: relation content differs from the served summary's statistics (attribute %d value %d: %d rows vs statistic %g)",
					dataset, a, v, c, set.OneD[a][v])
			}
		}
	}
	l := &Live{
		dataset:    dataset,
		reg:        reg,
		st:         st,
		opts:       opts,
		mut:        mut,
		servedRows: mut.NumRows(),
		generation: 1,
		pinned:     make(map[string]int),
		now:        time.Now,
	}
	// Pin whatever snapshot versions currently back the served entries, so
	// a concurrent prune cannot delete the version a restart would need.
	if st != nil {
		for _, key := range []string{dataset + "/maxent", dataset + "/partitioned"} {
			if man, err := st.Versions(key); err == nil {
				if last, ok := man.Latest(); ok {
					st.Pin(key, last.Version)
					l.pinned[key] = last.Version
				}
			}
		}
	}
	return l, nil
}

// BuildLiveDataset builds and registers the dataset's estimators over the
// relation's current rows (see BuildDataset) and returns the Live handle
// managing its ingestion lifecycle, plus the registered names.
func BuildLiveDataset(reg *Registry, dataset string, mut *relation.Mutable, opts LiveOptions) (*Live, []string, error) {
	frozen, _ := mut.Freeze()
	names, err := BuildDataset(reg, dataset, frozen, opts.Dataset)
	if err != nil {
		return nil, nil, err
	}
	live, err := NewLive(reg, dataset, mut, opts.Dataset.Store, opts)
	if err != nil {
		return nil, nil, err
	}
	return live, names, nil
}

// Dataset returns the dataset name.
func (l *Live) Dataset() string { return l.dataset }

// Mutable returns the live relation.
func (l *Live) Mutable() *relation.Mutable { return l.mut }

// attachCache hands the server's result cache to the live dataset so
// refreshes can reclaim replaced entries.
func (l *Live) attachCache(c *Cache) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cache = c
}

// IngestResult is the outcome of one ingest batch (the body of a
// successful POST /ingest/{dataset}).
type IngestResult struct {
	Dataset     string `json:"dataset"`
	Accepted    int    `json:"accepted"`
	TotalRows   int    `json:"total_rows"`
	PendingRows int    `json:"pending_rows"`
	Generation  uint64 `json:"generation"`
	// Refreshed reports whether this ingest crossed the refresh threshold
	// and hot-swapped new estimator versions before returning.
	Refreshed bool `json:"refreshed"`
	// RefreshNS is the refresh duration when Refreshed is true.
	RefreshNS int64 `json:"refresh_ns,omitempty"`
	// RefreshError reports a failed (or partially failed, e.g. snapshot
	// publication) threshold-triggered refresh. The append itself
	// succeeded — the rows are in and will be folded in by the next
	// refresh — so this is informational, not a request failure: clients
	// must NOT retry the batch.
	RefreshError string `json:"refresh_error,omitempty"`
}

// Ingest appends a batch of encoded rows (all-or-nothing) and, when the
// pending backlog crosses the refresh threshold, refreshes the dataset's
// estimators before returning. An error means nothing was appended;
// conversely, once the rows are in, a refresh failure is reported in
// IngestResult.RefreshError rather than as an error, so clients never
// see a failure response for data that was actually accepted (a retry
// would double-ingest it).
func (l *Live) Ingest(rows [][]int) (IngestResult, error) {
	if len(rows) == 0 {
		return IngestResult{}, errors.New("server: ingest batch is empty")
	}
	if _, err := l.mut.AppendRows(rows); err != nil {
		return IngestResult{}, err
	}
	l.mu.Lock()
	l.ingestedRows += uint64(len(rows))
	l.ingests++
	res := IngestResult{
		Dataset:     l.dataset,
		Accepted:    len(rows),
		TotalRows:   l.mut.NumRows(),
		PendingRows: l.mut.NumRows() - l.servedRows,
		Generation:  l.generation,
	}
	needRefresh := l.opts.RefreshRows > 0 && res.PendingRows >= l.opts.RefreshRows
	l.mu.Unlock()

	if needRefresh {
		start := l.now()
		out, err := l.Refresh()
		if err != nil {
			// The append already succeeded, so a refresh (or snapshot
			// publication) failure is reported on the result, never as a
			// request failure — a retry would double-ingest the batch.
			res.RefreshError = err.Error()
		}
		// A concurrent ingest may have refreshed first, leaving this one
		// nothing to fold in; only report a refresh that swapped versions
		// in (which can be true even under a publication error).
		if out.DeltaRows > 0 && len(out.Swapped) > 0 {
			res.Refreshed = true
			res.RefreshNS = l.now().Sub(start).Nanoseconds()
		}
		l.mu.Lock()
		res.PendingRows = l.mut.NumRows() - l.servedRows
		res.Generation = l.generation
		l.mu.Unlock()
	}
	return res, nil
}

// RefreshOutcome reports one refresh.
type RefreshOutcome struct {
	Dataset    string   `json:"dataset"`
	DeltaRows  int      `json:"delta_rows"`
	Rebuilt    bool     `json:"rebuilt"`
	Sweeps     int      `json:"sweeps"`
	Generation uint64   `json:"generation"`
	Swapped    []string `json:"swapped,omitempty"`
}

// Refresh folds all pending rows into new versions of every registered
// estimator of the dataset and hot-swaps them in. With no pending rows it
// is a cheap no-op. All new versions are built before any swap happens,
// so the strategy set moves between consistent states even if a build
// fails halfway. Refreshes are serialized among themselves but never
// block ingest responses or Status/metrics reads.
func (l *Live) Refresh() (RefreshOutcome, error) {
	l.refreshMu.Lock()
	defer l.refreshMu.Unlock()
	return l.refresh()
}

// refresh runs one refresh; the caller holds refreshMu (which is what
// makes the servedRows read-then-advance below safe — only refresh paths
// move it).
func (l *Live) refresh() (RefreshOutcome, error) {
	l.mu.Lock()
	served := l.servedRows
	gen := l.generation
	cache := l.cache
	l.mu.Unlock()

	full, _ := l.mut.Freeze()
	pending := full.NumRows() - served
	out := RefreshOutcome{Dataset: l.dataset, Generation: gen}
	if pending <= 0 {
		return out, nil
	}
	delta, err := full.Slice(served, full.NumRows())
	if err != nil {
		return out, err
	}

	maxentName := l.dataset + "/maxent"
	ent, ok := l.reg.Get(maxentName)
	if !ok {
		return out, fmt.Errorf("server: refresh %q: no %q registered", l.dataset, maxentName)
	}
	sum, ok := ent.Estimator.(*summary.Summary)
	if !ok {
		return out, fmt.Errorf("server: refresh %q: %q is a %T, want a refreshable summary",
			l.dataset, maxentName, ent.Estimator)
	}

	// Stage 1: build every replacement version. Nothing is swapped yet, so
	// a failure here leaves serving untouched.
	newSum, info, err := sum.Refresh(full, delta, summary.RefreshOptions{
		DriftThreshold: l.opts.DriftThreshold,
		Solver:         l.opts.Dataset.Summary.Solver,
	})
	if err != nil {
		return out, fmt.Errorf("server: refresh %q: %w", l.dataset, err)
	}
	type swap struct {
		name string
		est  core.Estimator
		sch  *schema.Schema
		save bool // publish to the snapshot store after the swap
	}
	swaps := []swap{{maxentName, newSum, full.Schema(), true}}

	if _, ok := l.reg.Get(l.dataset + "/exact"); ok {
		swaps = append(swaps, swap{l.dataset + "/exact", exact.New(full), full.Schema(), false})
	}
	if _, ok := l.reg.Get(l.dataset + "/partitioned"); ok {
		base := l.opts.Dataset.Summary
		base.Solver.Workers = 1
		psum, err := summary.BuildPartitioned(full, summary.PartitionedOptions{
			Partitions: l.opts.Dataset.Partitions,
			Base:       base,
		})
		if err != nil {
			return out, fmt.Errorf("server: refresh %q: partitioned rebuild: %w", l.dataset, err)
		}
		swaps = append(swaps, swap{l.dataset + "/partitioned", psum, full.Schema(), true})
		// Partition entries exposed for fleet placement track the rebuilt
		// partitions, so scattered serving never lags the whole-dataset
		// entry by a generation.
		for k := 0; k < psum.NumPartitions(); k++ {
			name := PartitionEntryName(l.dataset, k)
			if _, ok := l.reg.Get(name); ok {
				swaps = append(swaps, swap{name, psum.Partition(k), full.Schema(), true})
			}
		}
	}
	if _, ok := l.reg.Get(l.dataset + "/uniform"); ok {
		// Fold the generation into the seed so successive refreshes draw
		// fresh — but still reproducible — samples of the grown relation.
		uni, err := sampling.UniformSeeded(full, l.opts.Dataset.SampleRate, l.opts.Dataset.SampleSeed+1+int64(gen)<<16)
		if err != nil {
			return out, fmt.Errorf("server: refresh %q: uniform resample: %w", l.dataset, err)
		}
		swaps = append(swaps, swap{l.dataset + "/uniform", uni, full.Schema(), false})
	}
	if _, ok := l.reg.Get(l.dataset + "/stratified"); ok {
		strataAttrs := []int{0}
		if pcs := newSum.ChosenPairs(); len(pcs) > 0 {
			strataAttrs = []int{pcs[0].A1, pcs[0].A2}
		} else if full.Schema().NumAttrs() > 1 {
			strataAttrs = []int{0, 1}
		}
		strat, err := sampling.StratifiedSeeded(full, strataAttrs, l.opts.Dataset.SampleRate, 1, l.opts.Dataset.SampleSeed+2+int64(gen)<<16)
		if err != nil {
			return out, fmt.Errorf("server: refresh %q: stratified resample: %w", l.dataset, err)
		}
		swaps = append(swaps, swap{l.dataset + "/stratified", strat, full.Schema(), false})
	}

	// Stage 2: hot-swap every entry and drop the replaced generations'
	// cached answers. Each individual swap is atomic; queries racing the
	// loop see a consistent (name, estimator, generation) triple per entry.
	for _, sw := range swaps {
		if _, err := l.reg.Swap(sw.name, sw.est, sw.sch); err != nil {
			return out, err
		}
		if cache != nil {
			cache.InvalidatePrefix(sw.name + "\x00")
		}
		out.Swapped = append(out.Swapped, sw.name)
	}

	// Stage 3: publish the new model versions to the snapshot store and
	// move the serving pins forward. Publication failures do not undo the
	// swap — serving the fresh model matters more than persisting it — but
	// they are reported so the operator knows the store is behind.
	var publishErr error
	if l.st != nil {
		for _, sw := range swaps {
			if !sw.save {
				continue
			}
			sinfo, err := l.st.Save(sw.name, sw.est)
			if err != nil {
				publishErr = errors.Join(publishErr, fmt.Errorf("server: refresh %q: snapshot %q: %w", l.dataset, sw.name, err))
				continue
			}
			if old, ok := l.pinned[sw.name]; ok {
				l.st.Unpin(sw.name, old)
			}
			l.st.Pin(sw.name, sinfo.Version)
			l.pinned[sw.name] = sinfo.Version
		}
	}

	l.mu.Lock()
	l.servedRows = full.NumRows()
	l.generation++
	l.refreshes++
	if info.Rebuilt {
		l.rebuilds++
	}
	l.lastRefresh = l.now()
	out.Generation = l.generation
	l.mu.Unlock()

	out.DeltaRows = pending
	out.Rebuilt = info.Rebuilt
	out.Sweeps = info.Solver.Sweeps
	return out, publishErr
}

// LiveStatus is the per-dataset ingestion/staleness block of /metrics.
type LiveStatus struct {
	Dataset      string `json:"dataset"`
	Generation   uint64 `json:"generation"`
	TotalRows    int    `json:"total_rows"`
	ServedRows   int    `json:"served_rows"`
	PendingRows  int    `json:"pending_rows"`
	IngestedRows uint64 `json:"ingested_rows"`
	Ingests      uint64 `json:"ingests"`
	Refreshes    uint64 `json:"refreshes"`
	Rebuilds     uint64 `json:"rebuilds"`
	// LastRefreshUnixNS is 0 until the first refresh.
	LastRefreshUnixNS int64 `json:"last_refresh_unix_ns"`
}

// Status returns the current ingestion counters. PendingRows is the
// staleness measure: rows the served summaries have not seen yet.
func (l *Live) Status() LiveStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := LiveStatus{
		Dataset:      l.dataset,
		Generation:   l.generation,
		TotalRows:    l.mut.NumRows(),
		ServedRows:   l.servedRows,
		IngestedRows: l.ingestedRows,
		Ingests:      l.ingests,
		Refreshes:    l.refreshes,
		Rebuilds:     l.rebuilds,
	}
	st.PendingRows = st.TotalRows - st.ServedRows
	if !l.lastRefresh.IsZero() {
		st.LastRefreshUnixNS = l.lastRefresh.UnixNano()
	}
	return st
}

// --- row decoding ------------------------------------------------------

// DecodeJSONRows validates a batch of already-encoded rows against the
// schema shape (AppendRows re-validates domains; this is just the
// fail-fast arity check for clean 400s).
func DecodeJSONRows(sch *schema.Schema, rows [][]int) error {
	for i, row := range rows {
		if len(row) != sch.NumAttrs() {
			return fmt.Errorf("row %d has %d values, schema has %d attributes", i, len(row), sch.NumAttrs())
		}
	}
	return nil
}

// DecodeCSVRows reads raw CSV rows (no header) and encodes them against
// the schema via relation.EncodeRecord — the same field-encoding path
// offline CSV loading uses, so live and batch ingestion cannot drift.
func DecodeCSVRows(sch *schema.Schema, r io.Reader) ([][]int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var rows [][]int
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csv row %d: %v", line, err)
		}
		tuple, err := relation.EncodeRecord(sch, rec, nil)
		if err != nil {
			return nil, fmt.Errorf("csv row %d: %v", line, err)
		}
		rows = append(rows, tuple)
	}
	if len(rows) == 0 {
		return nil, errors.New("csv body holds no rows")
	}
	return rows, nil
}
