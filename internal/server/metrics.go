package server

import (
	"sort"
	"sync/atomic"
	"time"
)

// latencyWindow is how many recent request latencies the quantile estimates
// are computed over. A power of two keeps the ring index arithmetic cheap.
const latencyWindow = 8192

// Metrics accumulates server-side request accounting: totals, errors, a
// sliding window of latencies for p50/p95 estimation, and batch-shape
// histograms. Everything is atomic — Record on the hot path never takes a
// lock, and a concurrent /metrics read never stalls a request. The ring is
// racy by design: a reader may observe a slot mid-rotation, which skews a
// quantile estimate by one sample at worst.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64

	ring [latencyWindow]atomic.Int64 // nanoseconds, circular
	next atomic.Uint64               // total writes; next slot = next % latencyWindow

	batchRequests atomic.Uint64 // /query/batch calls
	batchQueries  atomic.Uint64 // queries carried by those calls
	batchJSON     atomic.Uint64 // batch calls on the JSON wire
	batchBinary   atomic.Uint64 // batch calls on the binary wire

	batchSize     histogram // queries per batch call
	bytesPerQuery histogram // request body bytes / batch size
}

// histogram is a fixed-bound cumulative histogram with atomic buckets.
// Bounds are "less or equal"; the final implicit bucket is +Inf.
type histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
}

func newHistogram(bounds []uint64) histogram {
	return histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) observe(v uint64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// HistogramBucket is one exported histogram bin: the count of observations
// with value <= LE. LE = 0 marks the +Inf overflow bucket.
type HistogramBucket struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

func (h *histogram) snapshot() []HistogramBucket {
	out := make([]HistogramBucket, 0, len(h.bounds)+1)
	total := uint64(0)
	for i, b := range h.bounds {
		if n := h.counts[i].Load(); n > 0 {
			out = append(out, HistogramBucket{LE: b, Count: n})
			total += n
		}
	}
	if n := h.counts[len(h.bounds)].Load(); n > 0 {
		out = append(out, HistogramBucket{LE: 0, Count: n})
		total += n
	}
	if total == 0 {
		return nil
	}
	return out
}

// NewMetrics returns a metrics accumulator anchored at now.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start:         now,
		batchSize:     newHistogram([]uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}),
		bytesPerQuery: newHistogram([]uint64{16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}),
	}
}

// Record accounts one served request with the given handling latency.
func (m *Metrics) Record(d time.Duration, failed bool) {
	m.requests.Add(1)
	if failed {
		m.errors.Add(1)
	}
	slot := (m.next.Add(1) - 1) % latencyWindow
	m.ring[slot].Store(d.Nanoseconds())
}

// RecordBatch accounts one /query/batch call: how many queries it carried,
// how many request-body bytes it took, and which wire format it used.
func (m *Metrics) RecordBatch(queries int, bodyBytes int64, binary bool) {
	m.batchRequests.Add(1)
	if binary {
		m.batchBinary.Add(1)
	} else {
		m.batchJSON.Add(1)
	}
	if queries <= 0 {
		return
	}
	m.batchQueries.Add(uint64(queries))
	m.batchSize.observe(uint64(queries))
	if bodyBytes > 0 {
		m.bytesPerQuery.observe(uint64(bodyBytes) / uint64(queries))
	}
}

// MetricsSnapshot is the request-side portion of the /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RequestsTotal uint64  `json:"requests_total"`
	ErrorsTotal   uint64  `json:"errors_total"`
	QPS           float64 `json:"qps"`
	// Latency quantiles are computed over the most recent latencyWindow
	// requests; zero when nothing has been served yet.
	LatencyP50NS  int64 `json:"latency_p50_ns"`
	LatencyP95NS  int64 `json:"latency_p95_ns"`
	LatencyMaxNS  int64 `json:"latency_max_ns"`
	WindowSamples int   `json:"window_samples"`
	// Batch accounting: totals by wire format plus the shape histograms
	// (omitted until the first batch call arrives).
	BatchRequestsTotal uint64            `json:"batch_requests_total"`
	BatchQueriesTotal  uint64            `json:"batch_queries_total"`
	BatchJSONTotal     uint64            `json:"batch_json_total"`
	BatchBinaryTotal   uint64            `json:"batch_binary_total"`
	BatchSizeHist      []HistogramBucket `json:"batch_size_hist,omitempty"`
	BytesPerQueryHist  []HistogramBucket `json:"bytes_per_query_hist,omitempty"`
}

// Snapshot computes the exported view at time now.
func (m *Metrics) Snapshot(now time.Time) MetricsSnapshot {
	s := MetricsSnapshot{
		RequestsTotal:      m.requests.Load(),
		ErrorsTotal:        m.errors.Load(),
		BatchRequestsTotal: m.batchRequests.Load(),
		BatchQueriesTotal:  m.batchQueries.Load(),
		BatchJSONTotal:     m.batchJSON.Load(),
		BatchBinaryTotal:   m.batchBinary.Load(),
		BatchSizeHist:      m.batchSize.snapshot(),
		BytesPerQueryHist:  m.bytesPerQuery.snapshot(),
	}
	filled := int(m.next.Load())
	if filled > latencyWindow {
		filled = latencyWindow
	}
	s.WindowSamples = filled
	lat := make([]int64, filled)
	for i := range lat {
		lat[i] = m.ring[i].Load()
	}

	if up := now.Sub(m.start).Seconds(); up > 0 {
		s.UptimeSeconds = up
		s.QPS = float64(s.RequestsTotal) / up
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.LatencyP50NS = quantile(lat, 0.50)
		s.LatencyP95NS = quantile(lat, 0.95)
		s.LatencyMaxNS = lat[len(lat)-1]
	}
	return s
}

// quantile returns the nearest-rank q-quantile of the sorted samples.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
