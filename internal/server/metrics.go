package server

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the quantile estimates
// are computed over. A power of two keeps the ring index arithmetic cheap.
const latencyWindow = 8192

// Metrics accumulates server-side request accounting: totals, errors, and
// a sliding window of latencies for p50/p95 estimation. All methods are
// safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	start    time.Time
	requests uint64
	errors   uint64
	ring     [latencyWindow]int64 // nanoseconds, circular
	next     int
	filled   int
}

// NewMetrics returns a metrics accumulator anchored at now.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{start: now}
}

// Record accounts one served request with the given handling latency.
func (m *Metrics) Record(d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	if failed {
		m.errors++
	}
	m.ring[m.next] = d.Nanoseconds()
	m.next = (m.next + 1) % latencyWindow
	if m.filled < latencyWindow {
		m.filled++
	}
}

// MetricsSnapshot is the request-side portion of the /metrics payload.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RequestsTotal uint64  `json:"requests_total"`
	ErrorsTotal   uint64  `json:"errors_total"`
	QPS           float64 `json:"qps"`
	// Latency quantiles are computed over the most recent latencyWindow
	// requests; zero when nothing has been served yet.
	LatencyP50NS  int64 `json:"latency_p50_ns"`
	LatencyP95NS  int64 `json:"latency_p95_ns"`
	LatencyMaxNS  int64 `json:"latency_max_ns"`
	WindowSamples int   `json:"window_samples"`
}

// Snapshot computes the exported view at time now.
func (m *Metrics) Snapshot(now time.Time) MetricsSnapshot {
	m.mu.Lock()
	s := MetricsSnapshot{
		RequestsTotal: m.requests,
		ErrorsTotal:   m.errors,
		WindowSamples: m.filled,
	}
	lat := make([]int64, m.filled)
	copy(lat, m.ring[:m.filled])
	start := m.start
	m.mu.Unlock()

	if up := now.Sub(start).Seconds(); up > 0 {
		s.UptimeSeconds = up
		s.QPS = float64(s.RequestsTotal) / up
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.LatencyP50NS = quantile(lat, 0.50)
		s.LatencyP95NS = quantile(lat, 0.95)
		s.LatencyMaxNS = lat[len(lat)-1]
	}
	return s
}

// quantile returns the nearest-rank q-quantile of the sorted samples.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
