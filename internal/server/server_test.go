package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/summary"
)

// newTestServer builds a small synthetic dataset, registers the standard
// estimator set, and serves it over httptest.
func newTestServer(t *testing.T, opts server.Options) (*httptest.Server, *server.Registry, *server.Server) {
	t.Helper()
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(3000, rand.New(rand.NewSource(1)))
	_, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{
		Summary:    summary.Options{},
		SampleRate: 0.05,
	})
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	srv := server.New(reg, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, reg, srv
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, buf.Bytes()
}

// TestServerEquivalence is the acceptance-criterion test: answers served
// over HTTP must be bit-identical to in-process Estimator calls, for both
// /query and /groupby, across every registered estimator, under
// concurrency.
func TestServerEquivalence(t *testing.T) {
	ts, reg, _ := newTestServer(t, server.Options{CacheSize: -1})
	rng := rand.New(rand.NewSource(9))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 24, rng)

	var wg sync.WaitGroup
	for _, ent := range reg.Entries() {
		for _, q := range workload {
			wg.Add(1)
			go func(ent server.Entry, q experiment.Query) {
				defer wg.Done()
				if q.IsGroupBy() {
					wantGroups, wantErr := ent.Estimator.EstimateGroupBy(q.GroupBy, q.Pred)
					resp, body := postJSON(t, ts.URL+"/groupby", server.GroupByRequest{
						Estimator: ent.Name, Predicate: q.Pred, GroupBy: q.GroupBy,
					})
					if wantErr != nil {
						if resp.StatusCode == http.StatusOK {
							t.Errorf("%s %s: server OK but in-process errored: %v", ent.Name, q.Name, wantErr)
						}
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s %s: status %d: %s", ent.Name, q.Name, resp.StatusCode, body)
						return
					}
					var got server.GroupByResponse
					if err := json.Unmarshal(body, &got); err != nil {
						t.Errorf("%s %s: decode: %v", ent.Name, q.Name, err)
						return
					}
					if len(got.Groups) != len(wantGroups) {
						t.Errorf("%s %s: %d groups over HTTP, %d in-process", ent.Name, q.Name, len(got.Groups), len(wantGroups))
						return
					}
					for i, g := range wantGroups {
						if got.Groups[i].Estimate != g.Estimate {
							t.Errorf("%s %s group %d: HTTP %v != in-process %v", ent.Name, q.Name, i, got.Groups[i].Estimate, g.Estimate)
						}
						for j, v := range g.Values {
							if got.Groups[i].Values[j] != v {
								t.Errorf("%s %s group %d: values %v != %v", ent.Name, q.Name, i, got.Groups[i].Values, g.Values)
								break
							}
						}
					}
					return
				}
				want, wantErr := ent.Estimator.EstimateCount(q.Pred)
				resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: ent.Name, Predicate: q.Pred})
				if wantErr != nil {
					if resp.StatusCode == http.StatusOK {
						t.Errorf("%s %s: server OK but in-process errored: %v", ent.Name, q.Name, wantErr)
					}
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s %s: status %d: %s", ent.Name, q.Name, resp.StatusCode, body)
					return
				}
				var got server.QueryResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Errorf("%s %s: decode: %v", ent.Name, q.Name, err)
					return
				}
				if got.Count != want {
					t.Errorf("%s %s: HTTP count %v != in-process %v", ent.Name, q.Name, got.Count, want)
				}
			}(ent, q)
		}
	}
	wg.Wait()
}

// TestCacheHit asserts the second identical request is answered from the
// cache with the identical count, and that /metrics reports the hit.
func TestCacheHit(t *testing.T) {
	ts, _, _ := newTestServer(t, server.Options{})
	pred := query.NewPredicate(4).WhereEq(0, 1)
	req := server.QueryRequest{Estimator: "demo/maxent", Predicate: pred}

	resp1, body1 := postJSON(t, ts.URL+"/query", req)
	resp2, body2 := postJSON(t, ts.URL+"/query", req)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("status %d, %d: %s %s", resp1.StatusCode, resp2.StatusCode, body1, body2)
	}
	var r1, r2 server.QueryResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request reported cached")
	}
	if !r2.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if r1.Count != r2.Count {
		t.Fatalf("cached count %v != computed count %v", r2.Count, r1.Count)
	}

	// A semantically identical predicate built in a different order hits
	// the same entry (canonical keys).
	pred2 := query.NewPredicate(4).Where(0, query.ValueIn(query.Point(1)))
	resp3, body3 := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "demo/maxent", Predicate: pred2})
	var r3 server.QueryResponse
	if resp3.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp3.StatusCode, body3)
	}
	if err := json.Unmarshal(body3, &r3); err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Fatal("canonically-equal predicate missed the cache")
	}

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var m server.MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits < 2 || m.Cache.HitRatio <= 0 {
		t.Fatalf("cache stats = %+v; want >= 2 hits and positive ratio", m.Cache)
	}
	if m.RequestsTotal < 3 || m.LatencyP50NS < 0 || m.LatencyP95NS < m.LatencyP50NS {
		t.Fatalf("metrics snapshot inconsistent: %+v", m.MetricsSnapshot)
	}
}

// blockingEstimator blocks EstimateCount until release is closed.
type blockingEstimator struct {
	release chan struct{}
}

func (b *blockingEstimator) Name() string { return "blocking" }
func (b *blockingEstimator) EstimateCount(*query.Predicate) (float64, error) {
	<-b.release
	return 1, nil
}
func (b *blockingEstimator) EstimateGroupBy([]int, *query.Predicate) ([]core.GroupEstimate, error) {
	<-b.release
	return nil, nil
}
func (b *blockingEstimator) ApproxBytes() int64 { return 0 }

// TestTimeoutAndSaturation drives a blocking estimator: the first request
// times out in-flight (504), a second concurrent request times out waiting
// for the single worker slot (503).
func TestTimeoutAndSaturation(t *testing.T) {
	reg := server.NewRegistry()
	blk := &blockingEstimator{release: make(chan struct{})}
	if err := reg.Register("slow/blocking", blk, experiment.SyntheticSchema()); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Options{Timeout: 80 * time.Millisecond, MaxConcurrent: 1, CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(blk.release)

	type outcome struct {
		status int
		body   string
	}
	results := make(chan outcome, 2)
	fire := func() {
		resp, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Estimator: "slow/blocking"})
		results <- outcome{resp.StatusCode, string(body)}
	}
	go fire()
	time.Sleep(20 * time.Millisecond) // let the first request claim the slot
	go fire()

	var statuses []int
	for i := 0; i < 2; i++ {
		o := <-results
		statuses = append(statuses, o.status)
		if o.status != http.StatusGatewayTimeout && o.status != http.StatusServiceUnavailable {
			t.Fatalf("status %d (%s); want 503 or 504", o.status, o.body)
		}
	}
	if !(contains(statuses, http.StatusGatewayTimeout) && contains(statuses, http.StatusServiceUnavailable)) {
		t.Fatalf("statuses %v; want one 504 (in-flight timeout) and one 503 (queue timeout)", statuses)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestMalformedRequests covers every request-rejection path with its
// status code.
func TestMalformedRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, server.Options{})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantErr          string
	}{
		{"bad json", "/query", `{not json`, 400, "malformed request body"},
		{"missing estimator", "/query", `{}`, 400, `"estimator"`},
		{"unknown estimator", "/query", `{"estimator":"nope"}`, 404, "unknown estimator"},
		{"bad predicate kind", "/query", `{"estimator":"demo/maxent","predicate":{"num_attrs":4,"where":[{"attr":0,"kind":"like"}]}}`, 400, "unknown constraint kind"},
		{"arity mismatch", "/query", `{"estimator":"demo/maxent","predicate":{"num_attrs":7}}`, 400, "num_attrs=7"},
		{"groupby without attrs", "/groupby", `{"estimator":"demo/maxent"}`, 400, "group_by"},
		{"groupby out of range", "/groupby", `{"estimator":"demo/maxent","group_by":[9]}`, 400, "out of range"},
		{"groupby duplicate", "/groupby", `{"estimator":"demo/maxent","group_by":[1,1]}`, 400, "duplicate"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, buf.String())
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, buf.String())
			continue
		}
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantErr)
		}
	}

	// Wrong methods. GET /query is a supported wire (versioned reads), so a
	// bare GET there is a 400 (no estimator), not a 405.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /query: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/groupby")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /groupby: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/metrics", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", resp.StatusCode)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestEstimatorsAndHealthz checks the discovery endpoints advertise every
// registered estimator with its schema shape.
func TestEstimatorsAndHealthz(t *testing.T) {
	ts, reg, _ := newTestServer(t, server.Options{})
	resp, body := get(t, ts.URL+"/estimators")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er server.EstimatorsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Estimators) != reg.Len() {
		t.Fatalf("%d estimators advertised, %d registered", len(er.Estimators), reg.Len())
	}
	for _, e := range er.Estimators {
		if e.NumAttrs != 4 || len(e.DomainSizes) != 4 || len(e.AttrNames) != 4 {
			t.Errorf("estimator %s: schema shape %d/%v/%v, want 4 attrs", e.Name, e.NumAttrs, e.DomainSizes, e.AttrNames)
		}
		if e.ApproxBytes <= 0 {
			t.Errorf("estimator %s: approx_bytes %d, want > 0", e.Name, e.ApproxBytes)
		}
	}

	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h map[string]interface{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz = %v", h)
	}
	if n, ok := h["estimators"].(float64); !ok || int(n) != reg.Len() {
		t.Fatalf("healthz estimators = %v, want %d", h["estimators"], reg.Len())
	}
}

// TestRegistryRejects covers registration validation.
func TestRegistryRejects(t *testing.T) {
	reg := server.NewRegistry()
	sch := experiment.SyntheticSchema()
	blk := &blockingEstimator{release: make(chan struct{})}
	if err := reg.Register("", blk, sch); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Register("x", nil, sch); err == nil {
		t.Error("nil estimator accepted")
	}
	if err := reg.Register("x", blk, sch); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := reg.Register("x", blk, sch); err == nil {
		t.Error("duplicate name accepted")
	}
	if got := fmt.Sprint(reg.Len()); got != "1" {
		t.Errorf("len = %s, want 1", got)
	}
}
