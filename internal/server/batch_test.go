package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/solver"
	"repro/internal/summary"
)

// toBatchItems converts a generated workload into batch items.
func toBatchItems(workload []experiment.Query) []query.BatchItem {
	items := make([]query.BatchItem, len(workload))
	for i, q := range workload {
		items[i] = query.BatchItem{Pred: q.Pred, GroupBy: q.GroupBy}
	}
	return items
}

// postBinaryBatch sends items as a binary frame and decodes the binary
// answer frame.
func postBinaryBatch(t *testing.T, url, estimator string, items []query.BatchItem) []query.BatchAnswer {
	t.Helper()
	var buf bytes.Buffer
	if err := query.EncodeBatch(&buf, estimator, items); err != nil {
		t.Fatalf("encode batch: %v", err)
	}
	resp, err := http.Post(url+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("POST /query/batch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var b bytes.Buffer
		_, _ = b.ReadFrom(resp.Body)
		t.Fatalf("binary batch: status %d: %s", resp.StatusCode, b.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != server.BinaryBatchContentType {
		t.Fatalf("binary batch response Content-Type = %q", ct)
	}
	_, answers, err := query.DecodeAnswers(resp.Body)
	if err != nil {
		t.Fatalf("decode answers: %v", err)
	}
	return answers
}

// postJSONBatch sends items as a JSON body and normalizes the response
// into the same answer shape as the binary wire.
func postJSONBatch(t *testing.T, url, estimator string, items []query.BatchItem) []query.BatchAnswer {
	t.Helper()
	req := server.BatchQueryRequest{Estimator: estimator}
	for _, it := range items {
		req.Queries = append(req.Queries, server.BatchQueryItem{Predicate: it.Pred, GroupBy: it.GroupBy})
	}
	resp, body := postJSON(t, url+"/query/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json batch: status %d: %s", resp.StatusCode, body)
	}
	var br server.BatchQueryResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("decode json batch: %v", err)
	}
	answers := make([]query.BatchAnswer, len(br.Answers))
	for i, a := range br.Answers {
		answers[i] = query.BatchAnswer{
			Count: a.Count, Cached: a.Cached, IsGroup: a.IsGroup, Error: a.Error,
		}
		for _, g := range a.Groups {
			answers[i].Groups = append(answers[i].Groups, query.BatchGroup{Values: g.Values, Estimate: g.Estimate})
		}
	}
	return answers
}

// sequentialAnswer runs one query through the single-query endpoints.
func sequentialAnswer(t *testing.T, url, estimator string, it query.BatchItem) query.BatchAnswer {
	t.Helper()
	if len(it.GroupBy) > 0 {
		resp, body := postJSON(t, url+"/groupby", server.GroupByRequest{
			Estimator: estimator, Predicate: it.Pred, GroupBy: it.GroupBy,
		})
		if resp.StatusCode != http.StatusOK {
			return query.BatchAnswer{IsGroup: true, Error: string(body)}
		}
		var gr server.GroupByResponse
		if err := json.Unmarshal(body, &gr); err != nil {
			t.Fatalf("decode groupby: %v", err)
		}
		a := query.BatchAnswer{IsGroup: true, Cached: gr.Cached}
		for _, g := range gr.Groups {
			a.Groups = append(a.Groups, query.BatchGroup{Values: g.Values, Estimate: g.Estimate})
		}
		return a
	}
	resp, body := postJSON(t, url+"/query", server.QueryRequest{Estimator: estimator, Predicate: it.Pred})
	if resp.StatusCode != http.StatusOK {
		return query.BatchAnswer{Error: string(body)}
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decode query: %v", err)
	}
	return query.BatchAnswer{Count: qr.Count, Cached: qr.Cached}
}

// sameAnswer compares two answers bit-for-bit (float64 payloads compared
// by their IEEE bits), ignoring the cached flag.
func sameAnswer(a, b query.BatchAnswer) bool {
	if a.IsGroup != b.IsGroup || (a.Error == "") != (b.Error == "") {
		return false
	}
	if math.Float64bits(a.Count) != math.Float64bits(b.Count) {
		return false
	}
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		if math.Float64bits(a.Groups[i].Estimate) != math.Float64bits(b.Groups[i].Estimate) {
			return false
		}
		if len(a.Groups[i].Values) != len(b.Groups[i].Values) {
			return false
		}
		for j := range a.Groups[i].Values {
			if a.Groups[i].Values[j] != b.Groups[i].Values[j] {
				return false
			}
		}
	}
	return true
}

// TestBatchEquivalence is the acceptance-criterion test: a batch (JSON and
// binary wires, mixed cache hits and misses) must return bit-identical
// answers to N sequential /query and /groupby calls.
func TestBatchEquivalence(t *testing.T) {
	ts, _, _ := newTestServer(t, server.Options{})
	rng := rand.New(rand.NewSource(17))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 32, rng)
	items := toBatchItems(workload)
	const estimator = "demo/maxent"

	// Warm the cache with the first half sequentially; the batch then mixes
	// 16 hits with 16 misses.
	want := make([]query.BatchAnswer, len(items))
	for i := 0; i < len(items)/2; i++ {
		want[i] = sequentialAnswer(t, ts.URL, estimator, items[i])
	}

	binary := postBinaryBatch(t, ts.URL, estimator, items)
	if len(binary) != len(items) {
		t.Fatalf("binary batch: %d answers, want %d", len(binary), len(items))
	}
	for i := 0; i < len(items)/2; i++ {
		if !binary[i].Cached {
			t.Errorf("item %d: sequentially warmed, but batch missed the cache", i)
		}
		if !sameAnswer(binary[i], want[i]) {
			t.Errorf("item %d (%s): batch %+v != sequential %+v", i, workload[i].Name, binary[i], want[i])
		}
	}
	// The second half were cache misses for the batch; the sequential twins
	// afterwards must hit the cache the batch populated, with identical bits.
	for i := len(items) / 2; i < len(items); i++ {
		if binary[i].Cached {
			t.Errorf("item %d: cold query reported cached in batch", i)
		}
		want[i] = sequentialAnswer(t, ts.URL, estimator, items[i])
		if want[i].Error == "" && !want[i].Cached {
			t.Errorf("item %d: batch-computed answer not served from cache sequentially", i)
		}
		if !sameAnswer(binary[i], want[i]) {
			t.Errorf("item %d (%s): batch %+v != sequential %+v", i, workload[i].Name, binary[i], want[i])
		}
	}

	// The JSON wire must agree with the binary wire, all cached now.
	jsonAns := postJSONBatch(t, ts.URL, estimator, items)
	if len(jsonAns) != len(items) {
		t.Fatalf("json batch: %d answers, want %d", len(jsonAns), len(items))
	}
	for i := range items {
		if !sameAnswer(jsonAns[i], binary[i]) {
			t.Errorf("item %d: json %+v != binary %+v", i, jsonAns[i], binary[i])
		}
		if jsonAns[i].Error == "" && !jsonAns[i].Cached {
			t.Errorf("item %d: fully warmed json batch missed the cache", i)
		}
	}

	// /metrics must account the three batch calls and their shape.
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var m server.MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.BatchRequestsTotal != 2 || m.BatchQueriesTotal != 64 {
		t.Fatalf("batch totals %d/%d, want 2 calls / 64 queries", m.BatchRequestsTotal, m.BatchQueriesTotal)
	}
	if m.BatchBinaryTotal != 1 || m.BatchJSONTotal != 1 {
		t.Fatalf("wire split binary=%d json=%d, want 1/1", m.BatchBinaryTotal, m.BatchJSONTotal)
	}
	if len(m.BatchSizeHist) == 0 || len(m.BytesPerQueryHist) == 0 {
		t.Fatalf("batch histograms missing: %+v", m.MetricsSnapshot)
	}
	if len(m.Cache.Shards) == 0 && m.Cache.Capacity > 0 {
		t.Fatalf("per-shard cache stats missing: %+v", m.Cache)
	}
}

// TestBatchAcrossGenerationSwap proves batch answers track a hot swap: the
// same batch re-issued after an ingest-triggered refresh must match fresh
// sequential answers of the new generation, not the stale cache.
func TestBatchAcrossGenerationSwap(t *testing.T) {
	ts, reg, _, _ := newLiveServer(t, 2000, server.LiveOptions{
		Dataset: server.DatasetOptions{
			Summary: summary.Options{Solver: solver.Options{MaxSweeps: 200}},
		},
		RefreshRows: 300,
	})
	rng := rand.New(rand.NewSource(23))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 16, rng)
	items := toBatchItems(workload)
	const estimator = "demo/maxent"

	before := postBinaryBatch(t, ts.URL, estimator, items)

	// Cross the refresh threshold: the estimator hot-swaps to generation 2.
	resp, body := postJSON(t, ts.URL+"/ingest/demo", server.IngestRequest{Rows: syntheticRows(400, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir server.IngestResult
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if !ir.Refreshed {
		t.Fatalf("ingest did not refresh: %+v", ir)
	}
	if ent, ok := reg.Get(estimator); !ok || ent.Generation != 2 {
		t.Fatalf("estimator generation after swap: %+v", ent)
	}

	after := postBinaryBatch(t, ts.URL, estimator, items)
	changed := false
	for i := range items {
		if after[i].Cached {
			t.Errorf("item %d: answer served from cache across a generation swap", i)
		}
		want := sequentialAnswer(t, ts.URL, estimator, items[i])
		if !sameAnswer(after[i], want) {
			t.Errorf("item %d (%s): post-swap batch %+v != sequential %+v", i, workload[i].Name, after[i], want)
		}
		if !sameAnswer(after[i], before[i]) {
			changed = true
		}
	}
	// 400 skewed rows on 2000 must move at least one of 16 answers; if none
	// moved, the swap test proved nothing.
	if !changed {
		t.Error("no answer changed across the swap; refresh had no observable effect")
	}
}

// TestBatchErrors covers batch-level rejections and per-query error
// isolation.
func TestBatchErrors(t *testing.T) {
	ts, _, _ := newTestServer(t, server.Options{MaxBatch: 8})

	post := func(contentType, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query/batch", contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.String()
	}

	if resp, body := post("application/json", `{not json`); resp.StatusCode != 400 {
		t.Errorf("bad json: status %d (%s)", resp.StatusCode, body)
	}
	if resp, body := post(server.BinaryBatchContentType, "garbage frame"); resp.StatusCode != 400 || !strings.Contains(body, "frame") {
		t.Errorf("bad frame: status %d (%s)", resp.StatusCode, body)
	}
	if resp, body := post("application/json", `{"estimator":"demo/maxent","queries":[]}`); resp.StatusCode != 400 || !strings.Contains(body, "empty") {
		t.Errorf("empty batch: status %d (%s)", resp.StatusCode, body)
	}
	if resp, body := post("application/json", `{"estimator":"nope","queries":[{}]}`); resp.StatusCode != 404 {
		t.Errorf("unknown estimator: status %d (%s)", resp.StatusCode, body)
	}
	big := `{"estimator":"demo/maxent","queries":[` + strings.Repeat("{},", 8) + `{}]}`
	if resp, body := post("application/json", big); resp.StatusCode != 400 || !strings.Contains(body, "exceeds") {
		t.Errorf("oversized batch: status %d (%s)", resp.StatusCode, body)
	}
	if resp, err := http.Get(ts.URL + "/query/batch"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %v status %v, want 405", err, resp.StatusCode)
	}

	// A bad query mid-batch fails alone; its batchmates answer normally.
	bad := `{"estimator":"demo/maxent","queries":[{},{"predicate":{"num_attrs":7}},{"group_by":[1,1]}]}`
	resp, body := post("application/json", bad)
	if resp.StatusCode != 200 {
		t.Fatalf("mixed batch: status %d (%s)", resp.StatusCode, body)
	}
	var br server.BatchQueryResponse
	if err := json.Unmarshal([]byte(body), &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Answers) != 3 {
		t.Fatalf("%d answers, want 3", len(br.Answers))
	}
	if br.Answers[0].Error != "" || br.Answers[0].Count <= 0 {
		t.Errorf("healthy query poisoned: %+v", br.Answers[0])
	}
	if !strings.Contains(br.Answers[1].Error, "num_attrs=7") {
		t.Errorf("arity error missing: %+v", br.Answers[1])
	}
	if !strings.Contains(br.Answers[2].Error, "duplicate") {
		t.Errorf("group_by error missing: %+v", br.Answers[2])
	}

	// Accept negotiation: a JSON request may ask for binary answers and a
	// binary request for JSON answers.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query/batch",
		strings.NewReader(`{"estimator":"demo/maxent","queries":[{}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", server.BinaryBatchContentType)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if ct := hresp.Header.Get("Content-Type"); ct != server.BinaryBatchContentType {
		t.Fatalf("Accept negotiation ignored: Content-Type %q", ct)
	}
	if _, answers, err := query.DecodeAnswers(hresp.Body); err != nil || len(answers) != 1 {
		t.Fatalf("binary answers for json request: %d answers, err %v", len(answers), err)
	}
}

func newBenchServer(b *testing.B, srv *server.Server) string {
	b.Helper()
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts.URL
}

// BenchmarkBatchQueryLoopback measures the full batched binary path over
// HTTP loopback — frame encode, POST, one admission, cached answers, frame
// decode — with 32 queries per round trip. It is the CI-gated guard for
// the serving-path optimizations.
func BenchmarkBatchQueryLoopback(b *testing.B) {
	reg := server.NewRegistry()
	rel := experiment.SyntheticRelation(3000, rand.New(rand.NewSource(1)))
	if _, err := server.BuildDataset(reg, "demo", rel, server.DatasetOptions{
		Summary:    summary.Options{},
		SampleRate: 0.05,
	}); err != nil {
		b.Fatalf("BuildDataset: %v", err)
	}
	srv := server.New(reg, server.Options{})
	ts := newBenchServer(b, srv)

	rng := rand.New(rand.NewSource(3))
	workload := experiment.GenerateWorkload(experiment.SyntheticSchema(), 32, rng)
	var frame bytes.Buffer
	if err := query.EncodeBatch(&frame, "demo/maxent", toBatchItems(workload)); err != nil {
		b.Fatal(err)
	}
	body := frame.Bytes()

	post := func(client *http.Client) error {
		resp, err := client.Post(ts+"/query/batch", server.BinaryBatchContentType, bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		_, answers, err := query.DecodeAnswers(resp.Body)
		if err == nil && len(answers) != 32 {
			err = fmt.Errorf("%d answers", len(answers))
		}
		return err
	}
	// Warm the cache so the benchmark measures the wire, not the model.
	if err := post(http.DefaultClient); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			if err := post(client); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	qps := float64(b.N) * 32 / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/s")
}
