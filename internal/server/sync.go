package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/store"
	"repro/internal/summary"
)

// This file is the peer-sync surface of a summaryd node. Replication in
// the fleet is pull-by-version (docs/FLEET.md): snapshots travel as their
// verified on-disk frames over GET /sync/snapshot, and POST /sync/notify
// lets the ingest node wake a replica's sync loop so a generation bump
// propagates within one round trip instead of one poll interval.

// SnapshotContentType is the media type of a framed snapshot on the wire.
const SnapshotContentType = "application/x-entropydb-snapshot"

// Snapshot transfer headers on GET /sync/snapshot responses.
const (
	SnapshotVersionHeader   = "X-Snapshot-Version"
	SnapshotChecksumHeader  = "X-Snapshot-Checksum"
	SnapshotEstimatorHeader = "X-Snapshot-Estimator"
)

// handleSyncSnapshot serves GET /sync/snapshot?dataset=K[&version=N]: the
// complete framed bytes of one snapshot, exactly as stored (version
// omitted or 0 = latest). The frame carries its own checksum, so the
// fetching peer verifies integrity end to end without trusting the
// transport.
func (s *Server) handleSyncSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	if !s.requireStore(w) {
		return
	}
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: `missing "dataset" parameter (a full store key like "demo/maxent")`})
		return
	}
	version := 0
	if v, herr := urlVersion(r); herr != nil {
		writeJSON(w, herr.status, errorResponse{Error: herr.msg})
		return
	} else if v > 0 {
		version = v
	}
	framed, info, err := s.opts.Store.ReadFramed(dataset, version)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		case errors.Is(err, store.ErrCorrupt):
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	w.Header().Set("Content-Type", SnapshotContentType)
	w.Header().Set(SnapshotVersionHeader, strconv.Itoa(info.Version))
	w.Header().Set(SnapshotChecksumHeader, fmt.Sprintf("%08x", info.Checksum))
	w.Header().Set(SnapshotEstimatorHeader, info.Estimator)
	w.Header().Set("Content-Length", strconv.Itoa(len(framed)))
	_, _ = w.Write(framed)
}

// SyncNotifyRequest is the body of POST /sync/notify. An empty (or
// absent) dataset asks the node to sync every dataset it replicates.
type SyncNotifyRequest struct {
	Dataset string `json:"dataset,omitempty"`
}

// SyncNotifyResponse is the body of a successful POST /sync/notify.
// Accepted is false when this node has no sync loop attached (it is not a
// replica), which is not an error — notifying a standalone node is a
// harmless no-op.
type SyncNotifyResponse struct {
	Status   string `json:"status"`
	Accepted bool   `json:"accepted"`
}

// handleSyncNotify serves POST /sync/notify: it hands the named dataset
// to the node's sync hook (Options.SyncNotify), waking the replica's pull
// loop. The hook must not block — it is invoked inline.
func (s *Server) handleSyncNotify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	var req SyncNotifyRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("malformed request body: %v", err)})
		return
	}
	if s.opts.SyncNotify == nil {
		writeJSON(w, http.StatusOK, SyncNotifyResponse{Status: "ok", Accepted: false})
		return
	}
	s.opts.SyncNotify(req.Dataset)
	writeJSON(w, http.StatusOK, SyncNotifyResponse{Status: "ok", Accepted: true})
}

// --- partition placement ------------------------------------------------

// PartitionEntryName is the registry/store key of the k-th partition of a
// dataset's partitioned summary. Dots are valid in store key segments, so
// partition snapshots version and replicate exactly like whole datasets.
func PartitionEntryName(dataset string, k int) string {
	return fmt.Sprintf("%s/partitioned.p%d", dataset, k)
}

// ExposePartitions registers every partition of an already-registered
// "<dataset>/partitioned" estimator as its own serving entry
// "<dataset>/partitioned.p<k>". Each partition is a plain solved summary,
// so once exposed it snapshots (SaveDataset picks the entries up by
// prefix), replicates, and hot-swaps like any other estimator — which is
// what lets a router scatter the K partitions across fleet nodes and
// merge their answers remotely. Returns the registered names.
func ExposePartitions(reg *Registry, dataset string) ([]string, error) {
	ent, ok := reg.Get(dataset + "/partitioned")
	if !ok {
		return nil, fmt.Errorf("server: expose partitions %q: no %q registered", dataset, dataset+"/partitioned")
	}
	psum, ok := ent.Estimator.(*summary.Partitioned)
	if !ok {
		return nil, fmt.Errorf("server: expose partitions %q: %q is a %T, want a partitioned summary",
			dataset, ent.Name, ent.Estimator)
	}
	var names []string
	for k := 0; k < psum.NumPartitions(); k++ {
		name := PartitionEntryName(dataset, k)
		if err := reg.Register(name, psum.Partition(k), ent.Schema); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}
