// Partitioned summaries: the scale-out path of the summary engine. The
// relation is split into K contiguous horizontal partitions, one MaxEnt
// summary is built per partition — concurrently, on a worker pool — and
// queries are answered by summing the per-partition masked evaluations:
//
//	COUNT(σ_π(I)) ≈ Σ_k n_k · P_π^{(k)} / P^{(k)}.
//
// Counting queries are linear in the data, so partition estimates compose
// by addition exactly; the union of the per-partition models plays the
// role of one summary whose footprint and build time scale out with K.
// Partitioned implements core.Estimator, so the experiment harness and
// cmd/experiment drive it through the same interface as every other
// strategy.

package summary

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
)

// PartitionedOptions configure BuildPartitioned.
type PartitionedOptions struct {
	// Partitions is K, the number of horizontal partitions (default 4; it
	// is clamped so no partition is empty).
	Partitions int
	// Workers bounds how many per-partition builds run concurrently
	// (default min(K, GOMAXPROCS)).
	Workers int
	// Base configures every per-partition build.
	Base Options
}

// Partitioned is a set of per-partition MaxEnt summaries answering queries
// by summing masked evaluations. It is immutable after BuildPartitioned
// and safe for concurrent query answering.
type Partitioned struct {
	name  string
	sch   *schema.Schema
	n     float64
	parts []*Summary
}

// Partitioned satisfies the shared estimator interface.
var _ core.Estimator = (*Partitioned)(nil)

// BuildPartitioned splits the relation into K contiguous horizontal
// partitions and builds one summary per partition on a worker pool. Every
// partition must build successfully; the first failure aborts the whole
// build.
func BuildPartitioned(rel *relation.Relation, opts PartitionedOptions) (*Partitioned, error) {
	if rel.NumRows() == 0 {
		return nil, errors.New("summary: cannot summarize an empty relation")
	}
	if opts.Partitions == 0 {
		opts.Partitions = 4
	}
	if opts.Partitions < 1 {
		return nil, fmt.Errorf("summary: Partitions must be positive, got %d", opts.Partitions)
	}
	chunks := rel.Partition(opts.Partitions)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	parts := make([]*Summary, len(chunks))
	errs := runIndexed(len(chunks), workers, func(i int) error {
		var err error
		parts[i], err = Build(chunks[i], opts.Base)
		return err
	})
	for i, err := range errs {
		if err != nil {
			// 1-based to match the per-partition reports cmd/experiment prints.
			return nil, fmt.Errorf("summary: partition %d/%d: %w", i+1, len(chunks), err)
		}
	}

	return &Partitioned{
		name:  fmt.Sprintf("partitioned[K=%d]×%s", len(parts), parts[0].Name()),
		sch:   rel.Schema(),
		n:     float64(rel.NumRows()),
		parts: parts,
	}, nil
}

// Name identifies the partitioned configuration in reports.
func (p *Partitioned) Name() string { return p.name }

// Schema returns the schema the summaries were built over.
func (p *Partitioned) Schema() *schema.Schema { return p.sch }

// N returns the total cardinality across all partitions.
func (p *Partitioned) N() float64 { return p.n }

// NumPartitions returns K.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }

// Partition returns the k-th per-partition summary. Callers must treat it
// as read-only.
func (p *Partitioned) Partition(k int) *Summary { return p.parts[k] }

// SolverReports returns the per-partition solve outcomes, index-aligned
// with the partitions.
func (p *Partitioned) SolverReports() []solver.Report {
	out := make([]solver.Report, len(p.parts))
	for i, s := range p.parts {
		out[i] = s.SolverReport()
	}
	return out
}

// Converged reports whether every per-partition solve converged.
func (p *Partitioned) Converged() bool {
	for _, s := range p.parts {
		if !s.SolverReport().Converged {
			return false
		}
	}
	return true
}

// ApproxBytes sums the per-partition summary footprints.
func (p *Partitioned) ApproxBytes() int64 {
	var total int64
	for _, s := range p.parts {
		total += s.ApproxBytes()
	}
	return total
}

// runIndexed runs fn for every index in [0, n) on at most workers
// goroutines and returns the per-index errors. Callers collect results
// into index-addressed slices, so reductions run in fixed index order and
// answers stay deterministic regardless of goroutine scheduling.
func runIndexed(n, workers int, fn func(i int) error) []error {
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errs
}

// forEachPartition runs fn for every partition index — concurrently when
// there is more than one partition (the per-partition summaries are
// read-only after build, so fan-out is safe) — and returns the first error
// by partition order.
func (p *Partitioned) forEachPartition(fn func(k int) error) error {
	for _, err := range runIndexed(len(p.parts), len(p.parts), fn) {
		if err != nil {
			return err
		}
	}
	return nil
}

// EstimateCount answers COUNT(σ_π(I)) as the sum of the per-partition
// estimates Σ_k n_k · P_π^{(k)} / P^{(k)}, evaluated concurrently across
// partitions. A nil predicate returns the exact total cardinality.
func (p *Partitioned) EstimateCount(pred *query.Predicate) (float64, error) {
	if pred == nil {
		return p.n, nil
	}
	ests := make([]float64, len(p.parts))
	err := p.forEachPartition(func(k int) error {
		est, err := p.parts[k].EstimateCount(pred)
		ests[k] = est
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, est := range ests {
		total += est
	}
	return total, nil
}

// EstimateGroupBy merges the per-partition group-by answers — computed
// concurrently across partitions — by summing the estimates of identical
// groups.
func (p *Partitioned) EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]core.GroupEstimate, error) {
	partial := make([][]core.GroupEstimate, len(p.parts))
	err := p.forEachPartition(func(k int) error {
		groups, err := p.parts[k].EstimateGroupBy(groupAttrs, pred)
		partial[k] = groups
		return err
	})
	if err != nil {
		return nil, err
	}
	return core.MergeGroupEstimates(partial...), nil
}
