package summary

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/schema"
)

// TestDiffSelfIsZero: a summary diffed against itself reports zero drift
// on every attribute and every aggregate.
func TestDiffSelfIsZero(t *testing.T) {
	sum := buildSolved(t, testRelation(t, 2000, 7), Options{})
	rep, err := Diff(sum, sum)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsA != sum.N() || rep.RowsB != sum.N() {
		t.Errorf("rows = %g/%g, want %g", rep.RowsA, rep.RowsB, sum.N())
	}
	if len(rep.Attrs) != sum.Schema().NumAttrs() {
		t.Fatalf("got %d attr entries, want %d", len(rep.Attrs), sum.Schema().NumAttrs())
	}
	for _, d := range rep.Attrs {
		if d.TotalVariation != 0 || d.MeanRelError != 0 || d.MaxRelError != 0 {
			t.Errorf("self-diff attr %s reports drift %+v", d.Attr, d)
		}
	}
	if rep.MeanTotalVariation != 0 || rep.MaxTotalVariation != 0 || rep.MaxDriftAttr != "" {
		t.Errorf("self-diff aggregates nonzero: %+v", rep)
	}
}

// TestDiffIsSymmetric: Diff(a, b) and Diff(b, a) agree on every drift
// number (rows swap sides).
func TestDiffIsSymmetric(t *testing.T) {
	a := buildSolved(t, testRelation(t, 2000, 7), Options{})
	b := buildSolved(t, testRelation(t, 3000, 8), Options{})
	ab, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Diff(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ab.RowsA != ba.RowsB || ab.RowsB != ba.RowsA {
		t.Errorf("rows did not swap: %+v vs %+v", ab, ba)
	}
	for i := range ab.Attrs {
		x, y := ab.Attrs[i], ba.Attrs[i]
		if x.TotalVariation != y.TotalVariation || x.MeanRelError != y.MeanRelError || x.MaxRelError != y.MaxRelError {
			t.Errorf("attr %s asymmetric: %+v vs %+v", x.Attr, x, y)
		}
	}
	if ab.MeanTotalVariation != ba.MeanTotalVariation || ab.MaxTotalVariation != ba.MaxTotalVariation {
		t.Errorf("aggregates asymmetric: %+v vs %+v", ab, ba)
	}
	if ab.MaxTotalVariation <= 0 {
		t.Error("different relations should report nonzero drift")
	}
}

// TestDiffDetectsShiftedMarginal: shifting one attribute's distribution
// moves that attribute's drift, leaves identical attributes at zero, and
// stays in [0, 1].
func TestDiffDetectsShiftedMarginal(t *testing.T) {
	sch := schema.MustNew(
		schema.MustCategorical("stable", []string{"u", "v"}),
		schema.MustCategorical("moved", []string{"x", "y"}),
	)
	mk := func(movedSplit int) *relation.Relation {
		rel := relation.NewWithCapacity(sch, 100)
		for i := 0; i < 100; i++ {
			m := 0
			if i < movedSplit {
				m = 1
			}
			rel.MustAppend([]int{i % 2, m})
		}
		return rel
	}
	a := buildSolved(t, mk(50), Options{})
	b := buildSolved(t, mk(90), Options{})
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var stable, moved AttrDrift
	for _, d := range rep.Attrs {
		switch d.Attr {
		case "stable":
			stable = d
		case "moved":
			moved = d
		}
	}
	if stable.TotalVariation > 1e-12 {
		t.Errorf("stable attribute drifted: %+v", stable)
	}
	// 50/50 → 10/90: TV = (|0.5−0.1| + |0.5−0.9|)/2 = 0.4 exactly.
	if math.Abs(moved.TotalVariation-0.4) > 1e-12 {
		t.Errorf("moved TV = %g, want 0.4", moved.TotalVariation)
	}
	if rep.MaxDriftAttr != "moved" {
		t.Errorf("MaxDriftAttr = %q, want moved", rep.MaxDriftAttr)
	}
}

// TestDiffRejectsMismatchedSchemas: diffing across different schemas is
// an error, not a garbage report.
func TestDiffRejectsMismatchedSchemas(t *testing.T) {
	a := buildSolved(t, testRelation(t, 500, 1), Options{})
	schB := schema.MustNew(schema.MustCategorical("other", []string{"x", "y"}))
	relB := relation.NewWithCapacity(schB, 10)
	for i := 0; i < 10; i++ {
		relB.MustAppend([]int{i % 2})
	}
	b := buildSolved(t, relB, Options{})
	if _, err := Diff(a, b); err == nil {
		t.Fatal("Diff accepted mismatched schemas")
	}
	if _, err := Diff(a, nil); err == nil {
		t.Fatal("Diff accepted a nil summary")
	}
}
