package summary

import (
	"runtime"
	"testing"

	"repro/internal/solver"
)

// TestAutoWorkers pins the auto-enable rule: an unset Workers turns the
// derivative pool on exactly at B_a >= autoWorkersPairs, and an explicit
// choice (including 1 for "stay sequential") is never overridden.
func TestAutoWorkers(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		pairs   int
		want    int
	}{
		{"unset small instance", 0, autoWorkersPairs - 1, 0},
		{"unset at threshold", 0, autoWorkersPairs, runtime.GOMAXPROCS(0)},
		{"unset above threshold", 0, autoWorkersPairs + 4, runtime.GOMAXPROCS(0)},
		{"explicit sequential", 1, autoWorkersPairs + 4, 1},
		{"explicit pool", 3, 1, 3},
	}
	for _, tc := range cases {
		opts := solver.Options{Workers: tc.workers}
		autoWorkers(&opts, tc.pairs)
		if opts.Workers != tc.want {
			t.Errorf("%s: Workers = %d, want %d", tc.name, opts.Workers, tc.want)
		}
	}
}
