package summary_test

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/summary"
)

// ExampleBuild runs the full pipeline — complete 1D statistics, selected
// 2D statistics, polynomial compression, MaxEnt solve — over a small
// relation and answers a counting query from the solved model alone. The
// 1D statistic families are complete, so single-attribute counts are
// reproduced (up to solver tolerance) without touching the data again.
func ExampleBuild() {
	sch := schema.MustNew(
		schema.MustCategorical("color", []string{"red", "green", "blue"}),
		schema.MustCategorical("size", []string{"S", "M", "L"}),
	)
	rel := relation.New(sch)
	for i := 0; i < 90; i++ {
		rel.MustAppend([]int{i % 3, (i / 3) % 3})
	}

	sum, err := summary.Build(rel, summary.Options{PairBudget: -1})
	if err != nil {
		panic(err)
	}

	// COUNT(*) WHERE color = 'red' — a third of the 90 rows.
	red := query.NewPredicate(2).WhereEq(0, 0)
	count, err := sum.EstimateCount(red)
	if err != nil {
		panic(err)
	}
	fmt.Printf("count(color=red) ≈ %.0f of %.0f rows\n", count, sum.N())
	fmt.Printf("model size: %d bytes\n", sum.ApproxBytes())
	// Output:
	// count(color=red) ≈ 30 of 90 rows
	// model size: 48 bytes
}
