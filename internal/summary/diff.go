package summary

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// AttrDrift reports how far one attribute's marginal distribution moved
// between two summaries. TotalVariation is the total-variation distance
// between the normalized 1D marginals (0 = identical shape, 1 = disjoint
// support); MeanRelError and MaxRelError aggregate the symmetric relative
// error of Sec. 6.2 (metrics.RelativeError) across the attribute's
// buckets, computed on the normalized marginals so dataset growth alone
// does not read as drift.
type AttrDrift struct {
	Attr           string  `json:"attr"`
	TotalVariation float64 `json:"total_variation"`
	MeanRelError   float64 `json:"mean_rel_error"`
	MaxRelError    float64 `json:"max_rel_error"`
}

// DiffReport is the result of Diff: per-attribute drift plus aggregates.
// All measures are symmetric in the two arguments, and a summary diffed
// against itself reports zero everywhere.
type DiffReport struct {
	// RowsA and RowsB are the summarized row counts N of the two sides.
	RowsA float64 `json:"rows_a"`
	RowsB float64 `json:"rows_b"`
	// Attrs holds one drift entry per schema attribute, in schema order.
	Attrs []AttrDrift `json:"attrs"`
	// MeanTotalVariation and MaxTotalVariation aggregate Attrs; MaxDriftAttr
	// names the attribute attaining the max.
	MeanTotalVariation float64 `json:"mean_total_variation"`
	MaxTotalVariation  float64 `json:"max_total_variation"`
	MaxDriftAttr       string  `json:"max_drift_attr,omitempty"`
}

// Diff compares the per-attribute marginal distributions maintained by
// two summaries — the same complete 1D statistics the solver fits and the
// streaming-drift experiment scores against — and reports how far each
// attribute drifted. The summaries must describe the same schema
// (attribute names and domain sizes); they need not have the same row
// count, since marginals are normalized before comparison.
func Diff(a, b *Summary) (DiffReport, error) {
	if a == nil || b == nil {
		return DiffReport{}, fmt.Errorf("summary: diff requires two summaries")
	}
	sa, sb := a.Schema(), b.Schema()
	if sa.NumAttrs() != sb.NumAttrs() {
		return DiffReport{}, fmt.Errorf("summary: diff schemas differ: %d vs %d attributes", sa.NumAttrs(), sb.NumAttrs())
	}
	for i := 0; i < sa.NumAttrs(); i++ {
		aa, ab := sa.Attr(i), sb.Attr(i)
		if aa.Name() != ab.Name() || aa.Size() != ab.Size() {
			return DiffReport{}, fmt.Errorf("summary: diff schemas differ at attribute %d: %s[%d] vs %s[%d]",
				i, aa.Name(), aa.Size(), ab.Name(), ab.Size())
		}
	}

	rep := DiffReport{RowsA: a.N(), RowsB: b.N(), Attrs: make([]AttrDrift, 0, sa.NumAttrs())}
	oneA, oneB := a.Stats().OneD, b.Stats().OneD
	for i := 0; i < sa.NumAttrs(); i++ {
		pa, pb := normalize(oneA[i]), normalize(oneB[i])
		drift := AttrDrift{Attr: sa.Attr(i).Name()}
		errs := make([]float64, len(pa))
		tv := 0.0
		for v := range pa {
			tv += math.Abs(pa[v] - pb[v])
			e := metrics.RelativeError(pa[v], pb[v])
			errs[v] = e
			if e > drift.MaxRelError {
				drift.MaxRelError = e
			}
		}
		drift.TotalVariation = tv / 2
		drift.MeanRelError = metrics.Mean(errs)
		rep.Attrs = append(rep.Attrs, drift)
		if drift.TotalVariation > rep.MaxTotalVariation {
			rep.MaxTotalVariation = drift.TotalVariation
			rep.MaxDriftAttr = drift.Attr
		}
	}
	tvs := make([]float64, len(rep.Attrs))
	for i, d := range rep.Attrs {
		tvs[i] = d.TotalVariation
	}
	rep.MeanTotalVariation = metrics.Mean(tvs)
	return rep, nil
}

// normalize returns counts scaled to sum to 1 (all-zero input stays
// all-zero, so an empty marginal diffs as identical to another empty
// marginal rather than producing NaNs).
func normalize(counts []float64) []float64 {
	sum := 0.0
	for _, c := range counts {
		sum += c
	}
	out := make([]float64, len(counts))
	if sum == 0 {
		return out
	}
	for v, c := range counts {
		out[v] = c / sum
	}
	return out
}
