package summary

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
)

// codecTestRelation builds a correlated relation large enough for the 2D
// statistics to matter, without depending on internal/experiment (which
// would create an import cycle through internal/server).
func codecTestRelation(t testing.TB, rows int, seed int64) *relation.Relation {
	t.Helper()
	sch := schema.MustNew(
		schema.MustCategorical("region", []string{"NA", "EU", "APAC", "LATAM"}),
		schema.MustCategorical("product", []string{"a", "b", "c", "d", "e", "f"}),
		schema.MustCategorical("channel", []string{"web", "store", "phone"}),
		schema.MustBinned("amount", 0, 1000, 8),
	)
	rng := rand.New(rand.NewSource(seed))
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		region := rng.Intn(4)
		product := (region + rng.Intn(2)) % 6
		if rng.Float64() < 0.1 {
			product = rng.Intn(6)
		}
		channel := rng.Intn(3)
		if region == 2 && rng.Float64() < 0.5 {
			channel = 0
		}
		bin, err := sch.Attr(3).Bin(rng.Float64() * 1000)
		if err != nil {
			t.Fatal(err)
		}
		rel.MustAppend([]int{region, product, channel, bin})
	}
	return rel
}

// randomPredicate draws a random conjunction over the schema: each
// attribute independently unconstrained, an equality, a range, or a set.
func randomPredicate(sch *schema.Schema, rng *rand.Rand) *query.Predicate {
	p := query.NewPredicate(sch.NumAttrs())
	for a := 0; a < sch.NumAttrs(); a++ {
		n := sch.Attr(a).Size()
		switch rng.Intn(4) {
		case 1:
			p.WhereEq(a, rng.Intn(n))
		case 2:
			lo := rng.Intn(n)
			p.WhereRange(a, lo, lo+rng.Intn(n-lo))
		case 3:
			vals := make([]int, 1+rng.Intn(3))
			for i := range vals {
				vals[i] = rng.Intn(n)
			}
			p.WhereIn(a, vals...)
		}
	}
	return p
}

// roundTrip encodes est and decodes it back.
func roundTrip(t *testing.T, est core.Estimator) core.Estimator {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeEstimator(&buf, est); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeEstimator(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dec
}

// TestCodecRoundTripBitIdentical is the codec's core property: a decoded
// summary answers a randomized workload of counting and group-by queries
// bit-identically to the estimator it was encoded from — no re-solve, no
// tolerance.
func TestCodecRoundTripBitIdentical(t *testing.T) {
	rel := codecTestRelation(t, 4000, 7)
	sum, err := Build(rel, Options{Solver: solver.Options{MaxSweeps: 60}})
	if err != nil {
		t.Fatal(err)
	}
	psum, err := BuildPartitioned(rel, PartitionedOptions{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}

	for _, est := range []core.Estimator{sum, psum} {
		est := est
		t.Run(est.Name(), func(t *testing.T) {
			dec := roundTrip(t, est)
			if dec.Name() != est.Name() {
				t.Fatalf("decoded name %q, want %q", dec.Name(), est.Name())
			}
			if dec.ApproxBytes() != est.ApproxBytes() {
				t.Errorf("decoded ApproxBytes %d, want %d", dec.ApproxBytes(), est.ApproxBytes())
			}
			rng := rand.New(rand.NewSource(42))
			for q := 0; q < 200; q++ {
				pred := randomPredicate(rel.Schema(), rng)
				want, err1 := est.EstimateCount(pred)
				got, err2 := dec.EstimateCount(pred)
				if err1 != nil || err2 != nil {
					t.Fatalf("query %d: errors %v / %v", q, err1, err2)
				}
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("query %d (%s): decoded count %v != original %v (diff %g)",
						q, pred, got, want, math.Abs(got-want))
				}
			}
			for q := 0; q < 20; q++ {
				pred := randomPredicate(rel.Schema(), rng)
				attrs := []int{rng.Intn(rel.NumAttrs())}
				want, err1 := est.EstimateGroupBy(attrs, pred)
				got, err2 := dec.EstimateGroupBy(attrs, pred)
				if err1 != nil || err2 != nil {
					t.Fatalf("group-by %d: errors %v / %v", q, err1, err2)
				}
				if len(want) != len(got) {
					t.Fatalf("group-by %d: %d groups decoded, want %d", q, len(got), len(want))
				}
				for i := range want {
					if math.Float64bits(want[i].Estimate) != math.Float64bits(got[i].Estimate) {
						t.Fatalf("group-by %d row %d: decoded %v != original %v",
							q, i, got[i].Estimate, want[i].Estimate)
					}
				}
			}
		})
	}
}

// TestCodecRoundTripRebuildsPruningIndex pins the interaction between the
// codec and the term-pruned masked evaluation: a snapshot carries only the
// statistics and solved weights, so the decoder must rebuild the
// attribute→term pruning index (it does, through NewCompressed), and the
// restored estimator must answer selective predicates — the shapes the
// pruned path accelerates — bit-identically to the summary it was encoded
// from.
func TestCodecRoundTripRebuildsPruningIndex(t *testing.T) {
	rel := codecTestRelation(t, 3000, 17)
	sum, err := Build(rel, Options{Solver: solver.Options{MaxSweeps: 60}})
	if err != nil {
		t.Fatal(err)
	}
	dec := roundTrip(t, sum).(*Summary)
	if !dec.System().Poly().PrunedIndexed() {
		t.Fatal("decoded summary's polynomial has no pruning index")
	}

	// Selective shapes: 0/1/2/all constrained attributes, InRange and InSet
	// mixes, including a raw unsorted set with duplicates and an
	// out-of-domain value (canonicalized per query on both sides).
	m := rel.NumAttrs()
	rawSet := query.NewPredicate(m)
	rawSet.Where(2, query.Constraint{Kind: query.InSet, Values: []int{2, 0, 2, 5}})
	preds := []*query.Predicate{
		nil,
		query.NewPredicate(m).WhereEq(1, 3),
		query.NewPredicate(m).WhereRange(3, 2, 6),
		query.NewPredicate(m).WhereRange(0, 1, 2).WhereIn(2, 0, 2),
		query.NewPredicate(m).WhereEq(1, 2).WhereIn(3, 1, 4, 7),
		rawSet,
		query.NewPredicate(m).WhereEq(0, 2).WhereRange(1, 1, 4).WhereIn(2, 0, 1).WhereRange(3, 0, 5),
	}
	for i, pred := range preds {
		want, err1 := sum.EstimateCount(pred)
		got, err2 := dec.EstimateCount(pred)
		if err1 != nil || err2 != nil {
			t.Fatalf("pred %d: errors %v / %v", i, err1, err2)
		}
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("pred %d (%v): decoded count %v != original %v", i, pred, got, want)
		}
		for a := 0; a < m; a++ {
			wantG, err1 := sum.EstimateGroupBy([]int{a}, pred)
			gotG, err2 := dec.EstimateGroupBy([]int{a}, pred)
			if err1 != nil || err2 != nil {
				t.Fatalf("pred %d group-by %d: errors %v / %v", i, a, err1, err2)
			}
			if len(wantG) != len(gotG) {
				t.Fatalf("pred %d group-by %d: %d groups decoded, want %d", i, a, len(gotG), len(wantG))
			}
			for g := range wantG {
				if math.Float64bits(wantG[g].Estimate) != math.Float64bits(gotG[g].Estimate) {
					t.Fatalf("pred %d group-by %d row %d: decoded %v != original %v",
						i, a, g, gotG[g].Estimate, wantG[g].Estimate)
				}
			}
		}
	}
}

// TestCodecPreservesMetadata checks the reporting accessors survive the
// round trip: solver report, chosen pairs, schema rendering, and N.
func TestCodecPreservesMetadata(t *testing.T) {
	rel := codecTestRelation(t, 2000, 11)
	sum, err := Build(rel, Options{Solver: solver.Options{MaxSweeps: 40}})
	if err != nil {
		t.Fatal(err)
	}
	dec := roundTrip(t, sum).(*Summary)
	if dec.N() != sum.N() {
		t.Errorf("N: %v != %v", dec.N(), sum.N())
	}
	if dec.Schema().String() != sum.Schema().String() {
		t.Errorf("schema: %s != %s", dec.Schema(), sum.Schema())
	}
	if dec.SolverReport() != sum.SolverReport() {
		t.Errorf("report: %+v != %+v", dec.SolverReport(), sum.SolverReport())
	}
	if len(dec.ChosenPairs()) != len(sum.ChosenPairs()) {
		t.Fatalf("pairs: %d != %d", len(dec.ChosenPairs()), len(sum.ChosenPairs()))
	}
	for i, pc := range sum.ChosenPairs() {
		if dec.ChosenPairs()[i] != pc {
			t.Errorf("pair %d: %+v != %+v", i, dec.ChosenPairs()[i], pc)
		}
	}
	if len(dec.Constraints()) != len(sum.Constraints()) {
		t.Errorf("constraints: %d != %d", len(dec.Constraints()), len(sum.Constraints()))
	}
}

// TestCodecRejectsGarbage checks the decoder fails loudly on inputs that
// are not snapshots: empty, unknown kind tags, and truncated payloads.
func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeEstimator(bytes.NewReader(nil)); err == nil {
		t.Error("decoding an empty stream succeeded")
	}
	if _, err := DecodeEstimator(bytes.NewReader([]byte{99})); err == nil {
		t.Error("decoding an unknown kind tag succeeded")
	}

	rel := codecTestRelation(t, 500, 3)
	sum, err := Build(rel, Options{Solver: solver.Options{MaxSweeps: 20}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeEstimator(&buf, sum); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must be rejected, never decoded into a partial
	// model. Step keeps the test fast while still covering field
	// boundaries.
	for cut := 0; cut < len(full)-1; cut += 17 {
		if _, err := DecodeEstimator(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("decoding a %d/%d-byte truncation succeeded", cut, len(full))
		}
	}
}

// TestEncodeRejectsNonModelEstimators: the exact engine and samples hold
// data, not solved weights; they must be refused, not silently mangled.
func TestEncodeRejectsNonModelEstimators(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeEstimator(&buf, stubEstimator{})
	if err == nil {
		t.Fatal("encoding a non-model estimator succeeded")
	}
}

type stubEstimator struct{}

func (stubEstimator) Name() string { return "stub" }
func (stubEstimator) EstimateCount(*query.Predicate) (float64, error) {
	return 0, nil
}
func (stubEstimator) EstimateGroupBy([]int, *query.Predicate) ([]core.GroupEstimate, error) {
	return nil, nil
}
func (stubEstimator) ApproxBytes() int64 { return 0 }
