// Refresh: the live-ingestion path of the summary engine. A served
// summary is immutable; when the underlying relation grows, Refresh
// produces a NEW immutable *Summary reflecting the appended rows, leaving
// the old one untouched for in-flight queries — the hot-swap contract the
// serving layer builds on.
//
// Two regimes, picked by the drift fraction (delta rows / new total):
//
//   - Small deltas: the statistic counts are updated incrementally from
//     the delta alone (stats.Set.ApplyDelta — no rescan of the base data)
//     and the MaxEnt solve is warm-started from the previous solution
//     (solver.Options.Init), converging in a few sweeps.
//   - Large deltas: the statistics are recounted from the full relation
//     and the solve restarts cold. The statistic *structure* (which 1D
//     families and 2D buckets exist) is kept from the original build in
//     both regimes, so refreshed summaries stay comparable across
//     versions; re-running bucket selection is a full Build, not a
//     Refresh.

package summary

import (
	"errors"
	"fmt"

	"repro/internal/polynomial"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/solver"
	"repro/internal/stats"
)

// DefaultDriftThreshold is the delta fraction beyond which Refresh
// abandons the incremental path and recounts from the full relation: with
// a quarter of the rows new, the warm start is no longer near the new
// optimum and a full recount costs little relative to the solve.
const DefaultDriftThreshold = 0.25

// RefreshOptions configure Refresh. The zero value requests the defaults
// noted on each field.
type RefreshOptions struct {
	// DriftThreshold is the fraction of appended rows (delta rows / new
	// total) beyond which Refresh falls back to a full recount + cold
	// solve (default DefaultDriftThreshold; negative disables the
	// fallback, forcing the incremental path).
	DriftThreshold float64
	// ForceRebuild skips the incremental path unconditionally.
	ForceRebuild bool
	// Solver configures the re-solve; N is filled in from the grown
	// relation and must be left zero. The zero value inherits the solver
	// defaults (which are the paper's).
	Solver solver.Options
}

// RefreshInfo reports what a Refresh did.
type RefreshInfo struct {
	// DeltaRows is the number of appended rows folded in.
	DeltaRows int
	// Drift is DeltaRows / new total rows.
	Drift float64
	// Rebuilt reports whether the fallback (full recount + cold solve)
	// path ran instead of the incremental one.
	Rebuilt bool
	// Solver is the outcome of the re-solve.
	Solver solver.Report
}

// Refresh folds appended rows into the summary and returns a new immutable
// *Summary answering over the grown relation. full must be the complete
// grown relation (base + delta, typically a relation.Mutable freeze) and
// delta the appended suffix; Refresh cross-checks their cardinalities
// against the summary's, so a mis-sliced delta fails loudly instead of
// silently double-counting. The receiver is never mutated and keeps
// answering queries throughout.
func (s *Summary) Refresh(full, delta *relation.Relation, opts RefreshOptions) (*Summary, RefreshInfo, error) {
	if full == nil || delta == nil {
		return nil, RefreshInfo{}, errors.New("summary: Refresh needs the full relation and the delta")
	}
	if opts.Solver.N != 0 {
		return nil, RefreshInfo{}, errors.New("summary: RefreshOptions.Solver.N is set from the relation; leave it zero")
	}
	base := int(s.n)
	if full.NumRows() != base+delta.NumRows() {
		return nil, RefreshInfo{}, fmt.Errorf("summary: full relation has %d rows, summary covers %d + delta %d",
			full.NumRows(), base, delta.NumRows())
	}
	if delta.NumRows() == 0 {
		// Nothing to fold in; the summary is already current.
		return s, RefreshInfo{Solver: s.report}, nil
	}
	threshold := opts.DriftThreshold
	if threshold == 0 {
		threshold = DefaultDriftThreshold
	}

	info := RefreshInfo{
		DeltaRows: delta.NumRows(),
		Drift:     float64(delta.NumRows()) / float64(full.NumRows()),
	}
	info.Rebuilt = opts.ForceRebuild || (threshold > 0 && info.Drift > threshold)

	var (
		set *stats.Set
		err error
	)
	if info.Rebuilt {
		set, err = s.recountStats(full)
	} else {
		set = s.set.Clone()
		err = set.ApplyDelta(delta)
	}
	if err != nil {
		return nil, RefreshInfo{}, fmt.Errorf("summary: refresh statistics: %w", err)
	}

	// The statistic structure is unchanged, so the compressed polynomial
	// is reused as-is; only the variable values are re-solved.
	sys := polynomial.NewSystem(s.sys.Poly())
	constraints := make([]solver.Constraint, 0, set.NumStatistics())
	for attr, col := range set.OneD {
		for value, target := range col {
			constraints = append(constraints, solver.OneDConstraint(attr, value, target))
		}
	}
	for j, st := range set.Multi {
		constraints = append(constraints, solver.MultiConstraint(j, st.Count))
	}

	sopts := opts.Solver
	sopts.N = float64(set.N)
	autoWorkers(&sopts, len(s.pairs))
	if !info.Rebuilt {
		sopts.Init = s.sys
	}
	report, err := solver.Solve(sys, constraints, sopts)
	if err != nil {
		return nil, RefreshInfo{}, fmt.Errorf("summary: refresh solve: %w", err)
	}
	info.Solver = report

	p := sys.Eval(nil)
	if p <= 0 {
		return nil, RefreshInfo{}, fmt.Errorf("summary: refreshed polynomial evaluates to %g; model is degenerate", p)
	}

	return &Summary{
		name:        s.name,
		sch:         s.sch,
		n:           float64(set.N),
		set:         set,
		sys:         sys,
		constraints: constraints,
		pairs:       s.pairs,
		report:      report,
		p:           p,
		maxCombos:   s.maxCombos,
	}, info, nil
}

// recountStats recomputes the statistic counts from the full relation
// while keeping the structure (1D families and multi-dimensional buckets)
// of the summary's original set.
func (s *Summary) recountStats(full *relation.Relation) (*stats.Set, error) {
	set := stats.NewSet(full)
	recounted := make([]stats.Statistic, len(s.set.Multi))
	for j, st := range s.set.Multi {
		recounted[j] = stats.Statistic{
			Attrs:  append([]int(nil), st.Attrs...),
			Ranges: append([]query.Range(nil), st.Ranges...),
			Count:  float64(full.Count(st.Predicate(full.NumAttrs()))),
		}
	}
	if err := set.AddMulti(recounted...); err != nil {
		return nil, err
	}
	return set, nil
}
