// Package summary is the orchestration layer of the EntropyDB
// reproduction: it composes the statistics subsystem, the factorized
// MaxEnt polynomial, and the coordinate-descent solver into the paper's
// core loop (Sec. 3–4):
//
//	relation → 1D complete stats → multi-dimensional statistic selection
//	         → compressed polynomial → solved MaxEnt model → query answering
//
// Build runs the pipeline end to end and returns a Summary, a compact
// probabilistic model of the relation that answers counting and group-by
// queries via masked polynomial evaluation (Eq. 16): the estimated count
// of σ_π(I) is n · P_π / P, where P_π is the polynomial with every
// 1-dimensional variable outside the predicate set to 0.
//
// Summary implements core.Estimator, so the experiment harness drives it
// through the same interface as the exact engine and the sampling
// baselines.
package summary

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/polynomial"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/stats"
)

// Options configure Build. The zero value requests the defaults noted on
// each field.
type Options struct {
	// PairBudget is B_a, the number of attribute pairs that receive
	// multi-dimensional statistics (default 2; negative means none, which
	// yields the pure independence model over the 1D statistics).
	PairBudget int
	// PerPairBudget is B_s, the number of 2D statistics per chosen pair
	// (default 8).
	PerPairBudget int
	// Policy selects which attribute pairs receive statistics
	// (default ByCorrelation).
	Policy stats.PairPolicy
	// Heuristic selects the per-pair bucket heuristic (default
	// LargeSingleCell).
	Heuristic stats.Heuristic
	// Solver configures the MaxEnt solve; N is filled in from the
	// relation and must be left zero.
	Solver solver.Options
	// MaxGroupCombos bounds the number of value combinations
	// EstimateGroupBy will enumerate (default 65536).
	MaxGroupCombos int
}

// autoWorkersPairs is the B_a at which Build and Refresh switch the
// solver's derivative pool on by themselves: the per-sweep fan-out/join
// costs more than it saves below roughly this many statistic-bearing
// pairs (see BenchmarkSolveWorkersCrossover in internal/solver).
const autoWorkersPairs = 8

// autoWorkers enables the solver's derivative worker pool on large
// instances when the caller left Workers unset (0). An explicit Workers
// value — including 1 for "stay sequential" — is always respected.
func autoWorkers(sopts *solver.Options, pairs int) {
	if sopts.Workers == 0 && pairs >= autoWorkersPairs {
		sopts.Workers = runtime.GOMAXPROCS(0)
	}
}

func (o *Options) setDefaults() {
	if o.PairBudget == 0 {
		o.PairBudget = 2
	}
	if o.PerPairBudget == 0 {
		o.PerPairBudget = 8
	}
	if o.MaxGroupCombos <= 0 {
		o.MaxGroupCombos = 1 << 16
	}
}

// Summary is a solved MaxEnt model of one relation. It is immutable after
// Build and safe for concurrent query answering.
type Summary struct {
	name        string
	sch         *schema.Schema
	n           float64
	set         *stats.Set
	sys         *polynomial.System
	constraints []solver.Constraint
	pairs       []stats.PairCorrelation
	report      solver.Report
	p           float64 // cached P = Eval(nil) of the solved system
	maxCombos   int
}

// Summary satisfies the shared estimator interface.
var _ core.Estimator = (*Summary)(nil)

// Build runs the full summarization pipeline over the relation:
// complete 1-dimensional statistics, correlation-ranked multi-dimensional
// statistic selection, polynomial compression, and the MaxEnt solve. The
// returned Summary answers queries without ever touching the relation
// again.
func Build(rel *relation.Relation, opts Options) (*Summary, error) {
	if rel.NumRows() == 0 {
		return nil, errors.New("summary: cannot summarize an empty relation")
	}
	if opts.Solver.N != 0 {
		return nil, errors.New("summary: Options.Solver.N is set from the relation; leave it zero")
	}
	opts.setDefaults()

	// Stage 1: statistics (Sec. 3.1, 4.3).
	set := stats.NewSet(rel)
	var pairs []stats.PairCorrelation
	if opts.PairBudget > 0 {
		var err error
		pairs, err = stats.SelectMulti(rel, set, opts.PairBudget, opts.PerPairBudget, opts.Policy, opts.Heuristic)
		if err != nil {
			return nil, fmt.Errorf("summary: statistic selection: %w", err)
		}
	}

	// Stage 2: compressed polynomial (Sec. 4.1).
	comp, err := polynomial.NewCompressed(set.DomainSizes, set.MultiSpecs())
	if err != nil {
		return nil, fmt.Errorf("summary: polynomial compression: %w", err)
	}
	sys := polynomial.NewSystem(comp)

	// Stage 3: one expected-value constraint per statistic (Sec. 3.3).
	constraints := make([]solver.Constraint, 0, set.NumStatistics())
	for attr, col := range set.OneD {
		for value, target := range col {
			constraints = append(constraints, solver.OneDConstraint(attr, value, target))
		}
	}
	for j, st := range set.Multi {
		constraints = append(constraints, solver.MultiConstraint(j, st.Count))
	}

	// Stage 4: solve.
	sopts := opts.Solver
	sopts.N = float64(set.N)
	autoWorkers(&sopts, opts.PairBudget)
	report, err := solver.Solve(sys, constraints, sopts)
	if err != nil {
		return nil, fmt.Errorf("summary: solve: %w", err)
	}

	// Evaluating once flushes the prefix-sum caches left dirty by the
	// solver's final variable updates, making subsequent concurrent
	// read-only evaluation safe, and pins the normalization constant.
	p := sys.Eval(nil)
	if p <= 0 {
		return nil, fmt.Errorf("summary: solved polynomial evaluates to %g; model is degenerate", p)
	}

	return &Summary{
		name:        fmt.Sprintf("maxent[%s,Ba=%d,Bs=%d]", opts.Heuristic, opts.PairBudget, opts.PerPairBudget),
		sch:         rel.Schema(),
		n:           float64(set.N),
		set:         set,
		sys:         sys,
		constraints: constraints,
		pairs:       pairs,
		report:      report,
		p:           p,
		maxCombos:   opts.MaxGroupCombos,
	}, nil
}

// Name identifies the summary configuration in reports.
func (s *Summary) Name() string { return s.name }

// Schema returns the schema the summary was built over.
func (s *Summary) Schema() *schema.Schema { return s.sch }

// N returns the cardinality of the summarized relation.
func (s *Summary) N() float64 { return s.n }

// Stats returns the statistic set Φ the model was fit to. Callers must
// treat it as read-only.
func (s *Summary) Stats() *stats.Set { return s.set }

// System returns the solved polynomial system. Callers must treat it as
// read-only; mutating variables invalidates the summary.
func (s *Summary) System() *polynomial.System { return s.sys }

// Constraints returns the solver constraints the model was fit to.
func (s *Summary) Constraints() []solver.Constraint { return s.constraints }

// ChosenPairs returns the attribute pairs that received multi-dimensional
// statistics, most correlated first.
func (s *Summary) ChosenPairs() []stats.PairCorrelation { return s.pairs }

// SolverReport returns the outcome of the MaxEnt solve.
func (s *Summary) SolverReport() solver.Report { return s.report }

// ApproxBytes estimates the serialized footprint of the summary: one
// float64 per polynomial variable plus the structural description of each
// multi-dimensional statistic (two int32 attribute indexes and two int32
// range bounds per constrained attribute). The relation itself is not
// retained.
func (s *Summary) ApproxBytes() int64 {
	rep := s.sys.Poly().Size()
	bytes := int64(rep.OneDVariables)*8 + int64(rep.MultiVariables)*8
	for _, st := range s.set.Multi {
		bytes += int64(len(st.Attrs)) * 12 // attr index + range lo/hi
	}
	return bytes
}

// EstimateCount answers COUNT(σ_π(I)) as n · P_π / P (Eq. 16). A nil
// predicate returns n exactly.
func (s *Summary) EstimateCount(pred *query.Predicate) (float64, error) {
	if pred == nil {
		return s.n, nil
	}
	if pred.NumAttrs() != s.sch.NumAttrs() {
		return 0, fmt.Errorf("summary: predicate over %d attributes, schema has %d", pred.NumAttrs(), s.sch.NumAttrs())
	}
	if pred.Unsatisfiable() {
		return 0, nil
	}
	return s.n * s.sys.Eval(pred) / s.p, nil
}

// EstimateGroupBy estimates COUNT(*) per combination of values of the
// grouping attributes among tuples satisfying pred, by enumerating the
// cross product of the grouping domains and answering one masked
// evaluation per combination. Unlike the scan-based estimators, the model
// has no notion of "observed" groups, so every combination with a
// positive estimate is returned — including the phantom groups the
// paper's rare-value experiment measures.
func (s *Summary) EstimateGroupBy(groupAttrs []int, pred *query.Predicate) ([]core.GroupEstimate, error) {
	if len(groupAttrs) == 0 || len(groupAttrs) > 4 {
		return nil, fmt.Errorf("summary: group-by needs 1..4 attributes, got %d", len(groupAttrs))
	}
	if pred != nil && pred.NumAttrs() != s.sch.NumAttrs() {
		return nil, fmt.Errorf("summary: predicate over %d attributes, schema has %d", pred.NumAttrs(), s.sch.NumAttrs())
	}
	combos := 1
	for _, a := range groupAttrs {
		if a < 0 || a >= s.sch.NumAttrs() {
			return nil, fmt.Errorf("summary: group-by attribute %d out of range [0,%d)", a, s.sch.NumAttrs())
		}
		combos *= s.sch.Attr(a).Size()
		if combos > s.maxCombos {
			return nil, fmt.Errorf("summary: group-by space exceeds %d combinations", s.maxCombos)
		}
	}
	base := pred
	if base == nil {
		base = query.NewPredicate(s.sch.NumAttrs())
	}
	var out []core.GroupEstimate
	vals := make([]int, len(groupAttrs))
	var walk func(k int) error
	walk = func(k int) error {
		if k == len(groupAttrs) {
			q := base.Clone()
			for i, a := range groupAttrs {
				q.WhereEq(a, vals[i])
			}
			est, err := s.EstimateCount(q)
			if err != nil {
				return err
			}
			if est > 0 {
				out = append(out, core.GroupEstimate{
					Values:   append([]int(nil), vals...),
					Estimate: est,
				})
			}
			return nil
		}
		a := groupAttrs[k]
		// Only descend into values compatible with any constraint the
		// predicate already places on the attribute, pruning whole
		// subtrees (and their Clone allocations) up front.
		cons := base.Constraint(a)
		for v := 0; v < s.sch.Attr(a).Size(); v++ {
			if !cons.Matches(v) {
				continue
			}
			vals[k] = v
			if err := walk(k + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	core.SortGroupEstimates(out)
	return out, nil
}
