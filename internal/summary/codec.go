// Binary codec for solved summaries: the serialization half of the
// snapshot store (internal/store). A solved summary is fully determined by
// its schema, the statistic set Φ it was fit to, and the converged variable
// weights (α, δ) of the polynomial — the polynomial structure itself is a
// deterministic function of the statistics, so it is rebuilt on decode
// rather than stored. Decoding therefore reconstructs a query-ready
// estimator without re-running the solver: the weights are restored
// bit-exactly (IEEE 754 bits are written verbatim) and the term caches are
// recomputed with the same deterministic full rebuild the solver's last
// sweep used, so a decoded summary answers every query bit-identically to
// the freshly-built one it was encoded from.
//
// The payload is a little-endian stream of uvarints, length-prefixed
// strings, and raw float64 bits. It carries no header or checksum of its
// own — framing, format versioning, and integrity are the store's job.

package summary

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"time"

	"repro/internal/core"
	"repro/internal/polynomial"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/stats"
)

// Estimator kind tags, the first byte of every encoded estimator.
const (
	kindSummary     = 1
	kindPartitioned = 2
)

// Sanity caps on decoded counts, so a corrupted length prefix fails with a
// descriptive error instead of attempting a multi-gigabyte allocation.
const (
	maxAttrs     = 1 << 12
	maxDomain    = 1 << 22
	maxMulti     = 1 << 20
	maxStringLen = 1 << 16
	maxParts     = 1 << 12
)

// ErrNotSnapshotable is reported by EncodeEstimator for estimator kinds
// that answer from data rather than from a solved model: serializing them
// would mean serializing (part of) the relation itself.
var ErrNotSnapshotable = errors.New("estimator is not snapshot-able")

// EncodeEstimator writes the snapshot payload of a solved estimator. Only
// the model-based estimators are snapshot-able: *Summary and *Partitioned
// answer queries from solved weights alone, while the exact engine and the
// sampling baselines would have to serialize (part of) the data itself.
func EncodeEstimator(w io.Writer, est core.Estimator) error {
	switch e := est.(type) {
	case *Summary:
		ew := newEncoder(w)
		ew.byte(kindSummary)
		e.encode(ew)
		return ew.flush()
	case *Partitioned:
		ew := newEncoder(w)
		ew.byte(kindPartitioned)
		e.encode(ew)
		return ew.flush()
	default:
		return fmt.Errorf("summary: estimator %q (%T): %w", est.Name(), est, ErrNotSnapshotable)
	}
}

// DecodeEstimator reads a snapshot payload written by EncodeEstimator and
// reconstructs the estimator, query-ready, without re-solving.
func DecodeEstimator(r io.Reader) (core.Estimator, error) {
	dr := newDecoder(r)
	kind := dr.byte()
	if dr.err != nil {
		return nil, fmt.Errorf("summary: decode: %w", dr.err)
	}
	switch kind {
	case kindSummary:
		s, err := decodeSummary(dr)
		if err != nil {
			return nil, err
		}
		return s, nil
	case kindPartitioned:
		return decodePartitioned(dr)
	default:
		return nil, fmt.Errorf("summary: decode: unknown estimator kind %d", kind)
	}
}

// PeekName reads just the estimator kind tag and name from the head of a
// snapshot payload, without reconstructing the model — the store uses it
// to synthesize manifest entries for snapshot files it discovers on disk.
// Both estimator kinds serialize their name first, so this prefix is
// stable across the payload layouts.
func PeekName(r io.Reader) (string, error) {
	dr := newDecoder(r)
	kind := dr.byte()
	name := dr.str()
	if dr.err != nil {
		return "", fmt.Errorf("summary: peek: %w", dr.err)
	}
	if kind != kindSummary && kind != kindPartitioned {
		return "", fmt.Errorf("summary: peek: unknown estimator kind %d", kind)
	}
	return name, nil
}

// EncodeTo writes the summary's snapshot payload (kind tag included), so a
// single summary can be persisted without going through EncodeEstimator.
func (s *Summary) EncodeTo(w io.Writer) error { return EncodeEstimator(w, s) }

// EncodeTo writes the partitioned summary's snapshot payload (kind tag
// included).
func (p *Partitioned) EncodeTo(w io.Writer) error { return EncodeEstimator(w, p) }

// --- Summary ----------------------------------------------------------

func (s *Summary) encode(w *encoder) {
	w.str(s.name)
	encodeSchema(w, s.sch)
	w.f64(s.n)
	w.uvarint(uint64(s.maxCombos))

	// Statistic set Φ.
	w.uvarint(uint64(s.set.N))
	for _, col := range s.set.OneD {
		w.uvarint(uint64(len(col)))
		for _, x := range col {
			w.f64(x)
		}
	}
	w.uvarint(uint64(len(s.set.Multi)))
	for _, st := range s.set.Multi {
		w.uvarint(uint64(len(st.Attrs)))
		for k, a := range st.Attrs {
			w.uvarint(uint64(a))
			w.uvarint(uint64(st.Ranges[k].Lo))
			w.uvarint(uint64(st.Ranges[k].Hi))
		}
		w.f64(st.Count)
	}

	// Chosen pairs (reporting metadata).
	w.uvarint(uint64(len(s.pairs)))
	for _, pc := range s.pairs {
		w.uvarint(uint64(pc.A1))
		w.uvarint(uint64(pc.A2))
		w.f64(pc.Chi2)
		w.f64(pc.V)
	}

	// Solver report.
	w.uvarint(uint64(s.report.Sweeps))
	w.f64(s.report.MaxViolation)
	w.bool(s.report.Converged)
	w.uvarint(uint64(s.report.Duration))
	w.uvarint(uint64(s.report.Constraints))

	// Converged variable weights, raw IEEE 754 bits.
	for a := 0; a < s.sch.NumAttrs(); a++ {
		for v := 0; v < s.sch.Attr(a).Size(); v++ {
			w.f64(s.sys.OneD(a, v))
		}
	}
	for j := 0; j < len(s.set.Multi); j++ {
		w.f64(s.sys.MultiVar(j))
	}
}

func decodeSummary(r *decoder) (*Summary, error) {
	fail := func(err error) (*Summary, error) {
		return nil, fmt.Errorf("summary: decode: %w", err)
	}

	name := r.str()
	sch, err := decodeSchema(r)
	if err != nil {
		return fail(err)
	}
	n := r.f64()
	maxCombos := int(r.uvarint(1 << 32))
	if r.err != nil {
		return fail(r.err)
	}
	if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return fail(fmt.Errorf("invalid cardinality %g", n))
	}
	if maxCombos <= 0 {
		return fail(fmt.Errorf("invalid group-by combination bound %d", maxCombos))
	}

	set := &stats.Set{
		N:           int(r.uvarint(1 << 40)),
		DomainSizes: sch.DomainSizes(),
		OneD:        make([][]float64, sch.NumAttrs()),
	}
	for a := range set.OneD {
		ln := int(r.uvarint(maxDomain))
		if r.err != nil {
			return fail(r.err)
		}
		if ln != sch.Attr(a).Size() {
			return fail(fmt.Errorf("attribute %d: %d 1D statistics for a domain of size %d", a, ln, sch.Attr(a).Size()))
		}
		col := make([]float64, ln)
		for v := range col {
			col[v] = r.f64()
		}
		set.OneD[a] = col
	}
	numMulti := int(r.uvarint(maxMulti))
	if r.err != nil {
		return fail(r.err)
	}
	multi := make([]stats.Statistic, 0, numMulti)
	for j := 0; j < numMulti; j++ {
		nAttrs := int(r.uvarint(maxAttrs))
		if r.err != nil {
			return fail(r.err)
		}
		st := stats.Statistic{
			Attrs:  make([]int, nAttrs),
			Ranges: make([]query.Range, nAttrs),
		}
		for k := range st.Attrs {
			st.Attrs[k] = int(r.uvarint(maxAttrs))
			st.Ranges[k].Lo = int(r.uvarint(maxDomain))
			st.Ranges[k].Hi = int(r.uvarint(maxDomain))
		}
		st.Count = r.f64()
		if r.err != nil {
			return fail(r.err)
		}
		multi = append(multi, st)
	}
	// AddMulti re-validates attribute order, domain bounds, and pairwise
	// disjointness, so a corrupted statistic cannot slip into the model.
	if err := set.AddMulti(multi...); err != nil {
		return fail(err)
	}

	numPairs := int(r.uvarint(maxAttrs * maxAttrs))
	if r.err != nil {
		return fail(r.err)
	}
	pairs := make([]stats.PairCorrelation, numPairs)
	for i := range pairs {
		pairs[i].A1 = int(r.uvarint(maxAttrs))
		pairs[i].A2 = int(r.uvarint(maxAttrs))
		pairs[i].Chi2 = r.f64()
		pairs[i].V = r.f64()
	}

	var report solver.Report
	report.Sweeps = int(r.uvarint(1 << 32))
	report.MaxViolation = r.f64()
	report.Converged = r.bool()
	report.Duration = time.Duration(r.uvarint(math.MaxInt64))
	report.Constraints = int(r.uvarint(1 << 32))

	alpha := make([][]float64, sch.NumAttrs())
	for a := range alpha {
		col := make([]float64, sch.Attr(a).Size())
		for v := range col {
			col[v] = r.f64()
		}
		alpha[a] = col
	}
	delta := make([]float64, len(set.Multi))
	for j := range delta {
		delta[j] = r.f64()
	}
	if r.err != nil {
		return fail(r.err)
	}

	// Rebuild the polynomial structure from the statistics — it is a
	// deterministic function of the specs — and restore the solved weights.
	comp, err := polynomial.NewCompressed(set.DomainSizes, set.MultiSpecs())
	if err != nil {
		return fail(err)
	}
	sys := polynomial.NewSystem(comp)
	for a, col := range alpha {
		for v, x := range col {
			sys.SetOneD(a, v, x)
		}
	}
	for j, x := range delta {
		sys.SetMulti(j, x)
	}
	// A full deterministic rebuild recomputes the cached P with exactly the
	// summation order the solver's final sweep used, so the normalization
	// constant — and with it every answer — matches the fresh build
	// bit-for-bit.
	sys.Recompute()
	p := sys.Eval(nil)
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return fail(fmt.Errorf("restored polynomial evaluates to %g; snapshot is degenerate", p))
	}

	// Reconstitute the constraints in Build's order (1D by attribute and
	// value, then multi by index).
	constraints := make([]solver.Constraint, 0, set.NumStatistics())
	for attr, col := range set.OneD {
		for value, target := range col {
			constraints = append(constraints, solver.OneDConstraint(attr, value, target))
		}
	}
	for j, st := range set.Multi {
		constraints = append(constraints, solver.MultiConstraint(j, st.Count))
	}

	return &Summary{
		name:        name,
		sch:         sch,
		n:           n,
		set:         set,
		sys:         sys,
		constraints: constraints,
		pairs:       pairs,
		report:      report,
		p:           p,
		maxCombos:   maxCombos,
	}, nil
}

// --- Partitioned ------------------------------------------------------

func (p *Partitioned) encode(w *encoder) {
	w.str(p.name)
	w.f64(p.n)
	w.uvarint(uint64(len(p.parts)))
	for _, s := range p.parts {
		s.encode(w)
	}
}

func decodePartitioned(r *decoder) (*Partitioned, error) {
	fail := func(err error) (*Partitioned, error) {
		return nil, fmt.Errorf("summary: decode partitioned: %w", err)
	}
	name := r.str()
	n := r.f64()
	k := int(r.uvarint(maxParts))
	if r.err != nil {
		return fail(r.err)
	}
	if k < 1 {
		return fail(fmt.Errorf("snapshot holds %d partitions", k))
	}
	parts := make([]*Summary, k)
	for i := range parts {
		s, err := decodeSummary(r)
		if err != nil {
			return fail(fmt.Errorf("partition %d/%d: %w", i+1, k, err))
		}
		parts[i] = s
	}
	sch := parts[0].Schema()
	for i, s := range parts[1:] {
		if s.Schema().String() != sch.String() {
			return fail(fmt.Errorf("partition %d/%d schema %s differs from partition 1 schema %s",
				i+2, k, s.Schema(), sch))
		}
	}
	return &Partitioned{name: name, sch: sch, n: n, parts: parts}, nil
}

// --- schema -----------------------------------------------------------

const (
	schemaKindCategorical = 0
	schemaKindBinned      = 1
)

func encodeSchema(w *encoder, sch *schema.Schema) {
	w.uvarint(uint64(sch.NumAttrs()))
	for i := 0; i < sch.NumAttrs(); i++ {
		a := sch.Attr(i)
		w.str(a.Name())
		switch a.Kind() {
		case schema.Categorical:
			w.byte(schemaKindCategorical)
			w.uvarint(uint64(a.Size()))
			for v := 0; v < a.Size(); v++ {
				w.str(a.Label(v))
			}
		case schema.Binned:
			w.byte(schemaKindBinned)
			lo, hi := a.Bounds()
			w.f64(lo)
			w.f64(hi)
			w.uvarint(uint64(a.Size()))
		}
	}
}

func decodeSchema(r *decoder) (*schema.Schema, error) {
	numAttrs := int(r.uvarint(maxAttrs))
	if r.err != nil {
		return nil, r.err
	}
	attrs := make([]schema.Attribute, 0, numAttrs)
	for i := 0; i < numAttrs; i++ {
		name := r.str()
		kind := r.byte()
		if r.err != nil {
			return nil, r.err
		}
		switch kind {
		case schemaKindCategorical:
			nLabels := int(r.uvarint(maxDomain))
			if r.err != nil {
				return nil, r.err
			}
			labels := make([]string, nLabels)
			for v := range labels {
				labels[v] = r.str()
			}
			if r.err != nil {
				return nil, r.err
			}
			a, err := schema.NewCategorical(name, labels)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		case schemaKindBinned:
			lo := r.f64()
			hi := r.f64()
			bins := int(r.uvarint(maxDomain))
			if r.err != nil {
				return nil, r.err
			}
			a, err := schema.NewBinned(name, lo, hi, bins)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a)
		default:
			return nil, fmt.Errorf("unknown attribute kind %d", kind)
		}
	}
	return schema.New(attrs...)
}

// --- primitive stream -------------------------------------------------

// encoder is a sticky-error little-endian writer over a buffered stream.
type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func newEncoder(w io.Writer) *encoder { return &encoder{w: bufio.NewWriter(w)} }

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *encoder) byte(b byte) {
	if e.err != nil {
		return
	}
	e.err = e.w.WriteByte(b)
}

func (e *encoder) uvarint(x uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], x)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) f64(x float64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(x))
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) str(s string) {
	if len(s) > maxStringLen {
		if e.err == nil {
			e.err = fmt.Errorf("summary: string of %d bytes exceeds the %d-byte codec limit", len(s), maxStringLen)
		}
		return
	}
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

// decoder is the sticky-error counterpart of encoder. Every length read is
// bounded, so corrupted prefixes fail instead of driving allocations.
type decoder struct {
	r   *bufio.Reader
	buf [8]byte
	err error
}

func newDecoder(r io.Reader) *decoder { return &decoder{r: bufio.NewReader(r)} }

func (d *decoder) fail(err error) {
	if d.err == nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.fail(err)
		return 0
	}
	return b
}

func (d *decoder) uvarint(max uint64) uint64 {
	if d.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail(err)
		return 0
	}
	if x > max {
		d.fail(fmt.Errorf("count %d exceeds the sanity bound %d", x, max))
		return 0
	}
	return x
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.buf[:8]); err != nil {
		d.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
}

func (d *decoder) bool() bool { return d.byte() != 0 }

func (d *decoder) str() string {
	n := d.uvarint(maxStringLen)
	if d.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.fail(err)
		return ""
	}
	return string(buf)
}
