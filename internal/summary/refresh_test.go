package summary

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/stats"
)

func refreshTestSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustCategorical("a", []string{"u", "v", "w", "x"}),
		schema.MustCategorical("b", []string{"p", "q", "r"}),
		schema.MustBinned("c", 0, 100, 6),
	)
}

// drawCorrelated appends rows with a correlated (a, b) pair so the 2D
// statistics carry signal.
func drawCorrelated(m *relation.Mutable, rows int, rng *rand.Rand) {
	sch := m.Schema()
	for i := 0; i < rows; i++ {
		a := rng.Intn(sch.Attr(0).Size())
		b := rng.Intn(sch.Attr(1).Size())
		if rng.Float64() < 0.7 {
			b = a % sch.Attr(1).Size()
		}
		c := rng.Intn(sch.Attr(2).Size())
		if err := m.Append([]int{a, b, c}); err != nil {
			panic(err)
		}
	}
}

// refreshWorkload enumerates a deterministic set of count predicates
// covering 1- and 2-attribute selections.
func refreshWorkload(sch *schema.Schema) []*query.Predicate {
	var preds []*query.Predicate
	for v := 0; v < sch.Attr(0).Size(); v++ {
		p := query.NewPredicate(sch.NumAttrs())
		p.WhereEq(0, v)
		preds = append(preds, p)
	}
	for v1 := 0; v1 < sch.Attr(0).Size(); v1++ {
		for v2 := 0; v2 < sch.Attr(1).Size(); v2++ {
			p := query.NewPredicate(sch.NumAttrs())
			p.WhereEq(0, v1)
			p.WhereEq(1, v2)
			preds = append(preds, p)
		}
	}
	p := query.NewPredicate(sch.NumAttrs())
	p.WhereRange(2, 1, 4)
	preds = append(preds, p)
	return preds
}

// TestRefreshMatchesRebuild is the randomized equivalence test of the
// acceptance criteria: after random appends, the incrementally refreshed
// summary (delta statistics + warm-start solve) must answer every
// workload query within solver tolerance of a from-scratch model over the
// grown relation (full recount + cold solve, same statistic structure —
// both paths then share one unique MaxEnt optimum).
func TestRefreshMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sch := refreshTestSchema()
	opts := Options{
		PairBudget:    2,
		PerPairBudget: 6,
		Heuristic:     stats.Composite,
		Solver:        solver.Options{MaxSweeps: 500, Tolerance: 1e-8},
	}
	for trial := 0; trial < 5; trial++ {
		baseRows := 2000 + rng.Intn(2000)
		deltaRows := 1 + rng.Intn(baseRows/10)
		mut := relation.NewMutable(relation.NewWithCapacity(sch, baseRows+deltaRows))
		drawCorrelated(mut, baseRows, rng)
		base, _ := mut.Freeze()
		sum, err := Build(base, opts)
		if err != nil {
			t.Fatal(err)
		}

		drawCorrelated(mut, deltaRows, rng)
		full, _ := mut.Freeze()
		delta, err := full.Slice(baseRows, full.NumRows())
		if err != nil {
			t.Fatal(err)
		}

		ropts := RefreshOptions{
			DriftThreshold: -1, // force the incremental path
			Solver:         solver.Options{MaxSweeps: 500, Tolerance: 1e-8},
		}
		inc, info, err := sum.Refresh(full, delta, ropts)
		if err != nil {
			t.Fatal(err)
		}
		if info.Rebuilt {
			t.Fatalf("trial %d: incremental refresh reported a rebuild", trial)
		}
		if !info.Solver.Converged {
			t.Fatalf("trial %d: warm solve did not converge: %v", trial, info.Solver)
		}

		cold, cinfo, err := sum.Refresh(full, delta, RefreshOptions{
			ForceRebuild: true,
			Solver:       solver.Options{MaxSweeps: 500, Tolerance: 1e-8},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !cinfo.Rebuilt || !cinfo.Solver.Converged {
			t.Fatalf("trial %d: rebuild path: %+v", trial, cinfo)
		}

		if inc.N() != float64(full.NumRows()) || cold.N() != float64(full.NumRows()) {
			t.Fatalf("trial %d: refreshed N %g/%g, want %d", trial, inc.N(), cold.N(), full.NumRows())
		}

		tol := 1e-5 * float64(full.NumRows())
		for _, pred := range refreshWorkload(sch) {
			ei, err := inc.EstimateCount(pred)
			if err != nil {
				t.Fatal(err)
			}
			ec, err := cold.EstimateCount(pred)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ei-ec) > tol {
				t.Errorf("trial %d: pred %v: incremental %g vs rebuild %g (tol %g)",
					trial, pred, ei, ec, tol)
			}
		}

		// The original summary must be untouched and keep answering from
		// the base relation.
		if sum.N() != float64(baseRows) {
			t.Fatalf("trial %d: Refresh mutated the receiver (N=%g)", trial, sum.N())
		}
	}
}

// TestRefreshWarmStartCheaper pins the operational claim: on a small
// delta, the warm-started refresh needs fewer sweeps than the cold
// rebuild of the same grown relation.
func TestRefreshWarmStartCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sch := refreshTestSchema()
	mut := relation.NewMutable(relation.NewWithCapacity(sch, 0))
	drawCorrelated(mut, 20000, rng)
	base, _ := mut.Freeze()
	sum, err := Build(base, Options{Heuristic: stats.Composite, Solver: solver.Options{MaxSweeps: 500}})
	if err != nil {
		t.Fatal(err)
	}
	drawCorrelated(mut, 50, rng)
	full, _ := mut.Freeze()
	delta, err := full.Slice(base.NumRows(), full.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := sum.Refresh(full, delta, RefreshOptions{Solver: solver.Options{MaxSweeps: 500}})
	if err != nil {
		t.Fatal(err)
	}
	_, cold, err := sum.Refresh(full, delta, RefreshOptions{ForceRebuild: true, Solver: solver.Options{MaxSweeps: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rebuilt || !cold.Rebuilt {
		t.Fatalf("unexpected paths: warm.Rebuilt=%t cold.Rebuilt=%t", warm.Rebuilt, cold.Rebuilt)
	}
	if warm.Solver.Sweeps >= cold.Solver.Sweeps {
		t.Fatalf("warm refresh took %d sweeps, cold rebuild %d — warm must be cheaper on a 0.25%% delta",
			warm.Solver.Sweeps, cold.Solver.Sweeps)
	}
}

// TestRefreshDriftFallback checks the threshold policy: a delta larger
// than the drift threshold triggers the rebuild path automatically.
func TestRefreshDriftFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sch := refreshTestSchema()
	mut := relation.NewMutable(relation.NewWithCapacity(sch, 0))
	drawCorrelated(mut, 1000, rng)
	base, _ := mut.Freeze()
	sum, err := Build(base, Options{Solver: solver.Options{MaxSweeps: 500}})
	if err != nil {
		t.Fatal(err)
	}
	drawCorrelated(mut, 900, rng) // 47% of the grown relation
	full, _ := mut.Freeze()
	delta, _ := full.Slice(1000, full.NumRows())
	_, info, err := sum.Refresh(full, delta, RefreshOptions{Solver: solver.Options{MaxSweeps: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Rebuilt {
		t.Fatalf("47%% drift did not trigger the rebuild fallback (drift=%g)", info.Drift)
	}

	// A zero-row delta returns the summary unchanged.
	empty, _ := full.Slice(full.NumRows(), full.NumRows())
	same, info, err := sum.Refresh(base, empty, RefreshOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if same != sum || info.DeltaRows != 0 {
		t.Fatal("empty delta should return the receiver unchanged")
	}
}

// TestRefreshValidation exercises the bookkeeping cross-checks.
func TestRefreshValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sch := refreshTestSchema()
	mut := relation.NewMutable(relation.NewWithCapacity(sch, 0))
	drawCorrelated(mut, 500, rng)
	base, _ := mut.Freeze()
	sum, err := Build(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	drawCorrelated(mut, 100, rng)
	full, _ := mut.Freeze()
	delta, _ := full.Slice(500, 600)

	if _, _, err := sum.Refresh(nil, delta, RefreshOptions{}); err == nil {
		t.Fatal("Refresh accepted a nil full relation")
	}
	if _, _, err := sum.Refresh(base, delta, RefreshOptions{}); err == nil {
		t.Fatal("Refresh accepted full/delta cardinalities that do not add up")
	}
	if _, _, err := sum.Refresh(full, delta, RefreshOptions{Solver: solver.Options{N: 1}}); err == nil {
		t.Fatal("Refresh accepted a pre-set solver N")
	}
}
