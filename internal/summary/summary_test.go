package summary

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/solver"
	"repro/internal/stats"
)

// testRelation draws a correlated relation over three attributes: the
// first two are strongly dependent, the third is independent.
func testRelation(t *testing.T, rows int, seed int64) *relation.Relation {
	t.Helper()
	sch := schema.MustNew(
		schema.MustCategorical("a", []string{"x", "y", "z", "w"}),
		schema.MustCategorical("b", []string{"p", "q", "r"}),
		schema.MustBinned("c", 0, 100, 5),
	)
	rng := rand.New(rand.NewSource(seed))
	rel := relation.NewWithCapacity(sch, rows)
	for i := 0; i < rows; i++ {
		a := rng.Intn(4)
		b := a % 3 // b tracks a
		if rng.Float64() < 0.15 {
			b = rng.Intn(3)
		}
		c, err := sch.Attr(2).Bin(rng.Float64() * 100)
		if err != nil {
			t.Fatal(err)
		}
		rel.MustAppend([]int{a, b, c})
	}
	return rel
}

func buildSolved(t *testing.T, rel *relation.Relation, opts Options) *Summary {
	t.Helper()
	if opts.Solver.MaxSweeps == 0 {
		opts.Solver.MaxSweeps = 3000
	}
	if opts.Solver.Tolerance == 0 {
		// The paper's convergence threshold; small instances converge
		// sublinearly, so tighter tolerances need disproportionate sweeps.
		opts.Solver.Tolerance = 1e-6
	}
	s, err := Build(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SolverReport().Converged {
		t.Fatalf("solver did not converge: %v", s.SolverReport())
	}
	return s
}

// TestBuildMatchesConstraintStatistics is the PR's acceptance check: the
// solved summary's estimated counts on the solver's own constraint
// statistics must match the observed counts within the solver tolerance.
func TestBuildMatchesConstraintStatistics(t *testing.T) {
	rel := testRelation(t, 4000, 3)
	n := float64(rel.NumRows())
	tol := 1e-8
	for _, h := range []stats.Heuristic{stats.LargeSingleCell, stats.ZeroSingleCell, stats.Composite} {
		s := buildSolved(t, rel, Options{Heuristic: h, Solver: solver.Options{Tolerance: tol, MaxSweeps: 2000}})

		set := s.Stats()
		// Every 1D statistic: predicate A_i = v.
		for attr, col := range set.OneD {
			for value, want := range col {
				q := query.NewPredicate(rel.NumAttrs()).WhereEq(attr, value)
				got, err := s.EstimateCount(q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 10*tol*n {
					t.Errorf("%v: 1D stat (A%d=%d): estimate %g, observed %g", h, attr, value, got, want)
				}
			}
		}
		// Every multi-dimensional statistic, via its own predicate.
		for _, st := range set.Multi {
			q := st.Predicate(rel.NumAttrs())
			got, err := s.EstimateCount(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-st.Count) > 10*tol*n {
				t.Errorf("%v: multi stat %v: estimate %g, observed %g", h, st, got, st.Count)
			}
		}
	}
}

// TestEstimateCountBasics pins the trivial cases.
func TestEstimateCountBasics(t *testing.T) {
	rel := testRelation(t, 1000, 5)
	s := buildSolved(t, rel, Options{})
	if got, err := s.EstimateCount(nil); err != nil || got != float64(rel.NumRows()) {
		t.Fatalf("EstimateCount(nil) = %g, %v; want %d", got, err, rel.NumRows())
	}
	// An unsatisfiable predicate estimates to 0.
	bad := query.NewPredicate(rel.NumAttrs()).Where(0, query.ValueIn(query.NewRange(3, 1)))
	if got, err := s.EstimateCount(bad); err != nil || got != 0 {
		t.Fatalf("EstimateCount(unsatisfiable) = %g, %v; want 0", got, err)
	}
	// A predicate over the wrong arity is rejected.
	if _, err := s.EstimateCount(query.NewPredicate(7)); err == nil {
		t.Fatal("wrong-arity predicate accepted")
	}
	// The sum of single-value estimates over one attribute is n.
	total := 0.0
	for v := 0; v < s.Schema().Attr(0).Size(); v++ {
		est, err := s.EstimateCount(query.NewPredicate(rel.NumAttrs()).WhereEq(0, v))
		if err != nil {
			t.Fatal(err)
		}
		total += est
	}
	if math.Abs(total-float64(rel.NumRows())) > 1e-3 {
		t.Fatalf("per-value estimates sum to %g, want %d", total, rel.NumRows())
	}
}

// TestEstimateGroupByMatchesCounts checks group-by consistency: the
// group estimates of one attribute equal the per-value count estimates,
// and sum to the (estimated) predicate count.
func TestEstimateGroupByMatchesCounts(t *testing.T) {
	rel := testRelation(t, 1500, 11)
	s := buildSolved(t, rel, Options{})
	pred := query.NewPredicate(rel.NumAttrs()).WhereRange(2, 0, 2)
	groups, err := s.EstimateGroupBy([]int{1}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups returned")
	}
	sum := 0.0
	for _, g := range groups {
		want, err := s.EstimateCount(pred.Clone().WhereEq(1, g.Values[0]))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.Estimate-want) > 1e-9*float64(rel.NumRows()) {
			t.Errorf("group %v: estimate %g, direct count %g", g.Values, g.Estimate, want)
		}
		sum += g.Estimate
	}
	total, err := s.EstimateCount(pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-total) > 1e-6*float64(rel.NumRows()) {
		t.Errorf("group estimates sum to %g, predicate count is %g", sum, total)
	}
}

// TestBuildValidation pins the constructor's error paths.
func TestBuildValidation(t *testing.T) {
	sch := schema.MustNew(schema.MustCategorical("a", []string{"x", "y"}))
	empty := relation.New(sch)
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty relation accepted")
	}
	rel := testRelation(t, 1000, 1)
	if _, err := Build(rel, Options{Solver: solver.Options{N: 5}}); err == nil {
		t.Error("pre-set Solver.N accepted")
	}
	s := buildSolved(t, rel, Options{})
	if _, err := s.EstimateGroupBy(nil, nil); err == nil {
		t.Error("empty group-by accepted")
	}
	if _, err := s.EstimateGroupBy([]int{99}, nil); err == nil {
		t.Error("out-of-range group attribute accepted")
	}
	if _, err := s.EstimateGroupBy([]int{0}, query.NewPredicate(2)); err == nil {
		t.Error("wrong-arity group-by predicate accepted")
	}
}

// TestSummaryIsCompact sanity-checks the size story of the paper: the
// summary footprint must be far below the relation it models.
func TestSummaryIsCompact(t *testing.T) {
	rel := testRelation(t, 4000, 9)
	s := buildSolved(t, rel, Options{})
	if s.ApproxBytes() >= rel.ApproxBytes()/10 {
		t.Errorf("summary is %d bytes, relation is %d; expected at least 10x compression",
			s.ApproxBytes(), rel.ApproxBytes())
	}
	rep := s.System().Poly().Size()
	if rep.Terms <= 0 {
		t.Errorf("polynomial has no terms: %+v", rep)
	}
}

// TestPureIndependenceModel covers the negative pair budget: no multi
// statistics, so the model factorizes and 2D estimates are products of
// marginals.
func TestPureIndependenceModel(t *testing.T) {
	rel := testRelation(t, 2000, 13)
	s := buildSolved(t, rel, Options{PairBudget: -1})
	if got := len(s.Stats().Multi); got != 0 {
		t.Fatalf("independence model has %d multi statistics, want 0", got)
	}
	n := float64(rel.NumRows())
	h0 := rel.Histogram1D(0)
	h1 := rel.Histogram1D(1)
	q := query.NewPredicate(rel.NumAttrs()).WhereEq(0, 1).WhereEq(1, 1)
	got, err := s.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(h0[1]) * float64(h1[1]) / n
	if math.Abs(got-want) > 1e-3*n {
		t.Errorf("independence estimate %g, want marginal product %g", got, want)
	}
}
