package summary

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/solver"
)

func buildPartitionedSolved(t *testing.T, rel *relation.Relation, opts PartitionedOptions) *Partitioned {
	t.Helper()
	if opts.Base.Solver.MaxSweeps == 0 {
		opts.Base.Solver.MaxSweeps = 3000
	}
	if opts.Base.Solver.Tolerance == 0 {
		opts.Base.Solver.Tolerance = 1e-8
	}
	p, err := BuildPartitioned(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Converged() {
		t.Fatalf("per-partition solves did not all converge: %v", p.SolverReports())
	}
	return p
}

// TestPartitionedK1MatchesSummary is the degenerate-partitioning
// equivalence: with K = 1 the partitioned estimator runs the identical
// pipeline over the identical rows, so every estimate must match the
// single Summary to within numerical tolerance.
func TestPartitionedK1MatchesSummary(t *testing.T) {
	rel := testRelation(t, 2000, 7)
	single := buildSolved(t, rel, Options{Solver: solver.Options{Tolerance: 1e-8, MaxSweeps: 3000}})
	part := buildPartitionedSolved(t, rel, PartitionedOptions{Partitions: 1})
	if got := part.NumPartitions(); got != 1 {
		t.Fatalf("NumPartitions = %d, want 1", got)
	}
	n := float64(rel.NumRows())
	preds := []*query.Predicate{
		nil,
		query.NewPredicate(3).WhereEq(0, 1),
		query.NewPredicate(3).WhereRange(2, 1, 3),
		query.NewPredicate(3).WhereEq(0, 2).WhereIn(1, 0, 2),
	}
	for _, pred := range preds {
		a, err := single.EstimateCount(pred)
		if err != nil {
			t.Fatal(err)
		}
		b, err := part.EstimateCount(pred)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9*n {
			t.Errorf("pred %v: summary %g, partitioned(K=1) %g", pred, a, b)
		}
	}
	gs, err := single.EstimateGroupBy([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := part.EstimateGroupBy([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != len(gp) {
		t.Fatalf("group counts differ: %d vs %d", len(gs), len(gp))
	}
	for i := range gs {
		if gs[i].Values[0] != gp[i].Values[0] || math.Abs(gs[i].Estimate-gp[i].Estimate) > 1e-9*n {
			t.Errorf("group %d: summary %v=%g, partitioned %v=%g",
				i, gs[i].Values, gs[i].Estimate, gp[i].Values, gp[i].Estimate)
		}
	}
}

// TestPartitionedUniformPartitionsMatchSingle replicates one block of rows
// K times, so every contiguous partition holds the exact same tuple
// multiset. The K per-partition models are then identical, and their sum
// must agree with the single summary over the whole relation (whose
// statistics are the block's scaled by K, yielding the same distribution).
func TestPartitionedUniformPartitionsMatchSingle(t *testing.T) {
	const k = 4
	block := testRelation(t, 500, 21)
	whole := relation.NewWithCapacity(block.Schema(), k*block.NumRows())
	buf := make([]int, block.NumAttrs())
	for rep := 0; rep < k; rep++ {
		for i := 0; i < block.NumRows(); i++ {
			whole.MustAppend(block.Row(i, buf))
		}
	}
	single := buildSolved(t, whole, Options{Solver: solver.Options{Tolerance: 1e-9, MaxSweeps: 5000}})
	part := buildPartitionedSolved(t, whole, PartitionedOptions{
		Partitions: k,
		Base:       Options{Solver: solver.Options{Tolerance: 1e-9, MaxSweeps: 5000}},
	})
	n := float64(whole.NumRows())
	preds := []*query.Predicate{
		query.NewPredicate(3).WhereEq(0, 0),
		query.NewPredicate(3).WhereEq(1, 2),
		query.NewPredicate(3).WhereRange(2, 0, 2),
		query.NewPredicate(3).WhereEq(0, 3).WhereEq(1, 0),
	}
	for _, pred := range preds {
		a, err := single.EstimateCount(pred)
		if err != nil {
			t.Fatal(err)
		}
		b, err := part.EstimateCount(pred)
		if err != nil {
			t.Fatal(err)
		}
		// Both models satisfy the same constraints to solver tolerance;
		// allow a loose numerical band well below any modeling difference.
		if math.Abs(a-b) > 1e-4*n {
			t.Errorf("pred %v: single %g, partitioned(K=%d, uniform) %g", pred, a, k, b)
		}
	}
}

// TestPartitionedEstimatesSumToN checks the counting identity: summing the
// per-value estimates of one attribute over its whole domain must give the
// total cardinality (each partition's masked evaluations sum to n_k).
func TestPartitionedEstimatesSumToN(t *testing.T) {
	rel := testRelation(t, 3000, 31)
	part := buildPartitionedSolved(t, rel, PartitionedOptions{Partitions: 3})
	if got, err := part.EstimateCount(nil); err != nil || got != float64(rel.NumRows()) {
		t.Fatalf("EstimateCount(nil) = %g, %v; want %d", got, err, rel.NumRows())
	}
	total := 0.0
	for v := 0; v < part.Schema().Attr(0).Size(); v++ {
		est, err := part.EstimateCount(query.NewPredicate(3).WhereEq(0, v))
		if err != nil {
			t.Fatal(err)
		}
		total += est
	}
	if math.Abs(total-float64(rel.NumRows())) > 1e-3 {
		t.Errorf("per-value estimates sum to %g, want %d", total, rel.NumRows())
	}
	// Group-by must agree with per-value counting after the merge.
	groups, err := part.EstimateGroupBy([]int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, g := range groups {
		sum += g.Estimate
	}
	if math.Abs(sum-total) > 1e-6*float64(rel.NumRows()) {
		t.Errorf("merged group estimates sum to %g, per-value sum is %g", sum, total)
	}
}

// TestPartitionedValidation pins the builder's error paths and the
// footprint accounting.
func TestPartitionedValidation(t *testing.T) {
	rel := testRelation(t, 600, 3)
	if _, err := BuildPartitioned(relation.New(rel.Schema()), PartitionedOptions{}); err == nil {
		t.Error("empty relation accepted")
	}
	if _, err := BuildPartitioned(rel, PartitionedOptions{Partitions: -2}); err == nil {
		t.Error("negative partition count accepted")
	}
	// This test exercises validation and accounting only, so the solve is
	// not required to converge (small partitions converge sublinearly).
	part, err := BuildPartitioned(rel, PartitionedOptions{
		Partitions: 2,
		Workers:    2,
		Base:       Options{Solver: solver.Options{Tolerance: 1e-6, MaxSweeps: 500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := part.EstimateCount(query.NewPredicate(9)); err == nil {
		t.Error("wrong-arity predicate accepted")
	}
	if _, err := part.EstimateGroupBy([]int{99}, nil); err == nil {
		t.Error("out-of-range group attribute accepted")
	}
	var sum int64
	for k := 0; k < part.NumPartitions(); k++ {
		sum += part.Partition(k).ApproxBytes()
	}
	if part.ApproxBytes() != sum {
		t.Errorf("ApproxBytes = %d, per-partition sum = %d", part.ApproxBytes(), sum)
	}
}
